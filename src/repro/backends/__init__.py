"""Pluggable execution backends for every hot kernel in the library.

The public API of the library speaks hashable vertex ids over the
adjacency-set :class:`~repro.graph.static.Graph`.  *How* the hot kernels run
— peeling decomposition, k-core cascades, K-order remaining degrees, the
follower cascades and candidate scans of the anchored core index, and the
incremental maintenance traversals — is delegated to an
:class:`~repro.backends.base.ExecutionBackend` looked up in a registry:

``dict``
    The reference implementation straight over the adjacency-set graph.
    No setup cost, no translation; fastest on small graphs.
``compact``
    Flat integer-array kernels over an interned CSR snapshot
    (:mod:`repro.graph.compact`); single-packed-int heap peeling.
``numpy``
    Vectorised kernels over the same ``VertexInterner``/CSR contract with
    numpy arrays (:mod:`repro.backends.numpy_backend`).  Import-gated: the
    package works without numpy and this backend simply reports unavailable.
``sharded``
    Partitioned per-shard kernels with boundary exchange
    (:mod:`repro.backends.sharded_backend` over :mod:`repro.shard`): the CSR
    snapshot is split across shards (hash-by-id or degree-balanced) and every
    cascade runs as local waves plus a cut-edge exchange step until fixpoint,
    on a serial executor or a spawn-safe process pool.  Configured via
    ``REPRO_SHARD_COUNT`` / ``REPRO_SHARD_PARTITIONER`` /
    ``REPRO_SHARD_EXECUTOR`` / ``REPRO_SHARD_WORKERS``, or explicitly through
    ``ShardedBackend(...)`` instances.

All four produce identical core numbers, identical removal orders and
identical instrumentation counts (``tests/test_backend_equivalence.py``).
``backend="auto"`` — the default everywhere — resolves by graph size and
workload shape; the policy is documented in :mod:`repro.backends.registry`.
Custom backends plug in through :func:`register_backend`.

The built-ins are registered here with lazy factories so that importing
:mod:`repro.backends` stays dependency-free and cycle-free: implementation
modules (which import the graph/cores/anchored layers) only load on first
use.
"""

from __future__ import annotations

import importlib.util
import os

from repro.backends.base import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMPY,
    BACKEND_SHARDED,
    BACKENDS,
    COMPACT_THRESHOLD,
    WORKLOAD_AMORTIZED,
    WORKLOAD_ONE_SHOT,
    CoreIndexKernel,
    ExecutionBackend,
    MaintenanceKernel,
)
from repro.backends.registry import (
    available_backends,
    backend_info,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)

__all__ = [
    "BACKEND_AUTO",
    "BACKEND_COMPACT",
    "BACKEND_DICT",
    "BACKEND_NUMPY",
    "BACKEND_SHARDED",
    "BACKENDS",
    "COMPACT_THRESHOLD",
    "WORKLOAD_AMORTIZED",
    "WORKLOAD_ONE_SHOT",
    "CoreIndexKernel",
    "ExecutionBackend",
    "MaintenanceKernel",
    "available_backends",
    "backend_info",
    "get_backend",
    "numpy_available",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable.

    Setting ``REPRO_DISABLE_NUMPY=1`` forces this to report false even on an
    interpreter that has numpy — the supported way to exercise the no-numpy
    degradation path (auto falls back to compact, ``backend="numpy"`` is
    rejected with an explanation) without uninstalling anything.
    """
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        return False
    return importlib.util.find_spec("numpy") is not None


def _make_dict_backend() -> ExecutionBackend:
    from repro.backends.dict_backend import DictBackend

    return DictBackend()


def _make_compact_backend() -> ExecutionBackend:
    from repro.backends.compact_backend import CompactBackend

    return CompactBackend()


def _make_numpy_backend() -> ExecutionBackend:
    from repro.backends.numpy_backend import NumpyBackend

    return NumpyBackend()


def _make_sharded_backend() -> ExecutionBackend:
    from repro.backends.sharded_backend import ShardedBackend

    return ShardedBackend()


register_backend(BACKEND_DICT, _make_dict_backend, auto_priority=0)
register_backend(BACKEND_COMPACT, _make_compact_backend, auto_priority=10)
register_backend(
    BACKEND_NUMPY, _make_numpy_backend, auto_priority=20, is_available=numpy_available
)
# Priority below compact on purpose: multi-process execution is an explicit
# operator decision (``backend="sharded"`` or a configured instance), never
# something ``auto`` silently turns on for a big graph.
register_backend(BACKEND_SHARDED, _make_sharded_backend, auto_priority=5)
