"""Pluggable execution backends for every hot kernel in the library.

The public API of the library speaks hashable vertex ids over the
adjacency-set :class:`~repro.graph.static.Graph`.  *How* the hot kernels run
— peeling decomposition, k-core cascades, K-order remaining degrees, the
follower cascades and candidate scans of the anchored core index, and the
incremental maintenance traversals — is delegated to an
:class:`~repro.backends.base.ExecutionBackend` looked up in a registry:

``dict``
    The reference implementation straight over the adjacency-set graph.
    No setup cost, no translation; fastest on small graphs.
``compact``
    Flat integer-array kernels over an interned CSR snapshot
    (:mod:`repro.graph.compact`); single-packed-int heap peeling.
``numpy``
    Vectorised kernels over the same ``VertexInterner``/CSR contract with
    numpy arrays (:mod:`repro.backends.numpy_backend`).  Import-gated: the
    package works without numpy and this backend simply reports unavailable.
``numba``
    JIT-compiled kernels over the same CSR contract
    (:mod:`repro.backends.numba_backend`): the packed-heap peel, the support
    cascades and the maintenance traversals run as ``@njit(cache=True)``
    machine code, everything else inherits the compact twins.  Import-gated
    like numpy (needs both numba and numpy); first-use JIT compilation is
    done explicitly at backend construction under a ``kernel.jit_compile``
    obs span so it never pollutes a traced query.
``sharded``
    Partitioned per-shard kernels with boundary exchange
    (:mod:`repro.backends.sharded_backend` over :mod:`repro.shard`): the CSR
    snapshot is split across shards (hash-by-id or degree-balanced) and every
    cascade runs as local waves plus a cut-edge exchange step until fixpoint,
    on a serial executor or a spawn-safe process pool.  Configured via
    ``REPRO_SHARD_COUNT`` / ``REPRO_SHARD_PARTITIONER`` /
    ``REPRO_SHARD_EXECUTOR`` / ``REPRO_SHARD_WORKERS``, or explicitly through
    ``ShardedBackend(...)`` instances.

All five produce identical core numbers, identical removal orders and
identical instrumentation counts (``tests/test_backend_equivalence.py``).
``backend="auto"`` — the default everywhere — resolves by graph size and
workload shape, and consults a **measured calibration table**
(:mod:`repro.backends.calibrate`, installed via ``load_calibration()`` or
``REPRO_CALIBRATION``) when one is active; the full policy is documented in
:mod:`repro.backends.registry`.  Custom backends plug in through
:func:`register_backend`.

The built-ins are registered here with lazy factories so that importing
:mod:`repro.backends` stays dependency-free and cycle-free: implementation
modules (which import the graph/cores/anchored layers) only load on first
use.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Optional

from repro.backends.base import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMBA,
    BACKEND_NUMPY,
    BACKEND_SHARDED,
    BACKENDS,
    COMPACT_THRESHOLD,
    WORKLOAD_AMORTIZED,
    WORKLOAD_ONE_SHOT,
    CoreIndexKernel,
    ExecutionBackend,
    MaintenanceKernel,
)
from repro.backends.calibrate import (
    CalibrationSpec,
    CalibrationTable,
    SizeBand,
    active_calibration,
    clear_calibration,
    load_calibration,
    run_calibration,
    set_calibration,
)
from repro.backends.registry import (
    available_backends,
    backend_availability,
    backend_info,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)

__all__ = [
    "BACKEND_AUTO",
    "BACKEND_COMPACT",
    "BACKEND_DICT",
    "BACKEND_NUMBA",
    "BACKEND_NUMPY",
    "BACKEND_SHARDED",
    "BACKENDS",
    "COMPACT_THRESHOLD",
    "WORKLOAD_AMORTIZED",
    "WORKLOAD_ONE_SHOT",
    "CalibrationSpec",
    "CalibrationTable",
    "CoreIndexKernel",
    "ExecutionBackend",
    "MaintenanceKernel",
    "SizeBand",
    "active_calibration",
    "available_backends",
    "backend_availability",
    "backend_info",
    "clear_calibration",
    "get_backend",
    "load_calibration",
    "numba_available",
    "numba_unavailable_reason",
    "numpy_available",
    "numpy_unavailable_reason",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "run_calibration",
    "set_calibration",
]


def numpy_unavailable_reason() -> Optional[str]:
    """Why the numpy backend is currently unavailable (``None`` = it isn't).

    Distinguishes the explicit ``REPRO_DISABLE_NUMPY`` switch from a missing
    import so operators know whether to install or to un-set.
    """
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        return "disabled via REPRO_DISABLE_NUMPY"
    if importlib.util.find_spec("numpy") is None:
        return "numpy is not installed"
    return None


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable.

    Setting ``REPRO_DISABLE_NUMPY=1`` forces this to report false even on an
    interpreter that has numpy — the supported way to exercise the no-numpy
    degradation path (auto falls back to compact, ``backend="numpy"`` is
    rejected with an explanation) without uninstalling anything.
    """
    return numpy_unavailable_reason() is None


def numba_unavailable_reason() -> Optional[str]:
    """Why the numba backend is currently unavailable (``None`` = it isn't).

    The compiled tier needs *both* numba and numpy (its kernels operate on
    numpy arrays); ``REPRO_DISABLE_NUMBA=1`` force-disables it the same way
    ``REPRO_DISABLE_NUMPY`` does the numpy tier.
    """
    if os.environ.get("REPRO_DISABLE_NUMBA"):
        return "disabled via REPRO_DISABLE_NUMBA"
    if importlib.util.find_spec("numba") is None:
        return "numba is not installed"
    if importlib.util.find_spec("numpy") is None:
        return "numpy is not installed (the numba kernels run over numpy arrays)"
    return None


def numba_available() -> bool:
    """Whether the optional numba dependency (plus numpy) is importable.

    Setting ``REPRO_DISABLE_NUMBA=1`` forces this to report false even on an
    interpreter that has numba — ``auto`` then falls back to the next tier
    without warnings, and ``backend="numba"`` is rejected with the reason.
    """
    return numba_unavailable_reason() is None


def _make_dict_backend() -> ExecutionBackend:
    from repro.backends.dict_backend import DictBackend

    return DictBackend()


def _make_compact_backend() -> ExecutionBackend:
    from repro.backends.compact_backend import CompactBackend

    return CompactBackend()


def _make_numpy_backend() -> ExecutionBackend:
    from repro.backends.numpy_backend import NumpyBackend

    return NumpyBackend()


def _make_numba_backend() -> ExecutionBackend:
    from repro.backends.numba_backend import NumbaBackend

    return NumbaBackend()


def _make_sharded_backend() -> ExecutionBackend:
    from repro.backends.sharded_backend import ShardedBackend

    return ShardedBackend()


register_backend(BACKEND_DICT, _make_dict_backend, auto_priority=0)
register_backend(BACKEND_COMPACT, _make_compact_backend, auto_priority=10)
register_backend(
    BACKEND_NUMPY,
    _make_numpy_backend,
    auto_priority=20,
    is_available=numpy_available,
    availability_reason=numpy_unavailable_reason,
)
register_backend(
    BACKEND_NUMBA,
    _make_numba_backend,
    auto_priority=30,
    is_available=numba_available,
    availability_reason=numba_unavailable_reason,
)
# Priority below compact on purpose: multi-process execution is an explicit
# operator decision (``backend="sharded"`` or a configured instance), never
# something ``auto`` silently turns on for a big graph.
register_backend(BACKEND_SHARDED, _make_sharded_backend, auto_priority=5)
