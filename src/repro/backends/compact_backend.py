"""The ``compact`` execution backend: flat integer-array kernels.

Wires the interned CSR snapshot layer of :mod:`repro.graph.compact` and the
flat-array kernel primitives (:func:`repro.cores.decomposition.compact_peel`,
:func:`repro.cores.decomposition.compact_k_core_ids`,
:func:`repro.anchored.followers.compact_marginal_followers`,
:func:`repro.anchored.followers.compact_full_shell_followers`) into the
:class:`~repro.backends.base.ExecutionBackend` surface.  Because ordered
snapshots intern vertices in :func:`repro.ordering.tie_break_key` order, the
packed single-int heap peel reproduces the dict backend's removal order
bit-for-bit; everything else is id arithmetic plus one translation at the API
boundary.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.anchored.followers import (
    compact_full_shell_followers,
    compact_marginal_followers,
)
from repro.backends.base import (
    BACKEND_COMPACT,
    CoreIndexKernel,
    ExecutionBackend,
    MaintenanceKernel,
)
from repro.cores.decomposition import (
    CoreDecomposition,
    apply_shell_moves,
    build_shell_index,
    compact_k_core_ids,
    compact_peel,
    incremental_anchor_commit,
)
from repro.graph.compact import CompactGraph, DynamicCompactAdjacency
from repro.graph.static import Graph, Vertex


class CompactCoreIndexKernel(CoreIndexKernel):
    """Anchored-core-index state over one ordered CSR snapshot.

    The snapshot is built once for the kernel's lifetime (the index contract
    forbids graph mutation) and every refresh, scan and cascade runs over
    flat int arrays indexed by vertex id.  A shell index (``{core value:
    member id set}``) backs the per-round size queries in O(#levels) /
    O(|shell|) instead of O(n) scans, and :meth:`commit_anchor` applies the
    affected-region splice (:func:`repro.cores.decomposition.incremental_anchor_commit`)
    — per-level riser cascades plus re-ordering only the affected shells —
    instead of re-peeling the whole snapshot.
    """

    def __init__(self, graph: Graph) -> None:
        self._cgraph = CompactGraph.from_graph(graph, ordered=True)
        self._core_ids: List[float] = []
        self._rank_ids: List[int] = []
        self._order_ids: List[int] = []
        self._anchor_ids: Set[int] = set()
        self._shell_ids: Dict[float, Set[int]] = {}
        self._core_map_cache: Optional[Dict[Vertex, float]] = None

    def refresh(self, anchors: Set[Vertex]) -> None:
        interner = self._cgraph.interner
        self._anchor_ids = {interner.id_of(anchor) for anchor in anchors}
        core_ids, order_ids = compact_peel(self._cgraph, self._anchor_ids)
        self._core_ids = core_ids
        self._order_ids = order_ids
        rank_ids = [0] * len(core_ids)
        for position, vid in enumerate(order_ids):
            rank_ids[vid] = position
        self._rank_ids = rank_ids
        self._shell_ids = build_shell_index(enumerate(core_ids))
        self._core_map_cache = None

    def commit_anchor(
        self, vertex: Vertex, anchors: Set[Vertex]
    ) -> Optional[FrozenSet[Vertex]]:
        cgraph = self._cgraph
        new_id = cgraph.interner.id_of(vertex)
        self._anchor_ids.add(new_id)
        touched = incremental_anchor_commit(
            cgraph.indptr,
            cgraph.indices,
            self._core_ids,
            self._rank_ids,
            self._order_ids,
            new_id,
        )
        apply_shell_moves(self._shell_ids, touched, self._core_ids)
        self._core_map_cache = None
        vertices = cgraph.interner.vertices
        return frozenset(vertices[vid] for vid, _ in touched)

    def removal_ranks(self) -> Mapping[Vertex, int]:
        vertices = self._cgraph.interner.vertices
        rank_ids = self._rank_ids
        return {vertices[vid]: rank_ids[vid] for vid in range(len(vertices))}

    def core_of(self, vertex: Vertex) -> float:
        return self._core_ids[self._cgraph.interner.id_of(vertex)]

    def core_numbers(self) -> Mapping[Vertex, float]:
        if self._core_map_cache is None:
            vertices = self._cgraph.interner.vertices
            core_ids = self._core_ids
            self._core_map_cache = {
                vertices[vid]: core_ids[vid] for vid in range(len(vertices))
            }
        return self._core_map_cache

    def vertices_with_core_at_least(self, k: int) -> Set[Vertex]:
        result: Set[int] = set()
        for value, members in self._shell_ids.items():
            if value >= k:
                result.update(members)
        return self._cgraph.interner.translate(result)

    def count_core_at_least(self, k: int) -> int:
        return sum(
            len(members) for value, members in self._shell_ids.items() if value >= k
        )

    def shell_vertices(self, value: int) -> Set[Vertex]:
        return self._cgraph.interner.translate(self._shell_ids.get(value, ()))

    def plain_k_core(self, k: int) -> Set[Vertex]:
        return self._cgraph.interner.translate(compact_k_core_ids(self._cgraph, k))

    def candidate_anchors(self, k: int, order_pruning: bool) -> Set[Vertex]:
        target = k - 1
        cgraph = self._cgraph
        indptr = cgraph.indptr
        indices = cgraph.indices
        core_ids = self._core_ids
        rank_ids = self._rank_ids
        candidates: List[int] = []
        for vid in range(len(core_ids)):
            # Anchored ids carry core infinity, so this also excludes them.
            if core_ids[vid] >= k:
                continue
            rank = rank_ids[vid]
            for position in range(indptr[vid], indptr[vid + 1]):
                neighbour = indices[position]
                if core_ids[neighbour] != target:
                    continue
                if not order_pruning or rank_ids[neighbour] > rank:
                    candidates.append(vid)
                    break
        return cgraph.interner.translate(candidates)

    def non_core_vertices(self, k: int) -> Set[Vertex]:
        core_ids = self._core_ids
        return self._cgraph.interner.translate(
            vid for vid in range(len(core_ids)) if core_ids[vid] < k
        )

    def marginal_followers(
        self, k: int, candidate: Vertex, full_shell: bool
    ) -> Tuple[Set[Vertex], int]:
        candidate_id = self._cgraph.interner.id_of(candidate)
        if full_shell:
            gained_ids, visited = compact_full_shell_followers(
                self._cgraph, k, candidate_id, self._core_ids
            )
        else:
            gained_ids, visited = compact_marginal_followers(
                self._cgraph, k, candidate_id, self._core_ids
            )
        return self._cgraph.interner.translate(gained_ids), visited

    def marginal_followers_with_region(
        self, k: int, candidate: Vertex
    ) -> Tuple[Set[Vertex], int, Optional[FrozenSet[Vertex]]]:
        candidate_id = self._cgraph.interner.id_of(candidate)
        region_ids: Set[int] = set()
        gained_ids, visited = compact_marginal_followers(
            self._cgraph, k, candidate_id, self._core_ids, region_out=region_ids
        )
        translate = self._cgraph.interner.translate
        return translate(gained_ids), visited, frozenset(translate(region_ids))


class CompactMaintenanceKernel(MaintenanceKernel):
    """Maintenance traversals over an integer-id adjacency mirror.

    The maintained graph stays the source of truth for the structure; this
    kernel mirrors it into :class:`~repro.graph.compact.DynamicCompactAdjacency`
    (one set of neighbour ids per vertex) and keeps the core numbers in a
    flat list indexed by id, so the subcore/eviction traversals run entirely
    over small ints.  Mirror upkeep is O(1) per edge operation.

    The traversal bodies are deliberate twins of
    :class:`~repro.backends.dict_backend.DictMaintenanceKernel` (hot inner
    loops, no shared indirection); any algorithmic change must land in both,
    and the cross-backend equivalence suite is the guard that they never
    diverge.
    """

    def __init__(self, graph: Graph, core: Dict[Vertex, int]) -> None:
        self._mirror = DynamicCompactAdjacency.from_graph(graph)
        self._icore: List[int] = [
            core.get(vertex, 0) for vertex in self._mirror.interner.vertices
        ]

    # -- structure upkeep -------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        vid = self._mirror.ensure_vertex(vertex)
        while len(self._icore) <= vid:
            self._icore.append(0)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        interner = self._mirror.interner
        self._mirror.add_edge_ids(interner.id_of(u), interner.id_of(v))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        interner = self._mirror.interner
        self._mirror.remove_edge_ids(interner.id_of(u), interner.id_of(v))

    # -- views -------------------------------------------------------------
    def core(self, vertex: Vertex) -> int:
        vid = self._mirror.interner.get_id(vertex)
        if vid < 0:
            raise KeyError(vertex)
        return self._icore[vid]

    def core_get(self, vertex: Vertex, default: Optional[int] = None) -> Optional[int]:
        vid = self._mirror.interner.get_id(vertex)
        return default if vid < 0 else self._icore[vid]

    def core_numbers(self) -> Dict[Vertex, int]:
        # The interner's vertex list is kept in exact sync with the graph,
        # so zipping it against the core array avoids n hash lookups.
        return dict(zip(self._mirror.interner.vertices, self._icore))

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        return {
            vertex
            for vertex, value in zip(self._mirror.interner.vertices, self._icore)
            if value >= k
        }

    def shell_vertices(self, k: int) -> Set[Vertex]:
        return {
            vertex
            for vertex, value in zip(self._mirror.interner.vertices, self._icore)
            if value == k
        }

    # -- insertion traversal (Lemmas 1-2) ----------------------------------
    def process_insertion(self, u: Vertex, v: Vertex) -> Tuple[Set[Vertex], Set[Vertex]]:
        interner = self._mirror.interner
        u_id, v_id = interner.id_of(u), interner.id_of(v)
        icore = self._icore
        adj = self._mirror.adj
        root_core = min(icore[u_id], icore[v_id])
        roots = [w for w in (u_id, v_id) if icore[w] == root_core]

        candidates: Set[int] = set()
        stack: List[int] = []
        for root in roots:
            if root not in candidates:
                candidates.add(root)
                stack.append(root)
        while stack:
            current = stack.pop()
            for neighbour in adj[current]:
                if icore[neighbour] == root_core and neighbour not in candidates:
                    candidates.add(neighbour)
                    stack.append(neighbour)

        support: Dict[int, int] = {}
        for candidate in candidates:
            support[candidate] = sum(
                1
                for neighbour in adj[candidate]
                if icore[neighbour] > root_core or neighbour in candidates
            )
        evict_queue = [w for w, s in support.items() if s <= root_core]
        evicted: Set[int] = set()
        while evict_queue:
            w = evict_queue.pop()
            if w in evicted:
                continue
            evicted.add(w)
            for neighbour in adj[w]:
                if neighbour in candidates and neighbour not in evicted:
                    support[neighbour] -= 1
                    if support[neighbour] <= root_core:
                        evict_queue.append(neighbour)

        increased_ids = candidates - evicted
        risen = root_core + 1
        for w in increased_ids:
            icore[w] = risen
        vertices = interner.vertices
        return (
            {vertices[w] for w in increased_ids},
            {vertices[w] for w in candidates},
        )

    # -- deletion cascade (Lemmas 3-4) --------------------------------------
    def process_deletion(self, u: Vertex, v: Vertex) -> Tuple[Set[Vertex], Set[Vertex]]:
        interner = self._mirror.interner
        u_id, v_id = interner.id_of(u), interner.id_of(v)
        icore = self._icore
        adj = self._mirror.adj
        root_core = min(icore[u_id], icore[v_id])
        visited: Set[int] = set()

        support: Dict[int, int] = {}

        def compute_support(w: int) -> int:
            return sum(1 for x in adj[w] if icore[x] >= root_core)

        dropped: Set[int] = set()
        queue: List[int] = []
        for w in (u_id, v_id):
            if icore[w] == root_core and w not in dropped:
                visited.add(w)
                support[w] = compute_support(w)
                if support[w] < root_core:
                    dropped.add(w)
                    queue.append(w)

        while queue:
            w = queue.pop()
            for x in adj[w]:
                if icore[x] != root_core or x in dropped:
                    continue
                visited.add(x)
                if x not in support:
                    support[x] = compute_support(x)
                support[x] -= 1
                if support[x] < root_core:
                    dropped.add(x)
                    queue.append(x)
            icore[w] = root_core - 1

        vertices = interner.vertices
        return {vertices[w] for w in dropped}, {vertices[w] for w in visited}


class CompactBackend(ExecutionBackend):
    """Flat integer-array kernels over interned CSR snapshots."""

    name = BACKEND_COMPACT

    def decompose(self, graph: Graph, anchors: FrozenSet[Vertex] = frozenset()):
        anchor_set = frozenset(anchors)
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        interner = cgraph.interner
        anchor_ids = [interner.id_of(anchor) for anchor in anchor_set]
        core_by_id, order_ids = compact_peel(cgraph, anchor_ids)
        vertices = interner.vertices
        core = {vertices[vid]: core_by_id[vid] for vid in range(len(vertices))}
        order = tuple(vertices[vid] for vid in order_ids)
        return CoreDecomposition(core=core, order=order, anchors=anchor_set)

    def k_core(self, graph: Graph, k: int, anchors: Iterable[Vertex] = ()) -> Set[Vertex]:
        cgraph = CompactGraph.from_graph(graph, ordered=False)
        anchor_ids = [cgraph.interner.id_of(anchor) for anchor in anchors]
        return cgraph.interner.translate(compact_k_core_ids(cgraph, k, anchor_ids))

    def remaining_degrees(
        self, graph: Graph, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        return self._remaining_degrees(CompactGraph.from_graph(graph, ordered=False), rank)

    @staticmethod
    def _remaining_degrees(
        cgraph: CompactGraph, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        """``deg+`` over an already-built CSR snapshot: one int-array pass."""
        indptr = cgraph.indptr
        indices = cgraph.indices
        vertices = cgraph.interner.vertices
        rank_ids = [rank.get(vertex, -1) for vertex in vertices]
        deg_plus: Dict[Vertex, int] = {}
        for vid in range(len(vertices)):
            own_rank = rank_ids[vid]
            if own_rank < 0:
                continue
            count = 0
            for position in range(indptr[vid], indptr[vid + 1]):
                if rank_ids[indices[position]] > own_rank:
                    count += 1
            deg_plus[vertices[vid]] = count
        return deg_plus

    def korder(self, graph: Graph):
        """One CSR snapshot amortised over both the peel and the deg+ pass."""
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        vertices = cgraph.interner.vertices
        core_ids, order_ids = compact_peel(cgraph)
        decomposition = CoreDecomposition(
            core={vertices[vid]: core_ids[vid] for vid in range(len(vertices))},
            order=tuple(vertices[vid] for vid in order_ids),
        )
        rank = {vertex: position for position, vertex in enumerate(decomposition.order)}
        return decomposition, self._remaining_degrees(cgraph, rank)

    def build_core_index(self, graph: Graph) -> CompactCoreIndexKernel:
        return CompactCoreIndexKernel(graph)

    def build_maintenance(
        self, graph: Graph, core: Dict[Vertex, int]
    ) -> CompactMaintenanceKernel:
        return CompactMaintenanceKernel(graph, core)
