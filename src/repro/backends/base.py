"""The :class:`ExecutionBackend` protocol: the kernel surface of the library.

Every hot computation in the library — the peeling decomposition, the one-shot
k-core cascade, the K-order remaining degrees, the follower cascades behind
:class:`repro.anchored.anchored_core.AnchoredCoreIndex`, and the incremental
maintenance traversals of :class:`repro.cores.maintenance.CoreMaintainer` —
is expressed against the abstract surface defined here.  Public modules never
branch on a backend name; they obtain an :class:`ExecutionBackend` from the
registry (:mod:`repro.backends.registry`) and call through it.  Adding a new
backend is therefore additive: implement this surface, call
:func:`repro.backends.register_backend`, and every solver, tracker and the
streaming engine can run on it via ``backend="<name>"``.

The surface splits into one-shot kernels (methods directly on the backend)
and two long-lived kernel handles that amortise a per-graph setup cost:

* :class:`CoreIndexKernel` — the state behind ``AnchoredCoreIndex``: an
  anchored peeling that is refreshed every time an anchor commits, plus the
  candidate scans and follower cascades that read it.  Built once per
  (graph, solver run); the graph must not mutate while it is alive.
* :class:`MaintenanceKernel` — the state behind ``CoreMaintainer``: the
  maintained core numbers plus whatever adjacency mirror the backend needs to
  run the insertion/deletion traversals while the graph evolves.

Contract shared by all implementations (enforced by
``tests/test_backend_equivalence.py``): identical core numbers, identical
*removal orders* (vertices interned in :func:`repro.ordering.tie_break_key`
order so integer id doubles as tie-break rank), identical follower sets and
identical visited-vertex instrumentation counts.

The delta-refresh contract
--------------------------
:meth:`CoreIndexKernel.commit_anchor` is the incremental sibling of
:meth:`CoreIndexKernel.refresh` for the one mutation the greedy solvers ever
perform: adding a single anchor.  After it returns, every query **must**
answer exactly as if :meth:`~CoreIndexKernel.refresh` had been called with
the enlarged anchor set — same core numbers, same removal ranks, same
candidate sets.  The return value is the *touched set*: every vertex whose
anchored core number changed (the new anchor included, finite → infinity),
or ``None`` when the kernel cannot bound the change, in which case callers
must assume anything may have changed.  Kernels that do not override it fall
back to a full refresh (and return ``None``), so custom backends keep
working unchanged; the dict and compact kernels apply an affected-region
splice instead (per-level riser cascades for the core numbers, re-ordering
only the shells whose membership or starting degrees changed — see
:func:`repro.cores.decomposition.incremental_anchor_commit` for the
algorithm and its correctness argument), the numpy kernel shares that
splice, and the sharded kernel refreshes through its shard-local caches and
diffs.  Positional rank shifts are deliberately *not* reported as touched:
no query result depends on absolute positions except through the candidate
scans, which read the (bit-identically spliced) rank state directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Set,
    Tuple,
)

# LAYERING GUARD: this module (and registry.py / the package __init__) must
# never import repro.graph or repro.cores at runtime — only under
# TYPE_CHECKING or inside the lazy backend factories.  repro.graph.compact
# re-imports the backend constants from here for backwards compatibility, so
# a non-lazy downward import would close an import cycle at package load.
if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cores.decomposition import CoreDecomposition
    from repro.graph.static import Graph, Vertex

# ---------------------------------------------------------------------------
# Backend names
# ---------------------------------------------------------------------------
#: Resolution policy: pick a registered backend by graph size and workload.
BACKEND_AUTO = "auto"
#: The adjacency-set ``dict`` implementation (hashable vertices, no setup).
BACKEND_DICT = "dict"
#: Flat integer-array kernels over an interned CSR snapshot.
BACKEND_COMPACT = "compact"
#: Vectorised numpy kernels over the same CSR contract (optional dependency).
BACKEND_NUMPY = "numpy"
#: JIT-compiled numba kernels over the same CSR contract (optional dependency).
BACKEND_NUMBA = "numba"
#: Partitioned per-shard kernels with boundary exchange (:mod:`repro.shard`).
BACKEND_SHARDED = "sharded"

#: Every built-in ``backend=`` value (third-party backends register more).
BACKENDS = (
    BACKEND_AUTO,
    BACKEND_DICT,
    BACKEND_COMPACT,
    BACKEND_NUMPY,
    BACKEND_NUMBA,
    BACKEND_SHARDED,
)

#: ``auto`` switches away from the dict backend at this vertex count.  The
#: crossover is where interning cost is clearly amortised by the kernels;
#: below it the dict path's lack of translation wins.
COMPACT_THRESHOLD = 4096

# ---------------------------------------------------------------------------
# Workload hints for the auto policy
# ---------------------------------------------------------------------------
#: A single O(n + m) pass (e.g. one k-core cascade): building a snapshot
#: costs as much as the pass itself, so translation can never pay off.
WORKLOAD_ONE_SHOT = "one-shot"
#: Work that amortises a per-graph setup: a full peel, a long-lived core
#: index reused across refreshes/scans/cascades, or incremental maintenance.
WORKLOAD_AMORTIZED = "amortized"


class CoreIndexKernel(ABC):
    """Per-graph state behind :class:`repro.anchored.anchored_core.AnchoredCoreIndex`.

    The kernel owns the anchored core numbers and removal ranks of a fixed
    graph snapshot and re-derives them on :meth:`refresh`.  All query methods
    read the state established by the most recent refresh.  Vertices are the
    caller's hashable ids at this boundary; implementations translate
    internally as needed.
    """

    @abstractmethod
    def refresh(self, anchors: Set["Vertex"]) -> None:
        """Recompute the anchored core numbers and removal ranks."""

    def commit_anchor(
        self, vertex: "Vertex", anchors: Set["Vertex"]
    ) -> Optional[FrozenSet["Vertex"]]:
        """Add one anchor incrementally; return the touched set (or ``None``).

        ``anchors`` is the *full* new anchor set, ``vertex`` the one member
        that was just added.  State afterwards must be indistinguishable from
        ``refresh(anchors)`` (the delta-refresh contract in the module
        docstring).  Returns the exact set of vertices whose anchored core
        number changed, or ``None`` when the kernel cannot bound the change —
        this default falls back to a full refresh and returns ``None`` so
        custom kernels keep working without implementing the incremental
        path.
        """
        self.refresh(set(anchors))
        return None

    def removal_ranks(self) -> Optional[Mapping["Vertex", int]]:
        """The current removal ranks, or ``None`` if the kernel hides them.

        Optional introspection (tests and diagnostics): position of every
        vertex in the removal order of the last refresh/commit.  Kernels that
        do not track ranks per vertex may return ``None``.
        """
        return None

    @abstractmethod
    def core_of(self, vertex: "Vertex") -> float:
        """Anchored core number of ``vertex`` (anchors map to infinity)."""

    @abstractmethod
    def core_numbers(self) -> Mapping["Vertex", float]:
        """The anchored core-number mapping (live, do not mutate)."""

    @abstractmethod
    def vertices_with_core_at_least(self, k: int) -> Set["Vertex"]:
        """``{v : core(v) >= k}`` under the current anchored core numbers."""

    @abstractmethod
    def count_core_at_least(self, k: int) -> int:
        """``|{v : core(v) >= k}|`` without materialising the set."""

    @abstractmethod
    def shell_vertices(self, value: int) -> Set["Vertex"]:
        """``{v : core(v) == value}`` under the current anchored core numbers."""

    @abstractmethod
    def plain_k_core(self, k: int) -> Set["Vertex"]:
        """The k-core of the snapshot with *no* anchors (anchor-independent)."""

    @abstractmethod
    def candidate_anchors(self, k: int, order_pruning: bool) -> Set["Vertex"]:
        """Theorem-3 candidate anchors under the current anchored state.

        The anchor set is the one established by the last :meth:`refresh`
        (anchors carry core infinity there, which is what excludes them).
        """

    @abstractmethod
    def non_core_vertices(self, k: int) -> Set["Vertex"]:
        """Every un-anchored vertex outside the anchored k-core.

        As with :meth:`candidate_anchors`, "un-anchored" refers to the
        anchor set of the last :meth:`refresh`.
        """

    @abstractmethod
    def marginal_followers(
        self, k: int, candidate: "Vertex", full_shell: bool
    ) -> Tuple[Set["Vertex"], int]:
        """Followers gained by anchoring ``candidate`` next, plus visited count.

        The visited count must match the dict reference cascade exactly
        (region pops plus cascade removals) — it feeds the paper's
        instrumentation figures.
        """

    def marginal_followers_with_region(
        self, k: int, candidate: "Vertex"
    ) -> Tuple[Set["Vertex"], int, Optional[FrozenSet["Vertex"]]]:
        """Region-restricted follower cascade that also reports its region.

        Returns ``(gained, visited, region)`` where ``gained`` and
        ``visited`` are exactly what :meth:`marginal_followers` (with
        ``full_shell=False``) returns, and ``region`` is the explored
        shell-local region (the candidate excluded) — the read scope of the
        evaluation, which memoizing callers use to decide when a cached
        result is still valid: the result can only change when a commit's
        touched set intersects ``region ∪ {candidate}`` or their neighbours.
        This default reports an unknown region (``None``, never cacheable) so
        custom kernels keep working.
        """
        gained, visited = self.marginal_followers(k, candidate, False)
        return gained, visited, None


class MaintenanceKernel(ABC):
    """Per-graph state behind :class:`repro.cores.maintenance.CoreMaintainer`.

    The maintainer's hashable-vertex :class:`~repro.graph.static.Graph` stays
    the source of truth for the structure; the kernel keeps the maintained
    core numbers (and any adjacency mirror) in whatever representation its
    traversals want.  Structure upkeep (:meth:`add_vertex` / :meth:`add_edge`
    / :meth:`remove_edge`) is called *after* the graph itself mutated, before
    the matching traversal runs.
    """

    @abstractmethod
    def add_vertex(self, vertex: "Vertex") -> None:
        """Register a brand-new vertex at core number 0."""

    @abstractmethod
    def add_edge(self, u: "Vertex", v: "Vertex") -> None:
        """Mirror an edge insertion (both endpoints already registered)."""

    @abstractmethod
    def remove_edge(self, u: "Vertex", v: "Vertex") -> None:
        """Mirror an edge removal."""

    @abstractmethod
    def process_insertion(
        self, u: "Vertex", v: "Vertex"
    ) -> Tuple[Set["Vertex"], Set["Vertex"]]:
        """Run the insertion traversal (Lemmas 1-2) for a just-added edge.

        Returns ``(increased, visited)``: the vertices whose core number rose,
        and every vertex the traversal examined.
        """

    @abstractmethod
    def process_deletion(
        self, u: "Vertex", v: "Vertex"
    ) -> Tuple[Set["Vertex"], Set["Vertex"]]:
        """Run the deletion cascade (Lemmas 3-4) for a just-removed edge.

        Returns ``(decreased, visited)``.
        """

    @abstractmethod
    def core(self, vertex: "Vertex") -> int:
        """Maintained core number of ``vertex``; raises ``KeyError`` if unknown."""

    @abstractmethod
    def core_get(self, vertex: "Vertex", default: Optional[int] = None) -> Optional[int]:
        """``dict.get``-style core lookup."""

    @abstractmethod
    def core_numbers(self) -> Dict["Vertex", int]:
        """A copy of the maintained core numbers."""

    @abstractmethod
    def k_core_vertices(self, k: int) -> Set["Vertex"]:
        """``{v : core(v) >= k}`` under the maintained core numbers."""

    @abstractmethod
    def shell_vertices(self, k: int) -> Set["Vertex"]:
        """``{v : core(v) == k}`` under the maintained core numbers."""


class ExecutionBackend(ABC):
    """One execution layer for every hot kernel in the library.

    Implementations are stateless (all state lives in the kernel handles they
    build), so a single instance is shared process-wide by the registry.
    """

    #: Registry name; also what ``resolved_backend.name``-style introspection
    #: (e.g. ``AnchoredCoreIndex.backend``) reports.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # One-shot kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def decompose(
        self, graph: "Graph", anchors: FrozenSet["Vertex"] = frozenset()
    ) -> "CoreDecomposition":
        """Full (possibly anchored) peeling decomposition with removal order."""

    @abstractmethod
    def k_core(
        self, graph: "Graph", k: int, anchors: Iterable["Vertex"] = ()
    ) -> Set["Vertex"]:
        """The (anchored) k-core via a direct O(n + m) deletion cascade."""

    @abstractmethod
    def remaining_degrees(
        self, graph: "Graph", rank: Mapping["Vertex", int]
    ) -> Dict["Vertex", int]:
        """``deg+`` for every ranked vertex: neighbours positioned after it."""

    def korder(self, graph: "Graph") -> Tuple["CoreDecomposition", Dict["Vertex", int]]:
        """Decomposition plus remaining degrees, amortising shared setup.

        The default runs :meth:`decompose` then :meth:`remaining_degrees`;
        snapshot-based backends override it to build their snapshot once.
        """
        decomposition = self.decompose(graph)
        rank = {vertex: position for position, vertex in enumerate(decomposition.order)}
        return decomposition, self.remaining_degrees(graph, rank)

    # ------------------------------------------------------------------
    # Long-lived kernel handles
    # ------------------------------------------------------------------
    @abstractmethod
    def build_core_index(self, graph: "Graph") -> CoreIndexKernel:
        """Build the anchored-core-index kernel for a frozen graph snapshot."""

    @abstractmethod
    def build_maintenance(
        self, graph: "Graph", core: Dict["Vertex", int]
    ) -> MaintenanceKernel:
        """Build the maintenance kernel for ``graph`` with trusted ``core``."""

    # ------------------------------------------------------------------
    # Configuration (persisted by engine checkpoints)
    # ------------------------------------------------------------------
    def config(self) -> Dict[str, object]:
        """JSON-serialisable configuration of this backend instance.

        Stateless backends have none (the default empty dict).  Configurable
        backends (e.g. the sharded backend's shard count and partitioner
        policy) return what :meth:`with_config` needs to rebuild an
        equivalently configured instance — engine checkpoints persist it next
        to the backend name.
        """
        return {}

    def with_config(self, config: Mapping[str, object]) -> "ExecutionBackend":
        """Return an instance of this backend configured by ``config``.

        The default ignores the configuration and returns ``self`` (stateless
        backends are their own configuration).  Configurable backends return a
        *new* instance, leaving the registry's shared singleton untouched.
        """
        return self

    # ------------------------------------------------------------------
    # Health (engine degradation/recovery)
    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """Whether this backend's substrate currently works end to end.

        The engine calls this at flush time after degrading *away* from a
        backend, to decide when to switch back.  Pure in-process backends
        have no substrate that can fail independently, so the default is
        unconditionally ``True``; backends with external moving parts (the
        sharded backend's worker pools) override it with a real end-to-end
        check.  Implementations must not raise — return ``False`` instead.
        """
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
