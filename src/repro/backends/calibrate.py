"""Measured backend selection: calibration sweeps behind the ``"auto"`` policy.

The registry's hard-coded ``auto_priority`` ladder encodes an *expectation*
(numba > numpy > compact > dict on large amortised workloads); this module
replaces the expectation with a **measurement**.  :func:`run_calibration`
executes a small declarative sweep grid — graph-size bands × workload shapes
× available backends, with repetitions — and records the per-kernel timings
plus the measured winner of every band into a :class:`CalibrationTable`.

The table is plain JSON: persist it with :meth:`CalibrationTable.save`, load
it explicitly with :func:`load_calibration`, or point the
``REPRO_CALIBRATION`` environment variable at a saved file and every process
picks it up lazily.  While a table is active,
:func:`repro.backends.registry.resolve_backend` answers ``"auto"`` for
amortised workloads from the measured winner of the band containing the
graph — the priority ladder remains the fallback for uncalibrated sizes,
winners that have since become unavailable, and processes with no table.
One-shot workloads keep resolving to the dict backend unconditionally: a
single cascade can never amortise snapshot construction, so there is nothing
to measure.

Layering: this module's import surface is :mod:`repro.backends.base` only
(the registry imports it), so graph generators and backend instances are
imported inside :func:`run_calibration` — the same laziness discipline as
the backend factories.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.backends.base import (
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMBA,
    BACKEND_NUMPY,
)
from repro.errors import ParameterError

_LOG = logging.getLogger(__name__)

#: Environment variable naming a saved calibration table to load lazily.
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: Workload shapes the sweep can time (see the ``_WORKLOAD_RUNNERS`` table).
WORKLOAD_PEEL = "peel"
WORKLOAD_CORE_INDEX = "core_index"
WORKLOAD_MAINTENANCE = "maintenance"
DEFAULT_WORKLOADS = (WORKLOAD_PEEL, WORKLOAD_CORE_INDEX, WORKLOAD_MAINTENANCE)

#: Candidate backends ``auto`` may pick from.  The sharded backend is
#: deliberately absent: multi-process execution stays an explicit operator
#: decision even when a sweep would crown it.
DEFAULT_CANDIDATES = (BACKEND_DICT, BACKEND_COMPACT, BACKEND_NUMPY, BACKEND_NUMBA)


@dataclass(frozen=True)
class SizeBand:
    """One row of the sweep grid: a vertex-count interval and its sample size.

    ``lo`` is inclusive, ``hi`` exclusive (``None`` = unbounded);
    ``sample_vertices`` is the synthetic-graph size the band is measured at.
    """

    name: str
    lo: int
    hi: Optional[int]
    sample_vertices: int

    def contains(self, num_vertices: int) -> bool:
        return num_vertices >= self.lo and (self.hi is None or num_vertices < self.hi)


#: The default grid: one band below the compact threshold, one in the
#: translation-pays-off midrange, one at bench scale.
DEFAULT_BANDS: Tuple[SizeBand, ...] = (
    SizeBand("small", 0, 4096, 1024),
    SizeBand("medium", 4096, 32768, 8192),
    SizeBand("large", 32768, None, 40000),
)


@dataclass(frozen=True)
class CalibrationSpec:
    """Declarative description of one calibration sweep."""

    bands: Tuple[SizeBand, ...] = DEFAULT_BANDS
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    repetitions: int = 3
    edges_per_vertex: float = 4.0
    seed: int = 20240131
    candidates: Tuple[str, ...] = DEFAULT_CANDIDATES

    def scaled(self, max_vertices: int) -> "CalibrationSpec":
        """A copy with every band's sample size capped (smoke/CI sweeps)."""
        bands = tuple(
            SizeBand(band.name, band.lo, band.hi, min(band.sample_vertices, max_vertices))
            for band in self.bands
        )
        return CalibrationSpec(
            bands=bands,
            workloads=self.workloads,
            repetitions=self.repetitions,
            edges_per_vertex=self.edges_per_vertex,
            seed=self.seed,
            candidates=self.candidates,
        )


class CalibrationTable:
    """Measured winners per size band, with the raw per-kernel timings.

    ``bands`` is an ordered list of JSON-friendly dicts::

        {"name": "large", "lo": 32768, "hi": null, "sample_vertices": 40000,
         "winner": "numba",
         "timings": {"numba": {"peel": 0.012, ...}, "numpy": {...}, ...}}
    """

    VERSION = 1

    def __init__(self, bands: Iterable[Mapping[str, object]]) -> None:
        self.bands: List[Dict[str, object]] = [dict(band) for band in bands]

    def winner_for(
        self, num_vertices: int, available: Optional[Iterable[str]] = None
    ) -> Optional[str]:
        """The measured winner of the band containing ``num_vertices``.

        Returns ``None`` when no band covers the size or the winner is not in
        ``available`` (the caller then falls back to the priority ladder).
        """
        allowed: Optional[Set[str]] = None if available is None else set(available)
        for band in self.bands:
            lo = int(band.get("lo", 0))
            hi = band.get("hi")
            if num_vertices < lo:
                continue
            if hi is not None and num_vertices >= int(hi):
                continue
            winner = band.get("winner")
            if winner is None:
                return None
            winner = str(winner)
            if allowed is not None and winner not in allowed:
                return None
            return winner
        return None

    def band_names(self) -> Tuple[str, ...]:
        return tuple(str(band.get("name", "")) for band in self.bands)

    # -- persistence ---------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        return {"calibration_version": self.VERSION, "bands": self.bands}

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "CalibrationTable":
        version = payload.get("calibration_version")
        if version != cls.VERSION:
            raise ParameterError(
                f"unsupported calibration table version {version!r} "
                f"(this build reads version {cls.VERSION})"
            )
        bands = payload.get("bands")
        if not isinstance(bands, list):
            raise ParameterError("calibration table has no 'bands' list")
        return cls(bands)

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path) -> "CalibrationTable":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as error:
            raise ParameterError(f"cannot read calibration table {path!r}: {error}")
        except ValueError as error:
            raise ParameterError(f"calibration table {path!r} is not JSON: {error}")
        return cls.from_payload(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        winners = {band.get("name"): band.get("winner") for band in self.bands}
        return f"<CalibrationTable winners={winners!r}>"


# ---------------------------------------------------------------------------
# The active table (explicit > environment > none)
# ---------------------------------------------------------------------------
_ACTIVE: Optional[CalibrationTable] = None
_ENV_ATTEMPTED = False


def set_calibration(table: Optional[CalibrationTable]) -> None:
    """Install ``table`` as the process-wide active calibration (or clear it)."""
    global _ACTIVE
    if table is None:
        clear_calibration()
        return
    _ACTIVE = table


def clear_calibration() -> None:
    """Drop the active table and re-arm the ``REPRO_CALIBRATION`` lazy load."""
    global _ACTIVE, _ENV_ATTEMPTED
    _ACTIVE = None
    _ENV_ATTEMPTED = False


def load_calibration(path) -> CalibrationTable:
    """Load a saved table from ``path`` and install it as active."""
    table = CalibrationTable.load(path)
    set_calibration(table)
    return table


def active_calibration() -> Optional[CalibrationTable]:
    """The table ``"auto"`` currently consults, if any.

    An explicitly installed table wins; otherwise the first call lazily loads
    the file named by ``REPRO_CALIBRATION`` (an unreadable file logs one
    warning and the policy falls back to the priority ladder).
    """
    global _ACTIVE, _ENV_ATTEMPTED
    if _ACTIVE is not None:
        return _ACTIVE
    if not _ENV_ATTEMPTED:
        _ENV_ATTEMPTED = True
        path = os.environ.get(CALIBRATION_ENV)
        if path:
            try:
                _ACTIVE = CalibrationTable.load(path)
            except ParameterError as error:
                _LOG.warning("ignoring %s=%r: %s", CALIBRATION_ENV, path, error)
    return _ACTIVE


# ---------------------------------------------------------------------------
# Workload runners (one timed unit of amortised work each)
# ---------------------------------------------------------------------------
def _run_peel(backend, graph) -> None:
    backend.decompose(graph)


def _run_core_index(backend, graph) -> None:
    kernel = backend.build_core_index(graph)
    kernel.refresh(set())
    k = 3
    candidates = sorted(kernel.candidate_anchors(k, True))
    step = max(1, len(candidates) // 8)
    for candidate in candidates[::step][:8]:
        kernel.marginal_followers(k, candidate, False)


def _run_maintenance(backend, graph) -> None:
    decomposition = backend.decompose(graph)
    core = {vertex: int(value) for vertex, value in decomposition.core.items()}
    kernel = backend.build_maintenance(graph, core)
    flipped = 0
    for u, v in graph.edges():
        kernel.remove_edge(u, v)
        kernel.process_deletion(u, v)
        kernel.add_edge(u, v)
        kernel.process_insertion(u, v)
        flipped += 1
        if flipped >= 16:
            break


_WORKLOAD_RUNNERS = {
    WORKLOAD_PEEL: _run_peel,
    WORKLOAD_CORE_INDEX: _run_core_index,
    WORKLOAD_MAINTENANCE: _run_maintenance,
}


def run_calibration(
    spec: CalibrationSpec = CalibrationSpec(), *, install: bool = False
) -> CalibrationTable:
    """Execute the sweep grid and return the resulting table.

    Every band is measured on one synthetic Chung–Lu graph (heavy-tailed
    degrees, graded core structure) at the band's sample size; every
    available candidate backend runs every workload shape ``repetitions``
    times and the minimum is recorded (the usual best-of-N timing discipline).
    The band winner minimises the summed per-workload minima.  Unavailable
    candidates are skipped — their absence is visible in the table because
    their timings are simply missing.  ``install=True`` additionally makes
    the new table the active one.
    """
    from repro.backends.registry import available_backends, get_backend
    from repro.graph.generators import chung_lu_graph

    unknown = [name for name in spec.workloads if name not in _WORKLOAD_RUNNERS]
    if unknown:
        raise ParameterError(
            f"unknown calibration workloads {unknown!r}; "
            f"expected a subset of {sorted(_WORKLOAD_RUNNERS)}"
        )
    if spec.repetitions < 1:
        raise ParameterError("repetitions must be >= 1")
    available = set(available_backends())
    bands: List[Dict[str, object]] = []
    for band in spec.bands:
        num_vertices = max(2, band.sample_vertices)
        num_edges = int(num_vertices * spec.edges_per_vertex)
        max_edges = num_vertices * (num_vertices - 1) // 2
        graph = chung_lu_graph(num_vertices, min(num_edges, max_edges), seed=spec.seed)
        timings: Dict[str, Dict[str, float]] = {}
        for name in spec.candidates:
            if name not in available:
                continue
            backend = get_backend(name)
            per_workload: Dict[str, float] = {}
            for workload in spec.workloads:
                runner = _WORKLOAD_RUNNERS[workload]
                best = float("inf")
                for _ in range(spec.repetitions):
                    started = time.perf_counter()
                    runner(backend, graph)
                    best = min(best, time.perf_counter() - started)
                per_workload[workload] = best
            timings[name] = per_workload
        winner = None
        if timings:
            winner = min(timings, key=lambda name: sum(timings[name].values()))
        bands.append(
            {
                "name": band.name,
                "lo": band.lo,
                "hi": band.hi,
                "sample_vertices": num_vertices,
                "sample_edges": graph.num_edges,
                "winner": winner,
                "timings": timings,
            }
        )
    table = CalibrationTable(bands)
    if install:
        set_calibration(table)
    return table
