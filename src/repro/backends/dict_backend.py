"""The ``dict`` execution backend: reference kernels over the adjacency-set graph.

This is the historical implementation of every kernel, operating directly on
hashable vertices with no setup or translation cost — the backend ``auto``
picks for small graphs and for one-shot cascades, and the reference the other
backends are property-tested against.  The follower cascades delegate to the
public functions in :mod:`repro.anchored.followers` (which double as the
paper-facing reference algorithms); the peeling, cascade and maintenance
traversals live here.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.backends.base import (
    BACKEND_DICT,
    CoreIndexKernel,
    ExecutionBackend,
    MaintenanceKernel,
)
from repro.anchored.followers import full_shell_followers, marginal_followers
from repro.cores.decomposition import (
    ANCHOR_CORE,
    CoreDecomposition,
    apply_shell_moves,
    build_shell_index,
)
from repro.errors import VertexNotFoundError
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


def dict_anchored_peel(graph: Graph, anchor_set: FrozenSet[Vertex]) -> CoreDecomposition:
    """Anchored peeling over the adjacency-set graph (the reference order).

    Vertices of equal current degree are peeled in deterministic
    :func:`~repro.ordering.tie_break_key` order; anchored vertices are never
    removed, still support their neighbours throughout, and are appended to
    the order last.  Returns a :class:`~repro.cores.decomposition.CoreDecomposition`.
    """
    effective: Dict[Vertex, int] = {}
    heap: List[Tuple[int, Tuple[str, str], Vertex]] = []
    for vertex in graph.vertices():
        if vertex in anchor_set:
            continue
        degree = graph.degree(vertex)
        effective[vertex] = degree
        heap.append((degree, tie_break_key(vertex), vertex))
    heapq.heapify(heap)

    core: Dict[Vertex, float] = {}
    order: List[Vertex] = []
    removed: Set[Vertex] = set()
    current_core = 0
    while heap:
        degree, _, vertex = heapq.heappop(heap)
        if vertex in removed:
            continue
        if degree != effective[vertex]:
            # Stale heap entry: the true (smaller) degree entry is still queued.
            continue
        current_core = max(current_core, degree)
        core[vertex] = current_core
        order.append(vertex)
        removed.add(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in anchor_set or neighbour in removed:
                continue
            effective[neighbour] -= 1
            heapq.heappush(
                heap, (effective[neighbour], tie_break_key(neighbour), neighbour)
            )

    for anchor in sorted(anchor_set, key=tie_break_key):
        core[anchor] = ANCHOR_CORE
        order.append(anchor)
    return CoreDecomposition(core=core, order=tuple(order), anchors=anchor_set)


def dict_k_core(graph: Graph, k: int, anchors: Iterable[Vertex] = ()) -> Set[Vertex]:
    """(Anchored) k-core by a direct deletion cascade over the dict graph."""
    anchor_set = set(anchors)
    degrees = {vertex: graph.degree(vertex) for vertex in graph.vertices()}
    removed: Set[Vertex] = set()
    queue = [
        vertex
        for vertex, degree in degrees.items()
        if degree < k and vertex not in anchor_set
    ]
    while queue:
        vertex = queue.pop()
        if vertex in removed:
            continue
        removed.add(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in removed or neighbour in anchor_set:
                continue
            degrees[neighbour] -= 1
            if degrees[neighbour] < k:
                queue.append(neighbour)
    return {vertex for vertex in degrees if vertex not in removed}


class DictCoreIndexKernel(CoreIndexKernel):
    """Anchored-core-index state over the adjacency-set graph itself.

    Alongside the core/rank maps the kernel maintains a *shell index*
    (``{core value: member set}``): the size queries the greedy loops issue
    every round (``count_core_at_least``, ``shell_vertices``) then cost
    O(#levels) / O(|shell|) instead of a full O(n) scan.  The index is
    rebuilt on :meth:`refresh` and updated for just the touched vertices on
    :meth:`commit_anchor`.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._core: Dict[Vertex, float] = {}
        self._rank: Dict[Vertex, int] = {}
        self._order: List[Vertex] = []
        self._shells: Dict[float, Set[Vertex]] = {}

    def refresh(self, anchors: Set[Vertex]) -> None:
        decomposition = dict_anchored_peel(self._graph, frozenset(anchors))
        self._core = dict(decomposition.core)
        self._order = list(decomposition.order)
        self._rank = {
            vertex: position for position, vertex in enumerate(self._order)
        }
        self._shells = build_shell_index(self._core.items())

    def _shell_order(self, members: List[Vertex], level: float) -> List[Vertex]:
        """Removal order within one shell (the Phase-B reconstruction).

        The hashable-vertex twin of
        :func:`repro.cores.decomposition._shell_order_ids`: members in
        tie-break order, each starting at its count of ``core >= level``
        neighbours, only same-shell removals decrement.
        """
        graph = self._graph
        core = self._core
        member_set = set(members)
        effective: Dict[Vertex, int] = {}
        heap: List[Tuple[int, Tuple[str, str], Vertex]] = []
        for v in members:
            degree = sum(1 for w in graph.neighbors(v) if core[w] >= level)
            effective[v] = degree
            heap.append((degree, tie_break_key(v), v))
        heapq.heapify(heap)
        popped: Set[Vertex] = set()
        shell_order: List[Vertex] = []
        while heap:
            degree, _, v = heapq.heappop(heap)
            if v in popped or degree != effective[v]:
                continue
            popped.add(v)
            shell_order.append(v)
            for w in graph.neighbors(v):
                if w in member_set and w not in popped:
                    effective[w] -= 1
                    heapq.heappush(heap, (effective[w], tie_break_key(w), w))
        return shell_order

    def commit_anchor(
        self, vertex: Vertex, anchors: Set[Vertex]
    ) -> Optional[FrozenSet[Vertex]]:
        """Affected-region commit (the delta-refresh contract of
        :mod:`repro.backends.base`): per-level riser cascades update the core
        numbers, and only shells whose membership or starting degrees changed
        re-run their within-shell order cascade — the hashable-vertex twin of
        :func:`repro.cores.decomposition.incremental_anchor_commit`, where
        the algorithm and its correctness argument are documented.
        """
        graph = self._graph
        core = self._core
        rank = self._rank
        order = self._order
        anchor_core = core[vertex]

        levels: Set[int] = set()
        affected: Set[float] = {anchor_core}
        for neighbour in graph.neighbors(vertex):
            value = core[neighbour]
            if value == ANCHOR_CORE:
                continue
            if value >= anchor_core:
                levels.add(int(value) + 1)
            if value > anchor_core:
                affected.add(value)

        touched: List[Tuple[Vertex, float]] = [(vertex, anchor_core)]
        risers_by_level: Dict[int, Set[Vertex]] = {}
        for j in levels:
            risers = marginal_followers(graph, j, vertex, core)
            if risers:
                risers_by_level[j] = risers
                affected.add(j - 1)
                affected.add(j)
                touched.extend((v, float(j - 1)) for v in risers)
        for j, risers in risers_by_level.items():
            for v in risers:
                core[v] = j
        core[vertex] = ANCHOR_CORE

        buckets: Dict[float, List[Vertex]] = {}
        anchor_tail: List[Vertex] = []
        for v in order:
            value = core[v]
            if value == ANCHOR_CORE:
                anchor_tail.append(v)
            else:
                bucket = buckets.get(value)
                if bucket is None:
                    bucket = buckets[value] = []
                bucket.append(v)
        anchor_tail.sort(key=tie_break_key)
        for level in affected:
            bucket = buckets.get(level)
            if not bucket:
                continue
            bucket.sort(key=tie_break_key)
            buckets[level] = self._shell_order(bucket, level)
        new_order: List[Vertex] = []
        for level in sorted(buckets):
            new_order.extend(buckets[level])
        new_order.extend(anchor_tail)
        order[:] = new_order
        for position, v in enumerate(order):
            rank[v] = position

        apply_shell_moves(self._shells, touched, core)
        return frozenset(v for v, _ in touched)

    def removal_ranks(self) -> Mapping[Vertex, int]:
        return dict(self._rank)

    def core_of(self, vertex: Vertex) -> float:
        try:
            return self._core[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def core_numbers(self) -> Mapping[Vertex, float]:
        return self._core

    def vertices_with_core_at_least(self, k: int) -> Set[Vertex]:
        result: Set[Vertex] = set()
        for value, members in self._shells.items():
            if value >= k:
                result.update(members)
        return result

    def count_core_at_least(self, k: int) -> int:
        return sum(
            len(members) for value, members in self._shells.items() if value >= k
        )

    def shell_vertices(self, value: int) -> Set[Vertex]:
        return set(self._shells.get(value, ()))

    def plain_k_core(self, k: int) -> Set[Vertex]:
        return dict_k_core(self._graph, k)

    def candidate_anchors(self, k: int, order_pruning: bool) -> Set[Vertex]:
        target = k - 1
        core = self._core
        rank = self._rank
        candidates: Set[Vertex] = set()
        for vertex, value in core.items():
            # Anchors carry core infinity, so ``value >= k`` excludes them.
            if value >= k:
                continue
            own_rank = rank[vertex]
            for neighbour in self._graph.neighbors(vertex):
                if core.get(neighbour) != target:
                    continue
                if not order_pruning or rank[neighbour] > own_rank:
                    candidates.add(vertex)
                    break
        return candidates

    def non_core_vertices(self, k: int) -> Set[Vertex]:
        return {vertex for vertex, value in self._core.items() if value < k}

    def marginal_followers(
        self, k: int, candidate: Vertex, full_shell: bool
    ) -> Tuple[Set[Vertex], int]:
        visit_log: List[Vertex] = []
        if full_shell:
            gained = full_shell_followers(self._graph, k, candidate, self._core, visit_log)
        else:
            gained = marginal_followers(self._graph, k, candidate, self._core, visit_log)
        return gained, len(visit_log)

    def marginal_followers_with_region(
        self, k: int, candidate: Vertex
    ) -> Tuple[Set[Vertex], int, Optional[FrozenSet[Vertex]]]:
        visit_log: List[Vertex] = []
        region: Set[Vertex] = set()
        gained = marginal_followers(
            self._graph, k, candidate, self._core, visit_log, region_out=region
        )
        return gained, len(visit_log), frozenset(region)


class DictMaintenanceKernel(MaintenanceKernel):
    """Maintenance traversals straight over the maintained graph."""

    def __init__(self, graph: Graph, core: Dict[Vertex, int]) -> None:
        self._graph = graph
        self._core = core

    # -- structure upkeep: the graph itself is the structure -------------
    def add_vertex(self, vertex: Vertex) -> None:
        self._core[vertex] = 0

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        pass

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        pass

    # -- views -----------------------------------------------------------
    def core(self, vertex: Vertex) -> int:
        return self._core[vertex]

    def core_get(self, vertex: Vertex, default: Optional[int] = None) -> Optional[int]:
        return self._core.get(vertex, default)

    def core_numbers(self) -> Dict[Vertex, int]:
        return dict(self._core)

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        return {vertex for vertex, value in self._core.items() if value >= k}

    def shell_vertices(self, k: int) -> Set[Vertex]:
        return {vertex for vertex, value in self._core.items() if value == k}

    # -- insertion traversal (Lemmas 1-2) --------------------------------
    def process_insertion(self, u: Vertex, v: Vertex) -> Tuple[Set[Vertex], Set[Vertex]]:
        core = self._core
        root_core = min(core[u], core[v])
        roots = [w for w in (u, v) if core[w] == root_core]

        # Subcore: shell-root_core vertices reachable from the roots through
        # shell-root_core vertices.  Only these can rise, and by at most 1.
        candidates: Set[Vertex] = set()
        stack: List[Vertex] = []
        for root in roots:
            if root not in candidates:
                candidates.add(root)
                stack.append(root)
        while stack:
            current = stack.pop()
            for neighbour in self._graph.neighbors(current):
                if core[neighbour] == root_core and neighbour not in candidates:
                    candidates.add(neighbour)
                    stack.append(neighbour)

        # Eviction: a candidate can rise only if it keeps more than root_core
        # neighbours among (higher-core vertices ∪ surviving candidates).
        support: Dict[Vertex, int] = {}
        for candidate in candidates:
            support[candidate] = sum(
                1
                for neighbour in self._graph.neighbors(candidate)
                if core[neighbour] > root_core or neighbour in candidates
            )
        evict_queue = [w for w, s in support.items() if s <= root_core]
        evicted: Set[Vertex] = set()
        while evict_queue:
            w = evict_queue.pop()
            if w in evicted:
                continue
            evicted.add(w)
            for neighbour in self._graph.neighbors(w):
                if neighbour in candidates and neighbour not in evicted:
                    support[neighbour] -= 1
                    if support[neighbour] <= root_core:
                        evict_queue.append(neighbour)

        increased = candidates - evicted
        for w in increased:
            core[w] = root_core + 1
        return increased, candidates

    # -- deletion cascade (Lemmas 3-4) ------------------------------------
    def process_deletion(self, u: Vertex, v: Vertex) -> Tuple[Set[Vertex], Set[Vertex]]:
        core = self._core
        root_core = min(core[u], core[v])
        visited: Set[Vertex] = set()

        # Support of a shell-root_core vertex: neighbours with core >= root_core
        # (its max core degree).  A vertex drops when support falls below core.
        support: Dict[Vertex, int] = {}

        def compute_support(w: Vertex) -> int:
            return sum(1 for x in self._graph.neighbors(w) if core[x] >= root_core)

        dropped: Set[Vertex] = set()
        queue: List[Vertex] = []
        for w in (u, v):
            if core[w] == root_core and w not in dropped:
                visited.add(w)
                support[w] = compute_support(w)
                if support[w] < root_core:
                    dropped.add(w)
                    queue.append(w)

        while queue:
            w = queue.pop()
            # Visit neighbours before lowering core(w): their lazily computed
            # support still counts w, and the explicit decrement below then
            # accounts for w exactly once.
            for x in self._graph.neighbors(w):
                if core[x] != root_core or x in dropped:
                    continue
                visited.add(x)
                if x not in support:
                    support[x] = compute_support(x)
                # ``w`` no longer counts towards x's support.
                support[x] -= 1
                if support[x] < root_core:
                    dropped.add(x)
                    queue.append(x)
            core[w] = root_core - 1

        return dropped, visited


class DictBackend(ExecutionBackend):
    """The reference backend: every kernel over the adjacency-set graph."""

    name = BACKEND_DICT

    def decompose(self, graph: Graph, anchors: FrozenSet[Vertex] = frozenset()):
        return dict_anchored_peel(graph, frozenset(anchors))

    def k_core(self, graph: Graph, k: int, anchors: Iterable[Vertex] = ()) -> Set[Vertex]:
        return dict_k_core(graph, k, anchors)

    def remaining_degrees(
        self, graph: Graph, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        deg_plus: Dict[Vertex, int] = {}
        for vertex, own_rank in rank.items():
            count = 0
            for neighbour in graph.neighbors(vertex):
                if rank.get(neighbour, -1) > own_rank:
                    count += 1
            deg_plus[vertex] = count
        return deg_plus

    def build_core_index(self, graph: Graph) -> DictCoreIndexKernel:
        return DictCoreIndexKernel(graph)

    def build_maintenance(
        self, graph: Graph, core: Dict[Vertex, int]
    ) -> DictMaintenanceKernel:
        return DictMaintenanceKernel(graph, core)
