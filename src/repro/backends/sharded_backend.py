"""The ``sharded`` execution backend: partitioned kernels with boundary exchange.

Splits the interned CSR snapshot (:mod:`repro.graph.compact`) into per-shard
subgraphs (:mod:`repro.shard.partition`) and runs every cascade kernel
through the :class:`~repro.shard.coordinator.ShardCoordinator`: per-shard
peeling/cascade waves interleaved with a boundary-exchange step that routes
residual-degree and follower-support updates across cut edges until fixpoint.
Results are bit-identical to the dict/compact/numpy backends — the
equivalence arguments live in :mod:`repro.shard`.

Configuration
-------------
The registry's shared ``backend="sharded"`` instance is configured from the
environment at first use:

``REPRO_SHARD_COUNT``
    Number of shards (default 4).
``REPRO_SHARD_PARTITIONER``
    Partitioner policy name (default ``"hash"``; see
    :data:`repro.shard.partition.PARTITIONERS`).
``REPRO_SHARD_EXECUTOR``
    ``"serial"`` (default) or ``"process"`` — ``process`` runs each shard in
    a dedicated spawn worker (see :mod:`repro.shard.coordinator`).
``REPRO_SHARD_WORKERS``
    Worker-process count for the process executor (default: one per shard).
``REPRO_SHARD_EXCHANGE``
    ``"async"`` (default) for the futures-based boundary exchange or
    ``"lockstep"`` for global barrier rounds (see
    :mod:`repro.shard.coordinator`).
``REPRO_SHARD_SHM``
    ``"1"`` (default) to load process workers from shared-memory blocks,
    ``"0"`` to fall back to pickled shard states.  Ignored by the serial
    executor.

Explicit configurations are first-class too: construct
``ShardedBackend(num_shards=8, executor="process")`` and pass the instance
as any ``backend=`` kwarg, or derive one from the registry singleton with
:meth:`ShardedBackend.with_config`.  Engine checkpoints persist
:meth:`ShardedBackend.config` next to the backend name so a restored engine
comes back with the same shard count and partitioner policy.

Incremental maintenance is delegated to the compact integer-mirror kernel,
like the numpy backend: the maintenance traversals touch tiny per-edge
subcores where a cross-process exchange per edge operation would be pure
latency with no work to amortise it.
"""

from __future__ import annotations

import math
import os
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.backends.base import (
    BACKEND_SHARDED,
    CoreIndexKernel,
    ExecutionBackend,
)
from repro.backends.compact_backend import CompactMaintenanceKernel
from repro.errors import ParameterError
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph, Vertex
from repro.shard.coordinator import (
    EXCHANGE_ASYNC,
    EXCHANGES,
    EXECUTOR_SERIAL,
    EXECUTORS,
    ShardCoordinator,
)
from repro.shard.partition import HashPartitioner, get_partitioner, partition_compact_graph

#: Default shard count when neither the constructor nor the environment says.
DEFAULT_NUM_SHARDS = 4


def _env_int(name: str, default: Optional[int]) -> Optional[int]:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ParameterError(f"{name} must be an integer, got {raw!r}") from None


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in {"1", "true", "yes", "on"}:
        return True
    if lowered in {"0", "false", "no", "off"}:
        return False
    raise ParameterError(f"{name} must be a boolean flag, got {raw!r}")


class ShardedCoreIndexKernel(CoreIndexKernel):
    """Anchored-core-index state over one partitioned ordered snapshot.

    The partition and the coordinator (including its worker processes under
    the process executor) live for the kernel's lifetime; every refresh runs
    the sharded peel and re-broadcasts the anchored core/rank arrays so the
    candidate scans and follower cascades can run shard-locally.
    """

    def __init__(
        self,
        graph: Graph,
        num_shards: int,
        partitioner: Union[str, object],
        executor: str,
        max_workers: Optional[int],
        exchange: str = EXCHANGE_ASYNC,
        shared_memory: Optional[bool] = None,
    ) -> None:
        self._cgraph = CompactGraph.from_graph(graph, ordered=True)
        plan = partition_compact_graph(self._cgraph, num_shards, partitioner)
        self._coord = ShardCoordinator(
            plan,
            executor=executor,
            max_workers=max_workers,
            exchange=exchange,
            shared_memory=shared_memory,
        )
        self._core_ids: List[float] = []
        self._rank_ids: List[int] = []
        self._anchor_ids: Set[int] = set()
        self._core_map_cache: Optional[Dict[Vertex, float]] = None

    @property
    def coordinator(self) -> ShardCoordinator:
        """The live coordinator (exposed for observability and tests)."""
        return self._coord

    def close(self) -> None:
        """Release worker-side shard state (also runs on garbage collection)."""
        self._coord.close()

    def refresh(self, anchors: Set[Vertex]) -> None:
        interner = self._cgraph.interner
        self._anchor_ids = {interner.id_of(anchor) for anchor in anchors}
        core_ids, order_ids = self._coord.decompose(self._anchor_ids)
        self._core_ids = core_ids
        rank_ids = [0] * len(core_ids)
        for position, vid in enumerate(order_ids):
            rank_ids[vid] = position
        self._rank_ids = rank_ids
        self._coord.set_core_state(core_ids, rank_ids)
        self._core_map_cache = None

    def commit_anchor(self, vertex: Vertex, anchors: Set[Vertex]):
        # The sharded kernel takes the full-refresh fallback allowed by the
        # delta-refresh contract — the shard-local result caches make the
        # refresh itself cheap (untouched shards reuse their round-1 peel and
        # fragment outputs) — but still reports an *exact* touched set by
        # diffing the old and new core arrays, so memoizing callers keep
        # their cache hits.
        old_core = self._core_ids
        self.refresh(anchors)
        new_core = self._core_ids
        return frozenset(
            self._cgraph.interner.translate(
                vid for vid in range(len(new_core)) if new_core[vid] != old_core[vid]
            )
        )

    def removal_ranks(self) -> Mapping[Vertex, int]:
        vertices = self._cgraph.interner.vertices
        rank_ids = self._rank_ids
        return {vertices[vid]: rank_ids[vid] for vid in range(len(vertices))}

    def core_of(self, vertex: Vertex) -> float:
        return self._core_ids[self._cgraph.interner.id_of(vertex)]

    def core_numbers(self) -> Mapping[Vertex, float]:
        if self._core_map_cache is None:
            vertices = self._cgraph.interner.vertices
            core_ids = self._core_ids
            self._core_map_cache = {
                vertices[vid]: core_ids[vid] for vid in range(len(vertices))
            }
        return self._core_map_cache

    def vertices_with_core_at_least(self, k: int) -> Set[Vertex]:
        core_ids = self._core_ids
        return self._cgraph.interner.translate(
            vid for vid in range(len(core_ids)) if core_ids[vid] >= k
        )

    def count_core_at_least(self, k: int) -> int:
        return sum(1 for value in self._core_ids if value >= k)

    def shell_vertices(self, value: int) -> Set[Vertex]:
        core_ids = self._core_ids
        return self._cgraph.interner.translate(
            vid for vid in range(len(core_ids)) if core_ids[vid] == value
        )

    def plain_k_core(self, k: int) -> Set[Vertex]:
        return self._cgraph.interner.translate(self._coord.k_core_ids(k))

    def candidate_anchors(self, k: int, order_pruning: bool) -> Set[Vertex]:
        return self._cgraph.interner.translate(
            self._coord.candidate_anchor_ids(k, order_pruning)
        )

    def non_core_vertices(self, k: int) -> Set[Vertex]:
        core_ids = self._core_ids
        return self._cgraph.interner.translate(
            vid for vid in range(len(core_ids)) if core_ids[vid] < k
        )

    def marginal_followers(
        self, k: int, candidate: Vertex, full_shell: bool
    ) -> Tuple[Set[Vertex], int]:
        candidate_id = self._cgraph.interner.id_of(candidate)
        if self._core_ids[candidate_id] >= k:
            # Already inside the anchored k-core: nothing to gain, no work.
            return set(), 0
        if full_shell:
            gained_ids, visited = self._coord.full_shell_follower_ids(k, candidate_id)
        else:
            gained_ids, visited = self._coord.marginal_follower_ids(k, candidate_id)
        return self._cgraph.interner.translate(gained_ids), visited

    def marginal_followers_with_region(self, k: int, candidate: Vertex):
        candidate_id = self._cgraph.interner.id_of(candidate)
        if self._core_ids[candidate_id] >= k:
            return set(), 0, frozenset()
        region_ids: Set[int] = set()
        gained_ids, visited = self._coord.marginal_follower_ids(
            k, candidate_id, region_out=region_ids
        )
        translate = self._cgraph.interner.translate
        return translate(gained_ids), visited, frozenset(translate(region_ids))


class ShardedBackend(ExecutionBackend):
    """Partitioned per-shard kernels behind the shared CSR/interner contract."""

    name = BACKEND_SHARDED

    def __init__(
        self,
        num_shards: Optional[int] = None,
        partitioner: Optional[Union[str, object]] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        exchange: Optional[str] = None,
        shared_memory: Optional[bool] = None,
    ) -> None:
        resolved_shards = (
            num_shards
            if num_shards is not None
            else _env_int("REPRO_SHARD_COUNT", DEFAULT_NUM_SHARDS)
        )
        if resolved_shards is None or resolved_shards < 1:
            raise ParameterError("num_shards must be >= 1")
        self.num_shards = resolved_shards
        self.partitioner = (
            partitioner
            if partitioner is not None
            else os.environ.get("REPRO_SHARD_PARTITIONER", HashPartitioner.name)
        )
        # Validate eagerly so misconfiguration fails at construction, not in
        # the middle of a solver run.
        get_partitioner(self.partitioner)
        self.executor = (
            executor
            if executor is not None
            else os.environ.get("REPRO_SHARD_EXECUTOR", EXECUTOR_SERIAL)
        )
        if self.executor not in EXECUTORS:
            raise ParameterError(
                f"unknown shard executor {self.executor!r}; "
                f"expected one of {sorted(EXECUTORS)}"
            )
        self.max_workers = (
            max_workers
            if max_workers is not None
            else _env_int("REPRO_SHARD_WORKERS", None)
        )
        if self.max_workers is not None and self.max_workers < 1:
            raise ParameterError("max_workers must be >= 1")
        self.exchange = (
            exchange
            if exchange is not None
            else os.environ.get("REPRO_SHARD_EXCHANGE", EXCHANGE_ASYNC)
        )
        if self.exchange not in EXCHANGES:
            raise ParameterError(
                f"unknown shard exchange {self.exchange!r}; "
                f"expected one of {sorted(EXCHANGES)}"
            )
        self.shared_memory = (
            bool(shared_memory)
            if shared_memory is not None
            else _env_bool("REPRO_SHARD_SHM", True)
        )

    # ------------------------------------------------------------------
    # Configuration (persisted by engine checkpoints)
    # ------------------------------------------------------------------
    def config(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "partitioner": getattr(self.partitioner, "name", self.partitioner),
            "executor": self.executor,
            "max_workers": self.max_workers,
            "exchange": self.exchange,
            "shared_memory": self.shared_memory,
        }

    def with_config(self, config: Mapping[str, object]) -> "ShardedBackend":
        merged = dict(self.config())
        unknown = set(config) - set(merged)
        if unknown:
            raise ParameterError(
                f"unknown sharded backend configuration keys: {sorted(unknown)}"
            )
        merged.update(config)
        return ShardedBackend(
            num_shards=merged["num_shards"],
            partitioner=merged["partitioner"],
            executor=merged["executor"],
            max_workers=merged["max_workers"],
            exchange=merged["exchange"],
            shared_memory=merged["shared_memory"],
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _coordinator(self, cgraph: CompactGraph) -> ShardCoordinator:
        plan = partition_compact_graph(cgraph, self.num_shards, self.partitioner)
        return ShardCoordinator(
            plan,
            executor=self.executor,
            max_workers=self.max_workers,
            exchange=self.exchange,
            shared_memory=self.shared_memory,
        )

    def probe(self) -> bool:
        """End-to-end health check: can a real coordinator still decompose?

        Builds a tiny 4-vertex plan with this backend's executor and runs a
        full decomposition through it — exercising pool spawn, state load
        (shm attach included) and op dispatch, the exact substrate that fails
        when workers die.  ``degrade_to_serial`` is off so a still-broken
        process substrate cannot sneak through by silently falling back to
        serial (which would make the engine thrash between backends under a
        persistent fault).  Never raises.
        """
        try:
            probe_graph = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
            cgraph = CompactGraph.from_graph(probe_graph, ordered=True)
            plan = partition_compact_graph(
                cgraph, min(self.num_shards, 2), self.partitioner
            )
            coordinator = ShardCoordinator(
                plan,
                executor=self.executor,
                max_workers=self.max_workers,
                exchange=self.exchange,
                shared_memory=self.shared_memory,
                degrade_to_serial=False,
            )
            try:
                core_ids, _ = coordinator.decompose()
            finally:
                coordinator.close()
            return len(core_ids) == 4
        except Exception:
            return False

    def decompose(self, graph: Graph, anchors: FrozenSet[Vertex] = frozenset()):
        from repro.cores.decomposition import CoreDecomposition

        anchor_set = frozenset(anchors)
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        interner = cgraph.interner
        anchor_ids = [interner.id_of(anchor) for anchor in anchor_set]
        coordinator = self._coordinator(cgraph)
        try:
            core_by_id, order_ids = coordinator.decompose(anchor_ids)
        finally:
            coordinator.close()
        vertices = interner.vertices
        core = {vertices[vid]: core_by_id[vid] for vid in range(len(vertices))}
        order = tuple(vertices[vid] for vid in order_ids)
        return CoreDecomposition(core=core, order=order, anchors=anchor_set)

    def k_core(self, graph: Graph, k: int, anchors: Iterable[Vertex] = ()) -> Set[Vertex]:
        cgraph = CompactGraph.from_graph(graph, ordered=False)
        anchor_ids = [cgraph.interner.id_of(anchor) for anchor in anchors]
        coordinator = self._coordinator(cgraph)
        try:
            survivors = coordinator.k_core_ids(k, anchor_ids)
        finally:
            coordinator.close()
        return cgraph.interner.translate(survivors)

    def remaining_degrees(
        self, graph: Graph, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        cgraph = CompactGraph.from_graph(graph, ordered=False)
        coordinator = self._coordinator(cgraph)
        try:
            return self._remaining_degrees(cgraph, coordinator, rank)
        finally:
            coordinator.close()

    @staticmethod
    def _remaining_degrees(
        cgraph: CompactGraph, coordinator: ShardCoordinator, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        vertices = cgraph.interner.vertices
        if not vertices:
            return {}
        rank_ids = [rank.get(vertex, -1) for vertex in vertices]
        merged = coordinator.remaining_degree_ids(rank_ids)
        return {vertices[gvid]: count for gvid, count in merged.items()}

    def korder(self, graph: Graph):
        """One partition amortised over the peel and the deg+ pass."""
        from repro.cores.decomposition import CoreDecomposition

        cgraph = CompactGraph.from_graph(graph, ordered=True)
        vertices = cgraph.interner.vertices
        coordinator = self._coordinator(cgraph)
        try:
            core_ids, order_ids = coordinator.decompose()
            decomposition = CoreDecomposition(
                core={
                    vertices[vid]: (
                        math.inf if core_ids[vid] == math.inf else int(core_ids[vid])
                    )
                    for vid in range(len(vertices))
                },
                order=tuple(vertices[vid] for vid in order_ids),
            )
            rank = {
                vertex: position
                for position, vertex in enumerate(decomposition.order)
            }
            deg_plus = self._remaining_degrees(cgraph, coordinator, rank)
        finally:
            coordinator.close()
        return decomposition, deg_plus

    def build_core_index(self, graph: Graph) -> ShardedCoreIndexKernel:
        return ShardedCoreIndexKernel(
            graph,
            num_shards=self.num_shards,
            partitioner=self.partitioner,
            executor=self.executor,
            max_workers=self.max_workers,
            exchange=self.exchange,
            shared_memory=self.shared_memory,
        )

    def build_maintenance(
        self, graph: Graph, core: Dict[Vertex, int]
    ) -> CompactMaintenanceKernel:
        # Maintenance traversals touch tiny per-edge subcores: a cross-shard
        # exchange per edge operation would be all latency and no amortisable
        # work, so the compact integer-mirror kernel is shared (the same
        # trade-off the numpy backend makes).
        return CompactMaintenanceKernel(graph, core)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedBackend shards={self.num_shards} "
            f"partitioner={getattr(self.partitioner, 'name', self.partitioner)!r} "
            f"executor={self.executor!r} exchange={self.exchange!r}>"
        )
