"""The ``numpy`` execution backend: vectorised kernels over the CSR contract.

Reuses the :class:`~repro.graph.compact.VertexInterner` / CSR snapshot
contract of the compact backend but stores ``indptr`` / ``indices`` as numpy
arrays and replaces the per-vertex Python loops with array passes:

* **Peeling** runs in two phases.  Phase A computes the core numbers with
  vectorised wave peeling (kill every vertex at or below the current level at
  once, decrement the survivors' effective degrees with one ``bincount`` per
  wave).  Phase B reconstructs the *exact* removal order of the reference
  heap peel shell by shell: each shell's starting effective degrees
  (``# neighbours with core >= c``) come from one vectorised pass, and the
  within-shell cascade — the only genuinely sequential part — runs a packed
  single-int heap over the same-shell subgraph only.  Because every
  cross-shell edge is handled by the vectorised passes, the sequential loop
  touches a fraction of the edges the compact backend's heap does.
* **Cascades** (k-core, follower support counts) are wave-vectorised: support
  counters come from masked ``bincount`` over gathered neighbour ranges and
  whole removal fronts are processed per iteration.  Deletion cascades are
  confluent, so the surviving set is identical to the sequential reference;
  the visited-vertex instrumentation (region size plus removals) is matched
  exactly.
* **Candidate scans** and the K-order ``deg+`` pass are single edge-level
  boolean reductions over ``(row, col)`` arrays.

Import of numpy is gated: this module is only loaded by the registry's lazy
factory once ``repro.backends.numpy_available()`` reports true, so the rest
of the library works on a numpy-free interpreter.  Incremental maintenance is
delegated to the compact kernel — the traversals touch tiny per-edge
subcores, where flat Python int sets already beat numpy's per-call overhead.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

try:  # pragma: no cover - exercised implicitly by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.backends.base import BACKEND_NUMPY, CoreIndexKernel, ExecutionBackend
from repro.backends.compact_backend import CompactMaintenanceKernel
from repro.cores.decomposition import (
    ANCHOR_CORE,
    CoreDecomposition,
    incremental_anchor_commit,
)
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph, Vertex


class NumpyGraph:
    """CSR snapshot with numpy arrays, sharing the interner contract.

    Built *from* a :class:`~repro.graph.compact.CompactGraph` so the interning
    semantics (ordered snapshots intern in tie-break order, id == rank) are
    byte-identical across the compact and numpy backends.
    """

    __slots__ = (
        "interner",
        "indptr",
        "indices",
        "indptr_list",
        "indices_list",
        "degrees",
        "ordered",
        "num_edges",
        "_row",
    )

    def __init__(self, cgraph: CompactGraph) -> None:
        self.interner = cgraph.interner
        self.indptr = np.asarray(cgraph.indptr, dtype=np.int64)
        self.indices = np.asarray(cgraph.indices, dtype=np.int64)
        # The source CompactGraph's plain-list CSR is kept (shared, not
        # copied) for the scalar cascade drain: when a peeling wave goes
        # thin, per-call numpy overhead dwarfs the work, and a Python queue
        # over list-indexed rows is the faster tool.
        self.indptr_list = cgraph.indptr
        self.indices_list = cgraph.indices
        self.degrees = self.indptr[1:] - self.indptr[:-1]
        self.ordered = cgraph.ordered
        self.num_edges = cgraph.num_edges
        self._row = None

    @classmethod
    def from_graph(cls, graph: Graph, ordered: bool = True) -> "NumpyGraph":
        return cls(CompactGraph.from_graph(graph, ordered=ordered))

    @property
    def num_vertices(self) -> int:
        return len(self.interner)

    @property
    def row(self):
        """Edge-level source ids: ``row[e]`` owns ``indices[e]`` (lazy)."""
        if self._row is None:
            self._row = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self.degrees
            )
        return self._row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumpyGraph(n={self.num_vertices}, m={self.num_edges}, ordered={self.ordered})"


def _gather(indptr, indices, frontier):
    """Concatenated neighbour ids of ``frontier`` plus per-member counts."""
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return indices[:0], counts
    offsets = np.cumsum(counts) - counts
    positions = np.repeat(indptr[frontier] - offsets, counts) + np.arange(total)
    return indices[positions], counts


#: Below this frontier size a vectorised wave pays more in fixed numpy-call
#: overhead than the work it does; the cascade switches to a scalar queue.
#: Long-cascade graphs (paths, grids, road networks) peel a handful of
#: vertices per wave, so without the switch the wave loop degrades to
#: O(waves) numpy dispatches.
_SCALAR_DRAIN_CUTOFF = 48


def _drain_scalar(ngraph, eff, alive, peelable, seeds, limit, core=None, level=0):
    """Finish a cascade with a scalar queue once waves go thin.

    Transitively kills every alive, peelable vertex whose effective degree is
    (or drops) <= ``limit``, starting from ``seeds``; updates ``eff`` and
    ``alive`` in place, assigns ``core[v] = level`` when ``core`` is given,
    and returns the number of vertices killed.  Semantically identical to
    running the vectorised wave loop to exhaustion at the same limit.
    """
    indptr = ngraph.indptr_list
    indices = ngraph.indices_list
    queue = [int(vid) for vid in seeds]
    killed = 0
    while queue:
        vid = queue.pop()
        if not alive[vid]:
            continue
        alive[vid] = False
        if core is not None:
            core[vid] = level
        killed += 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if alive[neighbour] and peelable[neighbour]:
                slack = eff[neighbour] - 1
                eff[neighbour] = slack
                if slack <= limit:
                    queue.append(neighbour)
    return killed


def numpy_peel(ngraph: NumpyGraph, anchor_ids: Iterable[int] = ()):
    """Peel a numpy snapshot; return ``(core array, removal order)`` by id.

    Bit-identical to :func:`repro.cores.decomposition.compact_peel` on an
    ordered snapshot: same core numbers, same removal order, anchors mapped
    to infinity and appended last by id.
    """
    n = ngraph.num_vertices
    core = np.zeros(n, dtype=np.float64)
    order: List[int] = []
    if n == 0:
        return core, order
    indptr = ngraph.indptr
    indices = ngraph.indices

    is_anchor = np.zeros(n, dtype=bool)
    anchor_list = list(anchor_ids)
    if anchor_list:
        is_anchor[anchor_list] = True
    peelable = ~is_anchor
    alive = np.ones(n, dtype=bool)
    eff = ngraph.degrees.astype(np.int64)
    remaining = int(peelable.sum())

    # Phase A: core numbers by wave peeling.  ``level`` mirrors the heap
    # peel's running-max ``current_core``.  Each full-array scan happens once
    # per *level* (levels strictly increase); within a level, the next wave's
    # frontier is derived from the just-decremented neighbours only, keeping
    # the cascade O(m) instead of O(n * waves) on long-cascade graphs (paths,
    # grids).
    level = 0
    while remaining:
        active = alive & peelable
        current_min = int(eff[active].min())
        if current_min > level:
            level = current_min
        frontier = np.nonzero(active & (eff <= level))[0]
        while frontier.size:
            if frontier.size < _SCALAR_DRAIN_CUTOFF:
                remaining -= _drain_scalar(
                    ngraph, eff, alive, peelable, frontier, level, core=core, level=level
                )
                break
            core[frontier] = level
            alive[frontier] = False
            remaining -= int(frontier.size)
            nbrs, _ = _gather(indptr, indices, frontier)
            if nbrs.size:
                nbrs = nbrs[alive[nbrs] & peelable[nbrs]]
            if nbrs.size:
                eff -= np.bincount(nbrs, minlength=n)
                touched = np.unique(nbrs)
                frontier = touched[eff[touched] <= level]
            else:
                frontier = nbrs

    if anchor_list:
        core[is_anchor] = math.inf

    # Phase B: exact removal order, shell by shell.  At the instant shell c
    # starts peeling every lower shell is gone and nothing else pops until
    # the shell is exhausted, so the starting effective degree of a shell
    # vertex is its count of core >= c neighbours (anchors are inf) and only
    # same-shell removals change it — the reference heap order restricted to
    # the shell is reproduced with a packed local heap over the same-shell
    # subgraph.
    finite = core[peelable] if anchor_list else core
    levels = np.unique(finite).astype(np.int64) if finite.size else finite
    heappush = heapq.heappush
    heappop = heapq.heappop
    for c in levels.tolist():
        shell = np.nonzero(peelable & (core == c))[0]
        size = int(shell.size)
        nbrs, counts = _gather(indptr, indices, shell)
        member_row = np.repeat(np.arange(size, dtype=np.int64), counts)
        start_eff = np.bincount(member_row[core[nbrs] >= c], minlength=size)
        same = core[nbrs] == c
        position = np.full(n, -1, dtype=np.int64)
        position[shell] = np.arange(size)
        sub_counts = np.bincount(member_row[same], minlength=size)
        sub_indptr = np.concatenate(([0], np.cumsum(sub_counts))).tolist()
        sub_indices = position[nbrs[same]].tolist()

        shell_list = shell.tolist()
        eff_local = start_eff.tolist()
        heap = (start_eff * size + np.arange(size)).tolist() if size else []
        heapq.heapify(heap)
        popped = bytearray(size)
        while heap:
            entry = heappop(heap)
            degree, local = divmod(entry, size) if size > 1 else (entry, 0)
            if popped[local] or degree != eff_local[local]:
                continue
            popped[local] = 1
            order.append(shell_list[local])
            for slot in range(sub_indptr[local], sub_indptr[local + 1]):
                neighbour = sub_indices[slot]
                if not popped[neighbour]:
                    slack = eff_local[neighbour] - 1
                    eff_local[neighbour] = slack
                    heappush(heap, slack * size + neighbour)

    for vid in np.nonzero(is_anchor)[0].tolist():
        order.append(vid)
    return core, order


def numpy_k_core_ids(ngraph: NumpyGraph, k: int, anchor_ids: Iterable[int] = ()):
    """(Anchored) k-core of a numpy snapshot as an id array (wave cascade)."""
    n = ngraph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    indptr = ngraph.indptr
    indices = ngraph.indices
    is_anchor = np.zeros(n, dtype=bool)
    anchor_list = list(anchor_ids)
    if anchor_list:
        is_anchor[anchor_list] = True
    peelable = ~is_anchor
    alive = np.ones(n, dtype=bool)
    eff = ngraph.degrees.astype(np.int64)
    # One full scan seeds the cascade; later frontiers come from the
    # just-decremented neighbours only, and thin waves fall back to the
    # scalar drain (O(m) total, not O(n * waves)).
    frontier = np.nonzero(peelable & (eff < k))[0]
    while frontier.size:
        if frontier.size < _SCALAR_DRAIN_CUTOFF:
            _drain_scalar(ngraph, eff, alive, peelable, frontier, k - 1)
            break
        alive[frontier] = False
        nbrs, _ = _gather(indptr, indices, frontier)
        if nbrs.size:
            nbrs = nbrs[alive[nbrs] & peelable[nbrs]]
        if nbrs.size:
            eff -= np.bincount(nbrs, minlength=n)
            touched = np.unique(nbrs)
            frontier = touched[eff[touched] < k]
        else:
            frontier = nbrs
    return np.nonzero(alive)[0]


def _support_cascade(ngraph: NumpyGraph, k: int, candidate_id: int, core, member_mask):
    """Shared survival cascade: who of ``member_mask`` keeps >= k supporters.

    Supporters are the candidate, vertices with core >= k, and surviving
    members.  Returns ``(survivor ids, number removed)``; the cascade is
    confluent so wave processing matches the sequential reference set.
    """
    n = ngraph.num_vertices
    members = np.nonzero(member_mask)[0]
    size = int(members.size)
    nbrs, counts = _gather(ngraph.indptr, ngraph.indices, members)
    member_row = np.repeat(np.arange(size, dtype=np.int64), counts)
    supporting = (nbrs == candidate_id) | (core[nbrs] >= k) | member_mask[nbrs]
    support = np.bincount(member_row[supporting], minlength=size)

    position = np.full(n, -1, dtype=np.int64)
    position[members] = np.arange(size)
    removed = np.zeros(size, dtype=bool)
    removed_total = 0
    # One full scan seeds the cascade; later fronts come from the members
    # whose support was just decremented (O(region edges) total).
    front = np.nonzero(support < k)[0]
    while front.size:
        removed[front] = True
        removed_total += int(front.size)
        rnbrs, _ = _gather(ngraph.indptr, ngraph.indices, members[front])
        rnbrs = rnbrs[member_mask[rnbrs]]
        local = position[rnbrs]
        local = local[~removed[local]]
        if local.size:
            support = support - np.bincount(local, minlength=size)
            touched = np.unique(local)
            front = touched[support[touched] < k]
        else:
            front = local
    return members[~removed], removed_total


def numpy_marginal_followers(
    ngraph: NumpyGraph, k: int, candidate_id: int, core, region_out=None
) -> Tuple[Set[int], int]:
    """Region-restricted follower cascade; ``(follower ids, visited count)``.

    The visited count matches the dict/compact kernels exactly: one per
    region vertex plus one per cascade removal.  ``region_out`` (a set)
    receives the explored region ids when supplied.
    """
    if core[candidate_id] >= k:
        return set(), 0
    n = ngraph.num_vertices
    target = k - 1
    shellish = core == target
    in_region = np.zeros(n, dtype=bool)
    row_start, row_end = int(ngraph.indptr[candidate_id]), int(ngraph.indptr[candidate_id + 1])
    seeds = ngraph.indices[row_start:row_end]
    seeds = seeds[shellish[seeds]]
    in_region[seeds] = True
    region_size = int(seeds.size)
    frontier = seeds
    while frontier.size:
        nbrs, _ = _gather(ngraph.indptr, ngraph.indices, frontier)
        fresh = np.unique(nbrs[shellish[nbrs] & ~in_region[nbrs]])
        fresh = fresh[fresh != candidate_id]
        in_region[fresh] = True
        region_size += int(fresh.size)
        frontier = fresh
    if region_out is not None:
        region_out.update(np.nonzero(in_region)[0].tolist())
    if region_size == 0:
        return set(), 0
    survivors, removed_total = _support_cascade(ngraph, k, candidate_id, core, in_region)
    return set(survivors.tolist()), region_size + removed_total


def numpy_full_shell_followers(
    ngraph: NumpyGraph, k: int, candidate_id: int, core
) -> Tuple[Set[int], int]:
    """Whole-shell follower cascade (OLAK baseline); same contract as above."""
    if core[candidate_id] >= k:
        return set(), 0
    shell_mask = core == (k - 1)
    shell_mask = shell_mask.copy()
    shell_mask[candidate_id] = False
    shell_size = int(shell_mask.sum())
    if shell_size == 0:
        return set(), 0
    survivors, removed_total = _support_cascade(ngraph, k, candidate_id, core, shell_mask)
    return set(survivors.tolist()), shell_size + removed_total


class NumpyCoreIndexKernel(CoreIndexKernel):
    """Anchored-core-index state over one ordered numpy snapshot."""

    def __init__(self, graph: Graph) -> None:
        self._ngraph = NumpyGraph.from_graph(graph, ordered=True)
        n = self._ngraph.num_vertices
        self._core = np.zeros(n, dtype=np.float64)
        self._rank = np.zeros(n, dtype=np.int64)
        self._order: List[int] = []
        self._core_map_cache: Optional[Dict[Vertex, float]] = None

    def refresh(self, anchors: Set[Vertex]) -> None:
        interner = self._ngraph.interner
        anchor_ids = [interner.id_of(anchor) for anchor in anchors]
        core, order = numpy_peel(self._ngraph, anchor_ids)
        self._core = core
        self._order = order
        rank = np.zeros(self._ngraph.num_vertices, dtype=np.int64)
        if order:
            rank[np.asarray(order, dtype=np.int64)] = np.arange(len(order))
        self._rank = rank
        self._core_map_cache = None

    def commit_anchor(self, vertex: Vertex, anchors: Set[Vertex]):
        # The suffix re-peel is scalar work on a small region — the shared
        # splice kernel runs over the plain-list CSR with the numpy
        # core/rank arrays as storage (see the delta-refresh contract).
        ngraph = self._ngraph
        new_id = ngraph.interner.id_of(vertex)
        touched = incremental_anchor_commit(
            ngraph.indptr_list,
            ngraph.indices_list,
            self._core,
            self._rank,
            self._order,
            new_id,
        )
        self._core_map_cache = None
        vertices = ngraph.interner.vertices
        return frozenset(vertices[vid] for vid, _ in touched)

    def removal_ranks(self) -> Mapping[Vertex, int]:
        vertices = self._ngraph.interner.vertices
        rank = self._rank
        return {vertices[vid]: int(rank[vid]) for vid in range(len(vertices))}

    @staticmethod
    def _as_python(value) -> float:
        return math.inf if math.isinf(value) else int(value)

    def core_of(self, vertex: Vertex) -> float:
        return self._as_python(self._core[self._ngraph.interner.id_of(vertex)])

    def core_numbers(self) -> Mapping[Vertex, float]:
        if self._core_map_cache is None:
            vertices = self._ngraph.interner.vertices
            self._core_map_cache = {
                vertices[vid]: self._as_python(self._core[vid])
                for vid in range(len(vertices))
            }
        return self._core_map_cache

    def _translate(self, ids) -> Set[Vertex]:
        return self._ngraph.interner.translate(ids.tolist())

    def vertices_with_core_at_least(self, k: int) -> Set[Vertex]:
        return self._translate(np.nonzero(self._core >= k)[0])

    def count_core_at_least(self, k: int) -> int:
        return int((self._core >= k).sum())

    def shell_vertices(self, value: int) -> Set[Vertex]:
        return self._translate(np.nonzero(self._core == value)[0])

    def plain_k_core(self, k: int) -> Set[Vertex]:
        return self._translate(numpy_k_core_ids(self._ngraph, k))

    def candidate_anchors(self, k: int, order_pruning: bool) -> Set[Vertex]:
        ngraph = self._ngraph
        if ngraph.num_vertices == 0:
            return set()
        row = ngraph.row
        col = ngraph.indices
        core = self._core
        # Anchors carry core infinity, so ``core < k`` excludes them for free.
        mask = (core[row] < k) & (core[col] == k - 1)
        if order_pruning:
            rank = self._rank
            mask &= rank[col] > rank[row]
        return self._translate(np.unique(row[mask]))

    def non_core_vertices(self, k: int) -> Set[Vertex]:
        return self._translate(np.nonzero(self._core < k)[0])

    def marginal_followers(
        self, k: int, candidate: Vertex, full_shell: bool
    ) -> Tuple[Set[Vertex], int]:
        candidate_id = self._ngraph.interner.id_of(candidate)
        if full_shell:
            gained_ids, visited = numpy_full_shell_followers(
                self._ngraph, k, candidate_id, self._core
            )
        else:
            gained_ids, visited = numpy_marginal_followers(
                self._ngraph, k, candidate_id, self._core
            )
        return self._ngraph.interner.translate(gained_ids), visited

    def marginal_followers_with_region(self, k: int, candidate: Vertex):
        candidate_id = self._ngraph.interner.id_of(candidate)
        region_ids: Set[int] = set()
        gained_ids, visited = numpy_marginal_followers(
            self._ngraph, k, candidate_id, self._core, region_out=region_ids
        )
        translate = self._ngraph.interner.translate
        return translate(gained_ids), visited, frozenset(translate(region_ids))


class NumpyBackend(ExecutionBackend):
    """Vectorised numpy kernels behind the shared CSR/interner contract."""

    name = BACKEND_NUMPY

    def __init__(self) -> None:
        if np is None:  # pragma: no cover - registry filters first
            raise ImportError(
                "the numpy execution backend requires numpy; "
                "install it or pick backend='compact'"
            )

    def decompose(self, graph: Graph, anchors: FrozenSet[Vertex] = frozenset()):
        anchor_set = frozenset(anchors)
        ngraph = NumpyGraph.from_graph(graph, ordered=True)
        interner = ngraph.interner
        anchor_ids = [interner.id_of(anchor) for anchor in anchor_set]
        core_arr, order_ids = numpy_peel(ngraph, anchor_ids)
        vertices = interner.vertices
        core = {
            vertices[vid]: (ANCHOR_CORE if math.isinf(core_arr[vid]) else int(core_arr[vid]))
            for vid in range(len(vertices))
        }
        order = tuple(vertices[vid] for vid in order_ids)
        return CoreDecomposition(core=core, order=order, anchors=anchor_set)

    def k_core(self, graph: Graph, k: int, anchors: Iterable[Vertex] = ()) -> Set[Vertex]:
        ngraph = NumpyGraph.from_graph(graph, ordered=False)
        anchor_ids = [ngraph.interner.id_of(anchor) for anchor in anchors]
        return ngraph.interner.translate(
            numpy_k_core_ids(ngraph, k, anchor_ids).tolist()
        )

    @staticmethod
    def _deg_plus_array(ngraph: NumpyGraph, rank_arr):
        mask = rank_arr[ngraph.indices] > rank_arr[ngraph.row]
        return np.bincount(ngraph.row[mask], minlength=ngraph.num_vertices)

    def remaining_degrees(
        self, graph: Graph, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        ngraph = NumpyGraph.from_graph(graph, ordered=False)
        vertices = ngraph.interner.vertices
        if not vertices:
            return {}
        rank_arr = np.asarray([rank.get(vertex, -1) for vertex in vertices], dtype=np.int64)
        deg_plus = self._deg_plus_array(ngraph, rank_arr)
        return {
            vertices[vid]: int(deg_plus[vid])
            for vid in range(len(vertices))
            if rank_arr[vid] >= 0
        }

    def korder(self, graph: Graph):
        """One numpy snapshot amortised over the peel and the deg+ pass."""
        ngraph = NumpyGraph.from_graph(graph, ordered=True)
        n = ngraph.num_vertices
        core_arr, order_ids = numpy_peel(ngraph)
        vertices = ngraph.interner.vertices
        core = {vertices[vid]: int(core_arr[vid]) for vid in range(n)}
        order = tuple(vertices[vid] for vid in order_ids)
        decomposition = CoreDecomposition(core=core, order=order)
        if n == 0:
            return decomposition, {}
        rank_arr = np.zeros(n, dtype=np.int64)
        rank_arr[np.asarray(order_ids, dtype=np.int64)] = np.arange(n)
        deg_plus = self._deg_plus_array(ngraph, rank_arr)
        return decomposition, {vertices[vid]: int(deg_plus[vid]) for vid in range(n)}

    def build_core_index(self, graph: Graph) -> NumpyCoreIndexKernel:
        return NumpyCoreIndexKernel(graph)

    def build_maintenance(
        self, graph: Graph, core: Dict[Vertex, int]
    ) -> CompactMaintenanceKernel:
        # Maintenance traversals touch tiny per-edge subcores; the compact
        # integer mirror already minimises per-touch cost and numpy's
        # per-call overhead would dominate, so the kernel is shared.
        return CompactMaintenanceKernel(graph, core)
