"""Backend registry and the ``"auto"`` resolution policy.

This module is the **single place** where backend selection policy lives.
Call sites everywhere else pass an opaque ``backend=`` value — a registered
name, ``"auto"``, or an :class:`~repro.backends.base.ExecutionBackend`
instance — to :func:`get_backend` and use whatever comes back.

Registration
------------
:func:`register_backend` associates a name with a zero-argument factory plus
selection metadata.  The five built-ins (dict, compact, numpy, numba,
sharded) are registered by :mod:`repro.backends` itself (with lazy
factories, so importing the package never imports numpy or numba); third
parties can register more::

    from repro.backends import ExecutionBackend, register_backend

    class RemoteBackend(ExecutionBackend):
        name = "remote"
        ...

    register_backend("remote", RemoteBackend, auto_priority=40)

After that every ``backend=`` kwarg in the library accepts ``"remote"``.
Import-gated backends pass ``is_available`` (the probe) and, optionally,
``availability_reason`` — a callable explaining *why* the probe currently
fails (missing import vs. env-disabled), surfaced by
:func:`backend_availability`, ``avt-bench backends`` and every
unavailable-backend error or warning.

The ``auto`` policy
-------------------
``"auto"`` resolves against the graph size *and* the workload shape:

1. **One-shot cascades** (``workload="one-shot"``: a single O(n + m) pass
   such as :func:`repro.cores.decomposition.k_core` or
   :func:`repro.anchored.followers.anchored_k_core`) always resolve to the
   dict backend, at any size: building an interned snapshot costs one full
   pass itself, so a lone cascade can never amortise it.
2. **Amortised workloads with an active calibration table**
   (:func:`repro.backends.calibrate.active_calibration`, installed
   explicitly or via ``REPRO_CALIBRATION``) resolve to the *measured* winner
   of the size band containing the graph — the empirical replacement for
   the priority ladder.  A band whose winner is currently unavailable, and
   sizes no band covers, fall through to rule 3.
3. **Amortised workloads without a measurement** resolve to the dict
   backend below :data:`~repro.backends.base.COMPACT_THRESHOLD` vertices —
   translation overhead dominates on small graphs — and above it to the
   *available* registered backend with the highest ``auto_priority``
   (numba 30 > numpy 20 > compact 10 > sharded 5 > dict 0, so the compiled
   tier wins whenever numba is importable and the multi-process sharded
   backend is never auto-picked).

Explicit names bypass the policy entirely; asking for a registered but
unavailable backend (e.g. ``"numba"`` without numba installed) raises
:class:`~repro.errors.ParameterError` naming the reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.backends.base import (
    BACKEND_AUTO,
    BACKEND_DICT,
    COMPACT_THRESHOLD,
    WORKLOAD_AMORTIZED,
    WORKLOAD_ONE_SHOT,
    ExecutionBackend,
)
from repro.backends.calibrate import active_calibration
from repro.errors import ParameterError

_WORKLOADS = (WORKLOAD_ONE_SHOT, WORKLOAD_AMORTIZED)


#: Fallback explanation when a probe fails without a reason provider.
_GENERIC_REASON = "a runtime dependency is missing"


@dataclass
class _BackendSpec:
    """Registry entry: how to build a backend and when ``auto`` may pick it."""

    name: str
    factory: Callable[[], ExecutionBackend]
    auto_priority: int = 0
    is_available: Callable[[], bool] = field(default=lambda: True)
    availability_reason: Optional[Callable[[], Optional[str]]] = None

    def availability(self) -> Tuple[bool, Optional[str]]:
        """``(available, reason)``: the probe's verdict plus why it failed."""
        if self.is_available():
            return True, None
        reason = None
        if self.availability_reason is not None:
            reason = self.availability_reason()
        return False, reason if reason else _GENERIC_REASON


_REGISTRY: Dict[str, _BackendSpec] = {}
_INSTANCES: Dict[str, ExecutionBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], ExecutionBackend],
    *,
    auto_priority: int = 0,
    is_available: Optional[Callable[[], bool]] = None,
    availability_reason: Optional[Callable[[], Optional[str]]] = None,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name`` for every ``backend=`` kwarg.

    Parameters
    ----------
    factory:
        Zero-argument callable returning an :class:`ExecutionBackend`.
        Called at most once; the instance is cached process-wide.
    auto_priority:
        Rank among available backends when ``"auto"`` resolves an amortised
        workload on a large graph without a calibration table (highest wins;
        dict=0, compact=10, numpy=20, numba=30).
    is_available:
        Optional probe called at resolution time — return ``False`` while a
        runtime dependency is missing and the backend is skipped by ``auto``
        and rejected (with an explanation) when requested by name.
    availability_reason:
        Optional companion to ``is_available``: return a one-line human
        explanation of *why* the backend is currently unavailable (e.g.
        ``"numba is not installed"`` vs ``"disabled via REPRO_DISABLE_NUMBA"``)
        or ``None`` when it is available.  Surfaced by
        :func:`backend_availability`, the CLI and unavailable-backend errors.
    replace:
        Allow overwriting an existing registration (off by default so typos
        cannot silently shadow a built-in).
    """
    if name == BACKEND_AUTO:
        raise ParameterError(f'"{BACKEND_AUTO}" is reserved for the resolution policy')
    if not replace and name in _REGISTRY:
        raise ParameterError(f"backend {name!r} is already registered")
    _REGISTRY[name] = _BackendSpec(
        name=name,
        factory=factory,
        auto_priority=auto_priority,
        is_available=is_available if is_available is not None else (lambda: True),
        availability_reason=availability_reason,
    )
    _INSTANCES.pop(name, None)


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name (available or not), registration order."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose availability probe currently passes."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.is_available())


def backend_availability() -> Dict[str, Optional[str]]:
    """Snapshot ``{name: None if available else reason}`` for every backend.

    The reason distinguishes *why* a tier is being skipped — a missing
    import (``"numba is not installed"``) vs. an explicit environment switch
    (``"disabled via REPRO_DISABLE_NUMBA"``) — so the CLI and the engine's
    unavailable-backend warning can say so instead of a generic shrug.
    """
    report: Dict[str, Optional[str]] = {}
    for name, spec in _REGISTRY.items():
        _available, reason = spec.availability()
        report[name] = reason
    return report


def backend_info() -> Tuple[Dict[str, object], ...]:
    """One metadata row per registered backend, in registration order.

    Each row carries ``name``, ``available`` (the probe's current verdict),
    ``reason`` (why the probe fails, ``None`` when available),
    ``auto_priority`` and ``config`` (the instance configuration of backends
    that have one — empty for stateless backends, and for unavailable
    backends whose factory cannot be called).  This is what the
    ``avt-bench backends`` CLI subcommand renders.
    """
    rows = []
    for name, spec in _REGISTRY.items():
        available, reason = spec.availability()
        config: Dict[str, object] = {}
        if available:
            config = dict(get_backend(name).config())
        rows.append(
            {
                "name": name,
                "available": available,
                "reason": reason,
                "auto_priority": spec.auto_priority,
                "config": config,
            }
        )
    return tuple(rows)


def resolve_backend(
    backend: Union[str, ExecutionBackend],
    num_vertices: int,
    threshold: int = COMPACT_THRESHOLD,
    workload: str = WORKLOAD_AMORTIZED,
) -> str:
    """Resolve a requested backend to a concrete registered *name*.

    Implements the module-level policy: explicit names pass through
    (validated), ``"auto"`` picks by workload and size.  Raises
    :class:`~repro.errors.ParameterError` on unknown names.
    """
    if isinstance(backend, ExecutionBackend):
        return backend.name
    if workload not in _WORKLOADS:
        raise ParameterError(
            f"unknown workload {workload!r}; expected one of {sorted(_WORKLOADS)}"
        )
    if backend != BACKEND_AUTO:
        if backend not in _REGISTRY:
            known = sorted((BACKEND_AUTO, *_REGISTRY))
            raise ParameterError(
                f"unknown backend {backend!r}; expected one of {known}"
            )
        return backend
    if workload == WORKLOAD_ONE_SHOT:
        return BACKEND_DICT
    # Measured policy first: an active calibration table answers amortised
    # workloads with the empirical winner of the size band (rule 2 in the
    # module docstring); anything it cannot answer — no table, no covering
    # band, winner not currently available/registered — falls through to
    # the priority ladder.
    table = active_calibration()
    if table is not None:
        winner = table.winner_for(num_vertices, available=available_backends())
        if winner is not None and winner in _REGISTRY:
            return winner
    if num_vertices < threshold:
        return BACKEND_DICT
    best = BACKEND_DICT
    best_priority = _REGISTRY[BACKEND_DICT].auto_priority if BACKEND_DICT in _REGISTRY else 0
    for name, spec in _REGISTRY.items():
        if spec.auto_priority > best_priority and spec.is_available():
            best, best_priority = name, spec.auto_priority
    return best


def get_backend(
    backend: Union[str, ExecutionBackend],
    num_vertices: int = 0,
    *,
    threshold: int = COMPACT_THRESHOLD,
    workload: str = WORKLOAD_AMORTIZED,
) -> ExecutionBackend:
    """Return the :class:`ExecutionBackend` for a ``backend=`` kwarg value.

    Accepts a backend instance (returned as-is, so resolved backends can be
    re-threaded through ``backend=`` without a second resolution), a
    registered name, or ``"auto"``.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = resolve_backend(backend, num_vertices, threshold=threshold, workload=workload)
    # Probe availability on every call, not just the building one: a backend
    # can become unavailable after its instance was cached (e.g. the
    # REPRO_DISABLE_NUMPY switch flipping mid-process), and the contract is
    # that requesting it by name then fails loudly.
    spec = _REGISTRY[name]
    available, reason = spec.availability()
    if not available:
        raise ParameterError(
            f"backend {name!r} is registered but unavailable ({reason}); "
            f"available backends: {sorted(available_backends())}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = spec.factory()
        _INSTANCES[name] = instance
    return instance
