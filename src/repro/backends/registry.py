"""Backend registry and the ``"auto"`` resolution policy.

This module is the **single place** where backend selection policy lives.
Call sites everywhere else pass an opaque ``backend=`` value — a registered
name, ``"auto"``, or an :class:`~repro.backends.base.ExecutionBackend`
instance — to :func:`get_backend` and use whatever comes back.

Registration
------------
:func:`register_backend` associates a name with a zero-argument factory plus
selection metadata.  The four built-ins (dict, compact, numpy, sharded) are
registered by :mod:`repro.backends` itself (with lazy factories, so
importing the package never imports numpy); third parties can register
more::

    from repro.backends import ExecutionBackend, register_backend

    class RemoteBackend(ExecutionBackend):
        name = "remote"
        ...

    register_backend("remote", RemoteBackend, auto_priority=30)

After that every ``backend=`` kwarg in the library accepts ``"remote"``.

The ``auto`` policy
-------------------
``"auto"`` resolves against the graph size *and* the workload shape:

1. **One-shot cascades** (``workload="one-shot"``: a single O(n + m) pass
   such as :func:`repro.cores.decomposition.k_core` or
   :func:`repro.anchored.followers.anchored_k_core`) always resolve to the
   dict backend, at any size: building an interned snapshot costs one full
   pass itself, so a lone cascade can never amortise it.
2. **Amortised workloads** (full peeling decompositions, the long-lived
   :class:`~repro.anchored.anchored_core.AnchoredCoreIndex`, incremental
   maintenance) resolve to the dict backend below
   :data:`~repro.backends.base.COMPACT_THRESHOLD` vertices — translation
   overhead dominates on small graphs — and above it to the *available*
   registered backend with the highest ``auto_priority`` (numpy 20 >
   compact 10 > sharded 5 > dict 0, so numpy wins whenever it is importable
   and the multi-process sharded backend is never auto-picked).

Explicit names bypass the policy entirely; asking for a registered but
unavailable backend (e.g. ``"numpy"`` without numpy installed) raises
:class:`~repro.errors.ParameterError` with an actionable message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.backends.base import (
    BACKEND_AUTO,
    BACKEND_DICT,
    COMPACT_THRESHOLD,
    WORKLOAD_AMORTIZED,
    WORKLOAD_ONE_SHOT,
    ExecutionBackend,
)
from repro.errors import ParameterError

_WORKLOADS = (WORKLOAD_ONE_SHOT, WORKLOAD_AMORTIZED)


@dataclass
class _BackendSpec:
    """Registry entry: how to build a backend and when ``auto`` may pick it."""

    name: str
    factory: Callable[[], ExecutionBackend]
    auto_priority: int = 0
    is_available: Callable[[], bool] = field(default=lambda: True)


_REGISTRY: Dict[str, _BackendSpec] = {}
_INSTANCES: Dict[str, ExecutionBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], ExecutionBackend],
    *,
    auto_priority: int = 0,
    is_available: Optional[Callable[[], bool]] = None,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name`` for every ``backend=`` kwarg.

    Parameters
    ----------
    factory:
        Zero-argument callable returning an :class:`ExecutionBackend`.
        Called at most once; the instance is cached process-wide.
    auto_priority:
        Rank among available backends when ``"auto"`` resolves an amortised
        workload on a large graph (highest wins; dict=0, compact=10,
        numpy=20).
    is_available:
        Optional probe called at resolution time — return ``False`` while a
        runtime dependency is missing and the backend is skipped by ``auto``
        and rejected (with an explanation) when requested by name.
    replace:
        Allow overwriting an existing registration (off by default so typos
        cannot silently shadow a built-in).
    """
    if name == BACKEND_AUTO:
        raise ParameterError(f'"{BACKEND_AUTO}" is reserved for the resolution policy')
    if not replace and name in _REGISTRY:
        raise ParameterError(f"backend {name!r} is already registered")
    _REGISTRY[name] = _BackendSpec(
        name=name,
        factory=factory,
        auto_priority=auto_priority,
        is_available=is_available if is_available is not None else (lambda: True),
    )
    _INSTANCES.pop(name, None)


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name (available or not), registration order."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose availability probe currently passes."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.is_available())


def backend_info() -> Tuple[Dict[str, object], ...]:
    """One metadata row per registered backend, in registration order.

    Each row carries ``name``, ``available`` (the probe's current verdict),
    ``auto_priority`` and ``config`` (the instance configuration of backends
    that have one — empty for stateless backends, and for unavailable
    backends whose factory cannot be called).  This is what the
    ``avt-bench backends`` CLI subcommand renders.
    """
    rows = []
    for name, spec in _REGISTRY.items():
        available = spec.is_available()
        config: Dict[str, object] = {}
        if available:
            config = dict(get_backend(name).config())
        rows.append(
            {
                "name": name,
                "available": available,
                "auto_priority": spec.auto_priority,
                "config": config,
            }
        )
    return tuple(rows)


def resolve_backend(
    backend: Union[str, ExecutionBackend],
    num_vertices: int,
    threshold: int = COMPACT_THRESHOLD,
    workload: str = WORKLOAD_AMORTIZED,
) -> str:
    """Resolve a requested backend to a concrete registered *name*.

    Implements the module-level policy: explicit names pass through
    (validated), ``"auto"`` picks by workload and size.  Raises
    :class:`~repro.errors.ParameterError` on unknown names.
    """
    if isinstance(backend, ExecutionBackend):
        return backend.name
    if workload not in _WORKLOADS:
        raise ParameterError(
            f"unknown workload {workload!r}; expected one of {sorted(_WORKLOADS)}"
        )
    if backend != BACKEND_AUTO:
        if backend not in _REGISTRY:
            known = sorted((BACKEND_AUTO, *_REGISTRY))
            raise ParameterError(
                f"unknown backend {backend!r}; expected one of {known}"
            )
        return backend
    if workload == WORKLOAD_ONE_SHOT or num_vertices < threshold:
        return BACKEND_DICT
    best = BACKEND_DICT
    best_priority = _REGISTRY[BACKEND_DICT].auto_priority if BACKEND_DICT in _REGISTRY else 0
    for name, spec in _REGISTRY.items():
        if spec.auto_priority > best_priority and spec.is_available():
            best, best_priority = name, spec.auto_priority
    return best


def get_backend(
    backend: Union[str, ExecutionBackend],
    num_vertices: int = 0,
    *,
    threshold: int = COMPACT_THRESHOLD,
    workload: str = WORKLOAD_AMORTIZED,
) -> ExecutionBackend:
    """Return the :class:`ExecutionBackend` for a ``backend=`` kwarg value.

    Accepts a backend instance (returned as-is, so resolved backends can be
    re-threaded through ``backend=`` without a second resolution), a
    registered name, or ``"auto"``.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = resolve_backend(backend, num_vertices, threshold=threshold, workload=workload)
    # Probe availability on every call, not just the building one: a backend
    # can become unavailable after its instance was cached (e.g. the
    # REPRO_DISABLE_NUMPY switch flipping mid-process), and the contract is
    # that requesting it by name then fails loudly.
    spec = _REGISTRY[name]
    if not spec.is_available():
        raise ParameterError(
            f"backend {name!r} is registered but unavailable "
            f"(a runtime dependency is missing); "
            f"available backends: {sorted(available_backends())}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = spec.factory()
        _INSTANCES[name] = instance
    return instance
