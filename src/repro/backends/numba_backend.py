"""The ``numba`` execution backend: JIT-compiled kernels over the CSR contract.

The three hottest kernels in the library run here as ``@njit(cache=True)``
machine-code loops over the same :class:`~repro.graph.compact.VertexInterner`
/ CSR int-array contract the compact and numpy backends share:

* **Peeling** (:func:`_peel_kernel`) is a direct transliteration of
  :func:`repro.cores.decomposition.compact_peel`: a lazy-deletion binary heap
  of packed single-int entries ``degree * n + id``.  Packed keys are unique
  per push (a vertex's effective degree strictly decreases), so *any* correct
  min-heap pops them in the same ascending-key sequence — the hand-rolled
  array heap therefore reproduces the reference ``heapq`` removal order
  bit-for-bit on ordered snapshots (id == tie-break rank).
* **Support cascades** (:func:`_k_core_kernel`, :func:`_marginal_kernel`,
  :func:`_full_shell_kernel`) mirror the compact twins in
  :mod:`repro.cores.decomposition` / :mod:`repro.anchored.followers`,
  including the instrumentation contract: visited = region (or shell) size
  plus cascade removals, exactly what the dict reference logs.
* **Maintenance traversals** (:func:`_insertion_kernel`,
  :func:`_deletion_kernel`) run the Lemma 1-4 subcore searches of
  :class:`~repro.cores.maintenance.CoreMaintainer` over an arena-based
  dynamic adjacency (flat int64 arrays with per-row slack), with
  epoch-stamped scratch arrays instead of per-call sets.  The cascades are
  confluent, so traversal order never changes the returned sets.

Everything else on the :class:`~repro.backends.base.CoreIndexKernel` surface
(candidate scans, shell index upkeep, the incremental anchor-commit splice)
is inherited from the compact kernel — only the hot loops are compiled.

Import gating mirrors the numpy backend: this module is only loaded by the
registry's lazy factory once :func:`repro.backends.numba_available` reports
true.  When numba is absent the ``@njit`` decorator degrades to the identity
function, so the kernels remain importable (and unit-testable) as plain
Python over numpy arrays; the registry still reports the backend unavailable.

JIT compilation is **not** left to the first query: :meth:`NumbaBackend`
compiles every kernel against tiny representative arrays on construction,
inside a ``kernel.jit_compile`` obs span, and records the cost in the
``backend.numba.warmup_seconds`` gauge — so cold-start latency shows up in
traces and bench snapshots instead of polluting the first traced query span.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

try:  # pragma: no cover - exercised implicitly by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

try:  # pragma: no cover - exercised implicitly by the no-numba CI job
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

from repro.backends.base import BACKEND_NUMBA, ExecutionBackend, MaintenanceKernel
from repro.backends.compact_backend import CompactCoreIndexKernel
from repro.cores.decomposition import (
    ANCHOR_CORE,
    CoreDecomposition,
    build_shell_index,
)
from repro.errors import ParameterError
from repro.graph.compact import CompactGraph, VertexInterner
from repro.graph.static import Graph, Vertex

#: Whether the kernels below are actually compiled (vs. plain-Python fallback).
JIT_ENABLED = _numba is not None

if JIT_ENABLED:  # pragma: no cover - requires numba
    _jit = _numba.njit(cache=True)
else:
    def _jit(func):
        """Identity decorator: keeps the kernels importable without numba."""
        return func


# ---------------------------------------------------------------------------
# Packed single-int binary heap (the lazy-deletion peel's only data structure)
# ---------------------------------------------------------------------------
@_jit
def _sift_up(heap, pos):
    """Restore the heap invariant after placing a new entry at ``pos``."""
    entry = heap[pos]
    while pos > 0:
        parent = (pos - 1) >> 1
        if heap[parent] <= entry:
            break
        heap[pos] = heap[parent]
        pos = parent
    heap[pos] = entry


@_jit
def _sift_down(heap, size):
    """Restore the heap invariant after replacing the root (index 0)."""
    entry = heap[0]
    pos = 0
    child = 1
    while child < size:
        if child + 1 < size and heap[child + 1] < heap[child]:
            child += 1
        if heap[child] >= entry:
            break
        heap[pos] = heap[child]
        pos = child
        child = 2 * pos + 1
    heap[pos] = entry


# ---------------------------------------------------------------------------
# Hot kernel 1: the packed-heap peel (compact_peel transliterated)
# ---------------------------------------------------------------------------
@_jit
def _peel_kernel(indptr, indices, is_anchor):
    """Peel a CSR snapshot; return ``(core float64[n], order int64[n])``.

    Entries are ``effective_degree * n + id``: unique per push because a
    vertex's effective degree strictly decreases, so the pop sequence of any
    min-heap equals ascending key order — bit-identical to the ``heapq``
    reference.  Heap capacity ``n + len(indices)`` bounds the initial fill
    plus one push per directed edge relaxation.
    """
    n = indptr.shape[0] - 1
    core = np.zeros(n, np.float64)
    order = np.empty(n, np.int64)
    if n == 0:
        return core, order
    effective = np.empty(n, np.int64)
    for vid in range(n):
        effective[vid] = indptr[vid + 1] - indptr[vid]
    removed = np.zeros(n, np.uint8)
    heap = np.empty(n + indices.shape[0] + 1, np.int64)
    size = 0
    for vid in range(n):
        if is_anchor[vid] == 0:
            heap[size] = effective[vid] * n + vid
            size += 1
            _sift_up(heap, size - 1)
    count = 0
    current_core = 0
    while size > 0:
        entry = heap[0]
        size -= 1
        heap[0] = heap[size]
        if size > 0:
            _sift_down(heap, size)
        degree = entry // n
        vid = entry - degree * n
        if removed[vid] == 1 or degree != effective[vid]:
            continue
        if degree > current_core:
            current_core = degree
        core[vid] = current_core
        order[count] = vid
        count += 1
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if is_anchor[neighbour] == 1 or removed[neighbour] == 1:
                continue
            slack = effective[neighbour] - 1
            effective[neighbour] = slack
            heap[size] = slack * n + neighbour
            size += 1
            _sift_up(heap, size - 1)
    for vid in range(n):
        if is_anchor[vid] == 1:
            core[vid] = np.inf
            order[count] = vid
            count += 1
    return core, order


# ---------------------------------------------------------------------------
# Hot kernel 2: support cascades (k-core + follower evaluation)
# ---------------------------------------------------------------------------
@_jit
def _k_core_kernel(indptr, indices, k, is_anchor):
    """One (anchored) k-core deletion cascade; returns the removed flags."""
    n = indptr.shape[0] - 1
    removed = np.zeros(n, np.uint8)
    degrees = np.empty(n, np.int64)
    stack = np.empty(n + indices.shape[0] + 1, np.int64)
    top = 0
    for vid in range(n):
        degrees[vid] = indptr[vid + 1] - indptr[vid]
        if degrees[vid] < k and is_anchor[vid] == 0:
            stack[top] = vid
            top += 1
    while top > 0:
        top -= 1
        vid = stack[top]
        if removed[vid] == 1:
            continue
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if removed[neighbour] == 1 or is_anchor[neighbour] == 1:
                continue
            degrees[neighbour] -= 1
            if degrees[neighbour] < k:
                stack[top] = neighbour
                top += 1
    return removed


@_jit
def _marginal_kernel(
    indptr, indices, core, k, candidate, mark, support, removed_mark, epoch, region_buf
):
    """Region-restricted follower cascade (compact_marginal_followers twin).

    ``mark`` / ``removed_mark`` / ``support`` are caller-owned scratch arrays
    stamped with ``epoch`` instead of cleared, so repeated evaluations never
    pay an O(n) reset.  Region ids land in ``region_buf`` (discovery order);
    removals are flagged via ``removed_mark == epoch``.  Returns
    ``(region_count, removed_count, visited)`` with the dict reference's
    visited contract: one per region pop plus one per cascade removal.
    """
    target = k - 1.0
    visited = 0
    region_count = 0
    stack = np.empty(indptr.shape[0] + indices.shape[0] + 1, np.int64)
    top = 0
    for position in range(indptr[candidate], indptr[candidate + 1]):
        neighbour = indices[position]
        if core[neighbour] == target and mark[neighbour] != epoch:
            mark[neighbour] = epoch
            region_buf[region_count] = neighbour
            region_count += 1
            stack[top] = neighbour
            top += 1
    while top > 0:
        top -= 1
        current = stack[top]
        visited += 1
        for position in range(indptr[current], indptr[current + 1]):
            neighbour = indices[position]
            if (
                core[neighbour] == target
                and mark[neighbour] != epoch
                and neighbour != candidate
            ):
                mark[neighbour] = epoch
                region_buf[region_count] = neighbour
                region_count += 1
                stack[top] = neighbour
                top += 1
    if region_count == 0:
        return 0, 0, visited

    for idx in range(region_count):
        vid = region_buf[idx]
        count = 0
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour == candidate:
                count += 1
            elif core[neighbour] >= k:
                count += 1
            elif mark[neighbour] == epoch:
                count += 1
        support[vid] = count

    top = 0
    removed_count = 0
    for idx in range(region_count):
        vid = region_buf[idx]
        if support[vid] < k:
            stack[top] = vid
            top += 1
    while top > 0:
        top -= 1
        vid = stack[top]
        if removed_mark[vid] == epoch:
            continue
        removed_mark[vid] = epoch
        removed_count += 1
        visited += 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if mark[neighbour] == epoch and removed_mark[neighbour] != epoch:
                support[neighbour] -= 1
                if support[neighbour] < k:
                    stack[top] = neighbour
                    top += 1
    return region_count, removed_count, visited


@_jit
def _full_shell_kernel(
    indptr, indices, core, k, candidate, mark, support, removed_mark, epoch, shell_buf
):
    """Whole-shell follower cascade (compact_full_shell_followers twin).

    Same scratch-array protocol as :func:`_marginal_kernel`; visited covers
    every shell vertex plus the cascade removals (the OLAK instrumentation).
    """
    target = k - 1.0
    n = indptr.shape[0] - 1
    shell_count = 0
    for vid in range(n):
        if core[vid] == target and vid != candidate:
            mark[vid] = epoch
            shell_buf[shell_count] = vid
            shell_count += 1
    visited = shell_count
    if shell_count == 0:
        return 0, 0, visited

    for idx in range(shell_count):
        vid = shell_buf[idx]
        count = 0
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour == candidate:
                count += 1
            elif core[neighbour] >= k:
                count += 1
            elif mark[neighbour] == epoch:
                count += 1
        support[vid] = count

    stack = np.empty(indptr.shape[0] + indices.shape[0] + 1, np.int64)
    top = 0
    removed_count = 0
    for idx in range(shell_count):
        vid = shell_buf[idx]
        if support[vid] < k:
            stack[top] = vid
            top += 1
    while top > 0:
        top -= 1
        vid = stack[top]
        if removed_mark[vid] == epoch:
            continue
        removed_mark[vid] = epoch
        removed_count += 1
        visited += 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if mark[neighbour] == epoch and removed_mark[neighbour] != epoch:
                support[neighbour] -= 1
                if support[neighbour] < k:
                    stack[top] = neighbour
                    top += 1
    return shell_count, removed_count, visited


@_jit
def _deg_plus_kernel(indptr, indices, rank):
    """K-order ``deg+``: per-vertex count of neighbours ranked after it."""
    n = indptr.shape[0] - 1
    out = np.full(n, -1, np.int64)
    for vid in range(n):
        own = rank[vid]
        if own < 0:
            continue
        count = 0
        for position in range(indptr[vid], indptr[vid + 1]):
            if rank[indices[position]] > own:
                count += 1
        out[vid] = count
    return out


# ---------------------------------------------------------------------------
# Hot kernel 3: maintenance traversals (Lemmas 1-4) over an arena adjacency
# ---------------------------------------------------------------------------
@_jit
def _insertion_kernel(
    row_ptr, row_len, arena, icore, u, v, cand_mark, support, evict_mark, epoch, cand_buf
):
    """Insertion traversal: subcore DFS, support counts, eviction cascade.

    Twin of ``CompactMaintenanceKernel.process_insertion``; candidates land in
    ``cand_buf`` (``cand_mark == epoch``), evictions are flagged via
    ``evict_mark == epoch`` and survivors' core numbers are raised in-place.
    Returns the candidate count (the visited set).  The cascades are
    confluent, so the stack traversal order matches the set-based twins.
    """
    root_core = icore[u] if icore[u] < icore[v] else icore[v]
    stack = np.empty(row_ptr.shape[0] + arena.shape[0] + 2, np.int64)
    cand_count = 0
    top = 0
    if icore[u] == root_core:
        cand_mark[u] = epoch
        cand_buf[cand_count] = u
        cand_count += 1
        stack[top] = u
        top += 1
    if icore[v] == root_core and cand_mark[v] != epoch:
        cand_mark[v] = epoch
        cand_buf[cand_count] = v
        cand_count += 1
        stack[top] = v
        top += 1
    while top > 0:
        top -= 1
        current = stack[top]
        base = row_ptr[current]
        for offset in range(row_len[current]):
            neighbour = arena[base + offset]
            if icore[neighbour] == root_core and cand_mark[neighbour] != epoch:
                cand_mark[neighbour] = epoch
                cand_buf[cand_count] = neighbour
                cand_count += 1
                stack[top] = neighbour
                top += 1

    for idx in range(cand_count):
        w = cand_buf[idx]
        count = 0
        base = row_ptr[w]
        for offset in range(row_len[w]):
            neighbour = arena[base + offset]
            if icore[neighbour] > root_core or cand_mark[neighbour] == epoch:
                count += 1
        support[w] = count

    top = 0
    for idx in range(cand_count):
        w = cand_buf[idx]
        if support[w] <= root_core:
            stack[top] = w
            top += 1
    while top > 0:
        top -= 1
        w = stack[top]
        if evict_mark[w] == epoch:
            continue
        evict_mark[w] = epoch
        base = row_ptr[w]
        for offset in range(row_len[w]):
            neighbour = arena[base + offset]
            if cand_mark[neighbour] == epoch and evict_mark[neighbour] != epoch:
                support[neighbour] -= 1
                if support[neighbour] <= root_core:
                    stack[top] = neighbour
                    top += 1

    risen = root_core + 1
    for idx in range(cand_count):
        w = cand_buf[idx]
        if evict_mark[w] != epoch:
            icore[w] = risen
    return cand_count


@_jit
def _deletion_kernel(
    row_ptr,
    row_len,
    arena,
    icore,
    u,
    v,
    visit_mark,
    support_mark,
    dropped_mark,
    support,
    epoch,
    visit_buf,
):
    """Deletion cascade: lazy support counts, drop everything under-supported.

    Twin of ``CompactMaintenanceKernel.process_deletion``; visited vertices
    land in ``visit_buf`` (``visit_mark == epoch``), drops are flagged via
    ``dropped_mark == epoch`` and their core numbers are lowered in-place.
    ``support_mark`` stamps lazy support initialisation (the twin's
    ``x not in support`` test).  Returns the visited count.
    """
    root_core = icore[u] if icore[u] < icore[v] else icore[v]
    stack = np.empty(arena.shape[0] + 4, np.int64)
    visit_count = 0
    top = 0
    for seed_index in range(2):
        w = u if seed_index == 0 else v
        if icore[w] != root_core or dropped_mark[w] == epoch:
            continue
        if visit_mark[w] != epoch:
            visit_mark[w] = epoch
            visit_buf[visit_count] = w
            visit_count += 1
        if support_mark[w] != epoch:
            support_mark[w] = epoch
            count = 0
            base = row_ptr[w]
            for offset in range(row_len[w]):
                if icore[arena[base + offset]] >= root_core:
                    count += 1
            support[w] = count
        if support[w] < root_core:
            dropped_mark[w] = epoch
            stack[top] = w
            top += 1
    while top > 0:
        top -= 1
        w = stack[top]
        base = row_ptr[w]
        for offset in range(row_len[w]):
            x = arena[base + offset]
            if icore[x] != root_core or dropped_mark[x] == epoch:
                continue
            if visit_mark[x] != epoch:
                visit_mark[x] = epoch
                visit_buf[visit_count] = x
                visit_count += 1
            if support_mark[x] != epoch:
                support_mark[x] = epoch
                count = 0
                x_base = row_ptr[x]
                for x_offset in range(row_len[x]):
                    if icore[arena[x_base + x_offset]] >= root_core:
                        count += 1
                support[x] = count
            support[x] -= 1
            if support[x] < root_core:
                dropped_mark[x] = epoch
                stack[top] = x
                top += 1
        icore[w] = root_core - 1
    return visit_count


# ---------------------------------------------------------------------------
# Core-index kernel: compact state + compiled hot paths
# ---------------------------------------------------------------------------
class NumbaCoreIndexKernel(CompactCoreIndexKernel):
    """Anchored-core-index state with the hot loops JIT-compiled.

    Inherits the compact kernel's state (ordered CSR snapshot, shell index,
    the incremental anchor-commit splice) and overrides exactly the hot
    paths: refresh runs :func:`_peel_kernel`, the follower evaluations run
    the compiled cascades over a float64 mirror of the core numbers, with
    epoch-stamped scratch arrays shared across calls.
    """

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        cgraph = self._cgraph
        n = cgraph.num_vertices
        self._np_indptr = np.asarray(cgraph.indptr, dtype=np.int64)
        self._np_indices = np.asarray(cgraph.indices, dtype=np.int64)
        self._np_core = np.zeros(n, dtype=np.float64)
        # Epoch-stamped scratch: never cleared, so repeated candidate
        # evaluations cost O(region), not O(n).
        self._mark = np.zeros(n, dtype=np.int64)
        self._support = np.zeros(n, dtype=np.int64)
        self._removed_mark = np.zeros(n, dtype=np.int64)
        self._region_buf = np.empty(n, dtype=np.int64)
        self._epoch = 0

    def refresh(self, anchors: Set[Vertex]) -> None:
        interner = self._cgraph.interner
        self._anchor_ids = {interner.id_of(anchor) for anchor in anchors}
        n = self._cgraph.num_vertices
        is_anchor = np.zeros(n, dtype=np.uint8)
        for anchor_id in self._anchor_ids:
            is_anchor[anchor_id] = 1
        core_arr, order_arr = _peel_kernel(self._np_indptr, self._np_indices, is_anchor)
        self._np_core = core_arr
        # Mirror into the inherited list state so every compact query method
        # (candidate scans, shell index, the commit splice) works unchanged.
        core_ids = core_arr.tolist()
        order_ids = order_arr.tolist()
        self._core_ids = core_ids
        self._order_ids = order_ids
        rank_ids = [0] * len(core_ids)
        for position, vid in enumerate(order_ids):
            rank_ids[vid] = position
        self._rank_ids = rank_ids
        self._shell_ids = build_shell_index(enumerate(core_ids))
        self._core_map_cache = None

    def commit_anchor(
        self, vertex: Vertex, anchors: Set[Vertex]
    ) -> Optional[FrozenSet[Vertex]]:
        touched = super().commit_anchor(vertex, anchors)
        # Patch the float64 mirror for exactly the spliced region.
        if touched is not None:
            id_of = self._cgraph.interner.id_of
            core_ids = self._core_ids
            np_core = self._np_core
            for moved in touched:
                vid = id_of(moved)
                np_core[vid] = core_ids[vid]
        return touched

    def plain_k_core(self, k: int) -> Set[Vertex]:
        no_anchors = np.zeros(self._cgraph.num_vertices, dtype=np.uint8)
        removed = _k_core_kernel(self._np_indptr, self._np_indices, k, no_anchors)
        survivors = np.flatnonzero(removed == 0)
        return self._cgraph.interner.translate(int(vid) for vid in survivors)

    def _run_marginal(self, k: int, candidate_id: int):
        """Run the compiled marginal cascade; returns the raw kernel outputs."""
        self._epoch += 1
        return _marginal_kernel(
            self._np_indptr,
            self._np_indices,
            self._np_core,
            k,
            candidate_id,
            self._mark,
            self._support,
            self._removed_mark,
            self._epoch,
            self._region_buf,
        )

    def _gained_from_region(self, region_count: int) -> Set[int]:
        removed_mark = self._removed_mark
        epoch = self._epoch
        region_buf = self._region_buf
        return {
            int(region_buf[idx])
            for idx in range(region_count)
            if removed_mark[region_buf[idx]] != epoch
        }

    def marginal_followers(
        self, k: int, candidate: Vertex, full_shell: bool
    ) -> Tuple[Set[Vertex], int]:
        if k < 1:
            raise ParameterError("k must be >= 1 for follower computation")
        candidate_id = self._cgraph.interner.id_of(candidate)
        if self._np_core[candidate_id] >= k:
            return set(), 0
        if full_shell:
            self._epoch += 1
            member_count, _, visited = _full_shell_kernel(
                self._np_indptr,
                self._np_indices,
                self._np_core,
                k,
                candidate_id,
                self._mark,
                self._support,
                self._removed_mark,
                self._epoch,
                self._region_buf,
            )
        else:
            member_count, _, visited = self._run_marginal(k, candidate_id)
        gained_ids = self._gained_from_region(member_count)
        return self._cgraph.interner.translate(gained_ids), int(visited)

    def marginal_followers_with_region(
        self, k: int, candidate: Vertex
    ) -> Tuple[Set[Vertex], int, Optional[FrozenSet[Vertex]]]:
        if k < 1:
            raise ParameterError("k must be >= 1 for follower computation")
        candidate_id = self._cgraph.interner.id_of(candidate)
        if self._np_core[candidate_id] >= k:
            return set(), 0, frozenset()
        region_count, _, visited = self._run_marginal(k, candidate_id)
        gained_ids = self._gained_from_region(region_count)
        translate = self._cgraph.interner.translate
        region = translate(int(self._region_buf[idx]) for idx in range(region_count))
        return translate(gained_ids), int(visited), frozenset(region)


# ---------------------------------------------------------------------------
# Maintenance kernel: arena adjacency + compiled traversals
# ---------------------------------------------------------------------------
class NumbaMaintenanceKernel(MaintenanceKernel):
    """Maintenance traversals compiled over an arena-based dynamic adjacency.

    The adjacency lives in four flat int64 arrays — ``row_ptr`` / ``row_len``
    / ``row_cap`` index into an append-only ``arena`` of neighbour ids — so
    the compiled traversals walk raw memory.  Rows relocate to the arena tail
    with doubled capacity when they overflow (amortised O(1) per insertion);
    removal is an O(deg) swap-with-last.  The maintainer only forwards
    structurally new/removed edges (the graph mutation is its guard), so rows
    hold no duplicates.

    Traversal semantics are the confluent twins of
    :class:`~repro.backends.compact_backend.CompactMaintenanceKernel`; the
    equivalence suite keeps all twins identical.
    """

    _GROWTH_SLACK = 2

    def __init__(self, graph: Graph, core: Dict[Vertex, int]) -> None:
        self.interner = VertexInterner(graph.vertices())
        ids = self.interner._ids
        n = len(self.interner)
        degrees = [0] * n
        for vertex in graph.vertices():
            degrees[ids[vertex]] = graph.degree(vertex)
        self._row_ptr = np.zeros(max(n, 1), dtype=np.int64)
        self._row_len = np.zeros(max(n, 1), dtype=np.int64)
        self._row_cap = np.zeros(max(n, 1), dtype=np.int64)
        offset = 0
        for vid in range(n):
            cap = degrees[vid] + self._GROWTH_SLACK
            self._row_ptr[vid] = offset
            self._row_cap[vid] = cap
            offset += cap
        self._arena = np.zeros(max(offset, 1), dtype=np.int64)
        self._arena_used = offset
        for vertex in graph.vertices():
            vid = ids[vertex]
            base = self._row_ptr[vid]
            length = 0
            for neighbour in graph.neighbors(vertex):
                self._arena[base + length] = ids[neighbour]
                length += 1
            self._row_len[vid] = length
        self._icore = np.zeros(max(n, 1), dtype=np.int64)
        for vertex, value in core.items():
            vid = ids.get(vertex)
            if vid is not None:
                self._icore[vid] = value
        self._num_vertices = n
        # Epoch-stamped scratch for the traversals.
        self._mark_a = np.zeros(max(n, 1), dtype=np.int64)
        self._mark_b = np.zeros(max(n, 1), dtype=np.int64)
        self._mark_c = np.zeros(max(n, 1), dtype=np.int64)
        self._support = np.zeros(max(n, 1), dtype=np.int64)
        self._out_buf = np.empty(max(n, 1), dtype=np.int64)
        self._epoch = 0

    # -- array growth ------------------------------------------------------
    def _grow_vertex_arrays(self, needed: int) -> None:
        current = self._row_ptr.shape[0]
        if needed <= current:
            return
        new_size = max(needed, current * 2)
        for attr in ("_row_ptr", "_row_len", "_row_cap", "_icore",
                     "_mark_a", "_mark_b", "_mark_c", "_support"):
            old = getattr(self, attr)
            grown = np.zeros(new_size, dtype=np.int64)
            grown[: old.shape[0]] = old
            setattr(self, attr, grown)
        out = np.empty(new_size, dtype=np.int64)
        out[: self._out_buf.shape[0]] = self._out_buf
        self._out_buf = out

    def _reserve_arena(self, extra: int) -> None:
        needed = self._arena_used + extra
        if needed <= self._arena.shape[0]:
            return
        grown = np.zeros(max(needed, self._arena.shape[0] * 2), dtype=np.int64)
        grown[: self._arena_used] = self._arena[: self._arena_used]
        self._arena = grown

    def _append_neighbour(self, vid: int, neighbour: int) -> None:
        length = int(self._row_len[vid])
        if length == self._row_cap[vid]:
            # Relocate the row to the arena tail with doubled capacity.
            new_cap = max(int(self._row_cap[vid]) * 2, self._GROWTH_SLACK)
            self._reserve_arena(new_cap)
            old_base = int(self._row_ptr[vid])
            new_base = self._arena_used
            self._arena[new_base : new_base + length] = self._arena[
                old_base : old_base + length
            ]
            self._row_ptr[vid] = new_base
            self._row_cap[vid] = new_cap
            self._arena_used = new_base + new_cap
        self._arena[self._row_ptr[vid] + length] = neighbour
        self._row_len[vid] = length + 1

    def _drop_neighbour(self, vid: int, neighbour: int) -> None:
        base = int(self._row_ptr[vid])
        length = int(self._row_len[vid])
        for offset in range(length):
            if self._arena[base + offset] == neighbour:
                self._arena[base + offset] = self._arena[base + length - 1]
                self._row_len[vid] = length - 1
                return

    # -- structure upkeep ---------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        vid = self.interner.intern(vertex)
        if vid < self._num_vertices:
            return
        self._grow_vertex_arrays(vid + 1)
        self._reserve_arena(self._GROWTH_SLACK)
        self._row_ptr[vid] = self._arena_used
        self._row_len[vid] = 0
        self._row_cap[vid] = self._GROWTH_SLACK
        self._arena_used += self._GROWTH_SLACK
        self._icore[vid] = 0
        self._num_vertices = vid + 1

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        u_id = self.interner.id_of(u)
        v_id = self.interner.id_of(v)
        self._append_neighbour(u_id, v_id)
        self._append_neighbour(v_id, u_id)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        u_id = self.interner.id_of(u)
        v_id = self.interner.id_of(v)
        self._drop_neighbour(u_id, v_id)
        self._drop_neighbour(v_id, u_id)

    # -- views ---------------------------------------------------------------
    def core(self, vertex: Vertex) -> int:
        vid = self.interner.get_id(vertex)
        if vid < 0:
            raise KeyError(vertex)
        return int(self._icore[vid])

    def core_get(self, vertex: Vertex, default: Optional[int] = None) -> Optional[int]:
        vid = self.interner.get_id(vertex)
        return default if vid < 0 else int(self._icore[vid])

    def core_numbers(self) -> Dict[Vertex, int]:
        vertices = self.interner.vertices
        return {
            vertices[vid]: int(self._icore[vid]) for vid in range(self._num_vertices)
        }

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        vertices = self.interner.vertices
        return {
            vertices[vid]
            for vid in range(self._num_vertices)
            if self._icore[vid] >= k
        }

    def shell_vertices(self, k: int) -> Set[Vertex]:
        vertices = self.interner.vertices
        return {
            vertices[vid]
            for vid in range(self._num_vertices)
            if self._icore[vid] == k
        }

    # -- traversals -----------------------------------------------------------
    def process_insertion(self, u: Vertex, v: Vertex) -> Tuple[Set[Vertex], Set[Vertex]]:
        u_id = self.interner.id_of(u)
        v_id = self.interner.id_of(v)
        self._epoch += 1
        cand_count = _insertion_kernel(
            self._row_ptr,
            self._row_len,
            self._arena,
            self._icore,
            u_id,
            v_id,
            self._mark_a,
            self._support,
            self._mark_b,
            self._epoch,
            self._out_buf,
        )
        vertices = self.interner.vertices
        evict_mark = self._mark_b
        epoch = self._epoch
        visited = set()
        increased = set()
        for idx in range(cand_count):
            vid = int(self._out_buf[idx])
            visited.add(vertices[vid])
            if evict_mark[vid] != epoch:
                increased.add(vertices[vid])
        return increased, visited

    def process_deletion(self, u: Vertex, v: Vertex) -> Tuple[Set[Vertex], Set[Vertex]]:
        u_id = self.interner.id_of(u)
        v_id = self.interner.id_of(v)
        self._epoch += 1
        visit_count = _deletion_kernel(
            self._row_ptr,
            self._row_len,
            self._arena,
            self._icore,
            u_id,
            v_id,
            self._mark_a,
            self._mark_c,
            self._mark_b,
            self._support,
            self._epoch,
            self._out_buf,
        )
        vertices = self.interner.vertices
        dropped_mark = self._mark_b
        epoch = self._epoch
        visited = set()
        dropped = set()
        for idx in range(visit_count):
            vid = int(self._out_buf[idx])
            visited.add(vertices[vid])
            if dropped_mark[vid] == epoch:
                dropped.add(vertices[vid])
        return dropped, visited


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
#: Process-wide warmup bookkeeping: the kernels compile once per interpreter.
_WARMED_UP = False
_WARMUP_SECONDS = 0.0


def warmup_kernels(force: bool = False) -> float:
    """Compile every JIT kernel against tiny representative arrays.

    Runs once per process (subsequent calls are free unless ``force``); the
    compilation happens inside a ``kernel.jit_compile`` obs span and the cost
    is recorded in the ``backend.numba.warmup_seconds`` gauge, so cold-start
    latency is attributed to backend construction, never to the first traced
    query.  Returns the seconds the warmup took (0.0 when already warm or
    when running un-jitted).
    """
    global _WARMED_UP, _WARMUP_SECONDS
    if _WARMED_UP and not force:
        return 0.0
    from repro.obs import global_registry, tracer

    started = time.perf_counter()
    with tracer.span("kernel.jit_compile", backend=BACKEND_NUMBA, jit=JIT_ENABLED):
        # A triangle plus a pendant: exercises every branch type signature.
        indptr = np.asarray([0, 2, 4, 7, 8], dtype=np.int64)
        indices = np.asarray([1, 2, 0, 2, 0, 1, 3, 2], dtype=np.int64)
        no_anchor = np.zeros(4, dtype=np.uint8)
        core, _order = _peel_kernel(indptr, indices, no_anchor)
        _k_core_kernel(indptr, indices, 2, no_anchor)
        mark = np.zeros(4, dtype=np.int64)
        support = np.zeros(4, dtype=np.int64)
        removed_mark = np.zeros(4, dtype=np.int64)
        buf = np.empty(4, dtype=np.int64)
        _marginal_kernel(indptr, indices, core, 3, 3, mark, support, removed_mark, 1, buf)
        _full_shell_kernel(
            indptr, indices, core, 3, 3, mark, support, removed_mark, 2, buf
        )
        _deg_plus_kernel(indptr, indices, np.asarray([0, 1, 2, 3], dtype=np.int64))
        # The same four-vertex graph as an arena adjacency (cap 3 per row).
        row_ptr = np.asarray([0, 3, 6, 9], dtype=np.int64)
        row_len = np.asarray([2, 2, 3, 1], dtype=np.int64)
        arena = np.zeros(12, dtype=np.int64)
        arena[0:2] = (1, 2)
        arena[3:5] = (0, 2)
        arena[6:9] = (0, 1, 3)
        arena[9:10] = (2,)
        icore = np.asarray([2, 2, 2, 1], dtype=np.int64)
        mark_c = np.zeros(4, dtype=np.int64)
        _insertion_kernel(
            row_ptr, row_len, arena, icore.copy(), 2, 3,
            mark, support, removed_mark, 3, buf,
        )
        _deletion_kernel(
            row_ptr, row_len, arena, icore.copy(), 0, 1,
            mark, mark_c, removed_mark, support, 4, buf,
        )
    elapsed = time.perf_counter() - started
    _WARMED_UP = True
    _WARMUP_SECONDS = elapsed
    global_registry().gauge("backend.numba.warmup_seconds", backend=BACKEND_NUMBA).set(
        elapsed
    )
    return elapsed


class NumbaBackend(ExecutionBackend):
    """JIT-compiled kernels over interned CSR snapshots (requires numba)."""

    name = BACKEND_NUMBA

    def __init__(self) -> None:
        if np is None:  # pragma: no cover - guarded by numba_available()
            raise ImportError("the numba backend requires numpy")
        warmup_kernels()

    @staticmethod
    def _snapshot_arrays(cgraph: CompactGraph):
        indptr = np.asarray(cgraph.indptr, dtype=np.int64)
        indices = np.asarray(cgraph.indices, dtype=np.int64)
        return indptr, indices

    def decompose(self, graph: Graph, anchors: FrozenSet[Vertex] = frozenset()):
        anchor_set = frozenset(anchors)
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        indptr, indices = self._snapshot_arrays(cgraph)
        is_anchor = np.zeros(cgraph.num_vertices, dtype=np.uint8)
        interner = cgraph.interner
        for anchor in anchor_set:
            is_anchor[interner.id_of(anchor)] = 1
        core_arr, order_arr = _peel_kernel(indptr, indices, is_anchor)
        vertices = interner.vertices
        core = {
            vertices[vid]: (ANCHOR_CORE if is_anchor[vid] else float(core_arr[vid]))
            for vid in range(len(vertices))
        }
        order = tuple(vertices[int(vid)] for vid in order_arr)
        return CoreDecomposition(core=core, order=order, anchors=anchor_set)

    def k_core(self, graph: Graph, k: int, anchors: Iterable[Vertex] = ()) -> Set[Vertex]:
        cgraph = CompactGraph.from_graph(graph, ordered=False)
        indptr, indices = self._snapshot_arrays(cgraph)
        is_anchor = np.zeros(cgraph.num_vertices, dtype=np.uint8)
        for anchor in anchors:
            is_anchor[cgraph.interner.id_of(anchor)] = 1
        removed = _k_core_kernel(indptr, indices, k, is_anchor)
        survivors = np.flatnonzero(removed == 0)
        return cgraph.interner.translate(int(vid) for vid in survivors)

    def remaining_degrees(
        self, graph: Graph, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        cgraph = CompactGraph.from_graph(graph, ordered=False)
        return self._remaining_degrees(cgraph, rank)

    @staticmethod
    def _remaining_degrees(
        cgraph: CompactGraph, rank: Mapping[Vertex, int]
    ) -> Dict[Vertex, int]:
        indptr, indices = NumbaBackend._snapshot_arrays(cgraph)
        vertices = cgraph.interner.vertices
        rank_arr = np.asarray(
            [rank.get(vertex, -1) for vertex in vertices], dtype=np.int64
        )
        deg_plus = _deg_plus_kernel(indptr, indices, rank_arr)
        return {
            vertices[vid]: int(deg_plus[vid])
            for vid in range(len(vertices))
            if deg_plus[vid] >= 0
        }

    def korder(self, graph: Graph):
        """One CSR snapshot amortised over both the peel and the deg+ pass."""
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        indptr, indices = self._snapshot_arrays(cgraph)
        no_anchor = np.zeros(cgraph.num_vertices, dtype=np.uint8)
        core_arr, order_arr = _peel_kernel(indptr, indices, no_anchor)
        vertices = cgraph.interner.vertices
        decomposition = CoreDecomposition(
            core={vertices[vid]: float(core_arr[vid]) for vid in range(len(vertices))},
            order=tuple(vertices[int(vid)] for vid in order_arr),
        )
        rank_arr = np.empty(len(vertices), dtype=np.int64)
        for position, vid in enumerate(order_arr):
            rank_arr[vid] = position
        deg_plus = _deg_plus_kernel(indptr, indices, rank_arr)
        rank_of = {
            vertices[vid]: int(deg_plus[vid]) for vid in range(len(vertices))
        }
        return decomposition, rank_of

    def build_core_index(self, graph: Graph) -> NumbaCoreIndexKernel:
        return NumbaCoreIndexKernel(graph)

    def build_maintenance(
        self, graph: Graph, core: Dict[Vertex, int]
    ) -> NumbaMaintenanceKernel:
        return NumbaMaintenanceKernel(graph, core)
