"""Exception hierarchy for the AVT reproduction library.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for invalid graph manipulations (unknown vertex, bad edge...)."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex absent from the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge absent from the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class SelfLoopError(GraphError):
    """Raised when a self-loop edge is added to an undirected simple graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self-loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class SnapshotError(ReproError):
    """Raised for invalid snapshot-sequence operations (bad index, empty...)."""


class ParameterError(ReproError):
    """Raised when an algorithm parameter is out of its valid range."""


class InvariantViolationError(ReproError):
    """Raised when an internal data-structure invariant check fails.

    These checks are cheap assertions kept in production code because the
    order-based maintenance structures are easy to corrupt silently; failing
    loudly is preferable to returning wrong anchor sets.
    """


class DatasetError(ReproError):
    """Raised when a dataset file cannot be parsed or a name is unknown."""


class CheckpointError(ReproError):
    """Raised when an engine checkpoint cannot be written, read or verified."""


class CheckpointCorruptionError(CheckpointError):
    """Raised when a checkpoint section fails its digest or length check.

    ``section`` names the manifest section that failed verification (or
    ``"manifest"`` / ``"header"`` when the envelope itself is damaged), so
    operators know *what* was lost, not just that the file is bad.
    """

    def __init__(self, path: object, section: str, detail: str) -> None:
        super().__init__(f"checkpoint {path} is corrupted in section {section!r}: {detail}")
        self.path = path
        self.section = section


class FaultError(ReproError):
    """Raised by an injected ``error``-action fault (:mod:`repro.resilience`).

    Deliberately a :class:`ReproError` subclass so chaos tests exercise the
    exact handling paths a real kernel failure would take.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(f"injected fault at {site}" + (f": {detail}" if detail else ""))
        self.site = site


class ShardTimeoutError(ReproError):
    """Raised when a shard op misses its per-op deadline (the worker is
    killed and the pool respawned; supervision retries or degrades)."""


class ShardExecutionError(ReproError):
    """Raised when supervised shard execution exhausts every recovery rung.

    Surfaced only after the retry budget is spent *and* (under the process
    executor) the serial fallback failed too; the engine reacts by degrading
    the backend (see ``StreamingAVTEngine.health()``).
    """
