"""Deterministic vertex and edge ordering shared across the whole library.

Vertex identifiers are arbitrary hashable objects (the experiments use
integers, the datasets sometimes strings), so Python's default comparison is
not available across types.  Every algorithm that needs a reproducible
iteration order — the peeling decomposition's tie-breaking, the greedy
solvers' candidate scans, the generators' seeded sampling, edge-list IO —
must therefore sort by the same explicit key, otherwise two call sites can
disagree about "the first candidate" and produce different (both valid, but
non-reproducible) results.

This module is that single source of truth.  :func:`tie_break_key` orders
vertices by ``(type name, repr)``: total within one run, stable across runs
for the value-like identifiers the library supports, and identical to the key
the solvers historically used.  :func:`edge_tie_break_key` lifts it to edge
pairs so heterogeneous edge lists sort identically everywhere.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

Vertex = Hashable

#: The shape of a vertex sort key: ``(type name, repr)``.
VertexKey = Tuple[str, str]


def tie_break_key(vertex: Vertex) -> VertexKey:
    """Deterministic tie-breaking key across heterogeneous vertex identifiers."""
    return (type(vertex).__name__, repr(vertex))


def edge_tie_break_key(edge: Sequence[Vertex]) -> Tuple[VertexKey, VertexKey]:
    """Deterministic sort key for an edge ``(u, v)`` built from the vertex keys."""
    u, v = edge
    return (tie_break_key(u), tie_break_key(v))
