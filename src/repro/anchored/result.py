"""Result and statistics containers shared by the anchored k-core solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.graph.static import Vertex


@dataclass
class SolverStats:
    """Instrumentation collected while selecting an anchor set.

    Attributes
    ----------
    candidates_evaluated:
        Number of candidate anchors whose follower sets were computed.
    visited_vertices:
        Total vertices touched by follower computations and candidate scans —
        the quantity plotted in the paper's Figures 4, 6 and 8.  This is the
        *algorithmic* cost model: a memoized evaluation replays the counts
        its cascade reported when it actually ran, so the figure stays
        comparable (and bit-identical) across the memoized and
        full-recompute paths.
    runtime_seconds:
        Wall-clock time spent inside the solver.
    iterations:
        Number of greedy iterations (anchors actually selected).
    maintenance_visited:
        Vertices touched by incremental core maintenance (IncAVT only); kept
        separate from ``visited_vertices`` because the paper's candidate-visit
        figures do not include index-maintenance work.
    candidates_recomputed:
        Candidate evaluations that actually ran a cascade (memoized Greedy
        only re-runs candidates its invalidation marked stale; without
        memoization this equals ``candidates_evaluated``).
    cache_hits:
        Candidate evaluations answered from the memoized gain cache.
    commit_seconds:
        Wall-clock latency of each anchor commit (the index refresh /
        incremental splice), in selection order.
    """

    candidates_evaluated: int = 0
    visited_vertices: int = 0
    runtime_seconds: float = 0.0
    iterations: int = 0
    maintenance_visited: int = 0
    candidates_recomputed: int = 0
    cache_hits: int = 0
    commit_seconds: List[float] = field(default_factory=list)

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another stats object into this one (used across snapshots)."""
        self.candidates_evaluated += other.candidates_evaluated
        self.visited_vertices += other.visited_vertices
        self.runtime_seconds += other.runtime_seconds
        self.iterations += other.iterations
        self.maintenance_visited += other.maintenance_visited
        self.candidates_recomputed += other.candidates_recomputed
        self.cache_hits += other.cache_hits
        self.commit_seconds.extend(other.commit_seconds)


@dataclass(frozen=True)
class AnchoredKCoreResult:
    """The outcome of one anchored k-core selection on a single graph.

    Attributes
    ----------
    algorithm:
        Name of the solver that produced the result.
    k:
        The degree constraint.
    budget:
        Maximum number of anchors allowed (the paper's ``l``).
    anchors:
        The selected anchor vertices, in selection order.
    followers:
        The followers of the selected anchor set (Definition 3).
    anchored_core_size:
        Size of the anchored k-core ``|C_k(S)|`` (k-core + anchors + followers).
    stats:
        Instrumentation collected during the selection.
    """

    algorithm: str
    k: int
    budget: int
    anchors: Tuple[Vertex, ...]
    followers: FrozenSet[Vertex]
    anchored_core_size: int
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def num_followers(self) -> int:
        """Number of followers gained by the anchor set."""
        return len(self.followers)

    def summary(self) -> str:
        """Return a one-line human-readable summary (used by examples and CLI)."""
        anchor_text = ", ".join(str(anchor) for anchor in self.anchors) or "-"
        return (
            f"{self.algorithm}: anchors=[{anchor_text}] followers={self.num_followers} "
            f"|C_k(S)|={self.anchored_core_size} "
            f"(candidates={self.stats.candidates_evaluated}, "
            f"visited={self.stats.visited_vertices})"
        )
