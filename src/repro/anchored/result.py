"""Result and statistics containers shared by the anchored k-core solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.graph.static import Vertex
from repro.obs.metrics import MetricsRegistry

#: Integer counters, in declaration order (also the legacy field order).
_COUNT_FIELDS = (
    "candidates_evaluated",
    "visited_vertices",
    "iterations",
    "maintenance_visited",
    "candidates_recomputed",
    "cache_hits",
)

#: Wall-clock accumulators (floats).
_SECONDS_FIELDS = ("runtime_seconds",)

FIELDS = (
    "candidates_evaluated",
    "visited_vertices",
    "runtime_seconds",
    "iterations",
    "maintenance_visited",
    "candidates_recomputed",
    "cache_hits",
)

_PREFIX = "solver."


class _CommitSeconds(list):
    """Per-commit latency list that mirrors every value into a histogram.

    Behaves exactly like the plain ``List[float]`` it replaced — JSON
    serialisable, comparable to lists, ``append``/``extend`` at the existing
    call sites — while keeping the ``solver.commit_seconds`` histogram (and
    therefore p50/p95/p99) in sync.
    """

    __slots__ = ("_histogram",)

    def __init__(self, histogram, values: Iterable[float] = ()) -> None:
        super().__init__()
        self._histogram = histogram
        self.extend(values)

    def append(self, value: float) -> None:
        list.append(self, value)
        self._histogram.observe(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.append(value)

    def _load(self, values: Iterable[float]) -> None:
        """Restore values without re-observing (buckets restored separately)."""
        list.extend(self, values)


class SolverStats:
    """Instrumentation collected while selecting an anchor set.

    Attributes
    ----------
    candidates_evaluated:
        Number of candidate anchors whose follower sets were computed.
    visited_vertices:
        Total vertices touched by follower computations and candidate scans —
        the quantity plotted in the paper's Figures 4, 6 and 8.  This is the
        *algorithmic* cost model: a memoized evaluation replays the counts
        its cascade reported when it actually ran, so the figure stays
        comparable (and bit-identical) across the memoized and
        full-recompute paths.
    runtime_seconds:
        Wall-clock time spent inside the solver.
    iterations:
        Number of greedy iterations (anchors actually selected).
    maintenance_visited:
        Vertices touched by incremental core maintenance (IncAVT only); kept
        separate from ``visited_vertices`` because the paper's candidate-visit
        figures do not include index-maintenance work.
    candidates_recomputed:
        Candidate evaluations that actually ran a cascade (memoized Greedy
        only re-runs candidates its invalidation marked stale; without
        memoization this equals ``candidates_evaluated``).
    cache_hits:
        Candidate evaluations answered from the memoized gain cache.
    commit_seconds:
        Wall-clock latency of each anchor commit (the index refresh /
        incremental splice), in selection order.

    Like :class:`~repro.engine.stats.EngineStats`, this is a view over a
    :class:`~repro.obs.metrics.MetricsRegistry`: attribute reads/writes go to
    ``solver.*`` counters, ``commit_seconds`` doubles as a log-bucketed
    histogram, and :meth:`snapshot` emits the unified
    ``{name, type, value, labels}`` schema.  Instances stay picklable (they
    travel inside checkpointed results) by reducing to their snapshot.
    """

    __slots__ = ("registry", "_metrics", "_commit_histogram", "_commit_list")

    def __init__(self, registry: Optional[MetricsRegistry] = None, **values: Any) -> None:
        commit_values = values.pop("commit_seconds", ())
        unknown = set(values) - set(FIELDS)
        if unknown:
            raise TypeError(f"unexpected SolverStats field(s): {sorted(unknown)}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._metrics = {name: self.registry.counter(_PREFIX + name) for name in FIELDS}
        self._commit_histogram = self.registry.histogram(_PREFIX + "commit_seconds")
        self._commit_list = _CommitSeconds(self._commit_histogram, commit_values)
        for name, value in values.items():
            self._metrics[name].set(value)

    @property
    def commit_seconds(self) -> _CommitSeconds:
        return self._commit_list

    @commit_seconds.setter
    def commit_seconds(self, values: Iterable[float]) -> None:
        self._commit_list = _CommitSeconds(self._commit_histogram, values)

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another stats object into this one (used across snapshots)."""
        for name in FIELDS:
            self._metrics[name].inc(other._metrics[name].value)
        self.commit_seconds.extend(other.commit_seconds)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def values(self) -> Dict[str, Any]:
        """Raw field values as a flat dict (legacy snapshot shape)."""
        flat: Dict[str, Any] = {name: self._metrics[name].value for name in FIELDS}
        flat["commit_seconds"] = list(self._commit_list)
        return flat

    def snapshot(self) -> List[Dict[str, Any]]:
        """All metrics in the unified ``{name, type, value, labels}`` schema."""
        entries = [self._metrics[name].to_metric() for name in FIELDS]
        commit = self._commit_histogram.to_metric()
        commit["value"]["samples"] = list(self._commit_list)
        entries.append(commit)
        return entries

    @classmethod
    def from_snapshot(
        cls,
        state: Union[Dict[str, Any], Iterable[Dict[str, Any]]],
        registry: Optional[MetricsRegistry] = None,
    ) -> "SolverStats":
        """Rebuild stats from :meth:`snapshot` output (legacy dicts accepted)."""
        if isinstance(state, dict):
            known = {key: value for key, value in state.items() if key in FIELDS}
            stats = cls(registry=registry, **known)
            stats.commit_seconds = state.get("commit_seconds", ())
            return stats
        stats = cls(registry=registry)
        for entry in state:
            name = entry.get("name", "")
            fieldname = name[len(_PREFIX):] if name.startswith(_PREFIX) else name
            if fieldname in stats._metrics:
                stats._metrics[fieldname].restore(entry.get("value", 0))
            elif fieldname == "commit_seconds":
                value = dict(entry.get("value") or {})
                samples = value.pop("samples", [])
                stats._commit_histogram.restore(value)
                stats._commit_list._load(samples)
        return stats

    def __reduce__(self):
        # Pickle via the snapshot: avoids dragging registry internals (and
        # the list-subclass mirroring) through pickle, and keeps checkpointed
        # results loadable across registry implementation changes.
        return (_solver_stats_from_snapshot, (self.snapshot(),))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolverStats):
            return NotImplemented
        return self.values() == other.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={value!r}" for name, value in self.values().items() if value)
        return f"SolverStats({fields})"


def _solver_stats_from_snapshot(state: List[Dict[str, Any]]) -> SolverStats:
    """Module-level unpickling hook for :meth:`SolverStats.__reduce__`."""
    return SolverStats.from_snapshot(state)


def _make_field_property(name: str) -> property:
    def fget(self: SolverStats):
        return self._metrics[name].value

    def fset(self: SolverStats, value) -> None:
        self._metrics[name].set(value)

    fget.__name__ = name
    return property(fget, fset, doc=f"Registry-backed view of ``solver.{name}``.")


for _name in FIELDS:
    setattr(SolverStats, _name, _make_field_property(_name))
del _name


@dataclass(frozen=True)
class AnchoredKCoreResult:
    """The outcome of one anchored k-core selection on a single graph.

    Attributes
    ----------
    algorithm:
        Name of the solver that produced the result.
    k:
        The degree constraint.
    budget:
        Maximum number of anchors allowed (the paper's ``l``).
    anchors:
        The selected anchor vertices, in selection order.
    followers:
        The followers of the selected anchor set (Definition 3).
    anchored_core_size:
        Size of the anchored k-core ``|C_k(S)|`` (k-core + anchors + followers).
    stats:
        Instrumentation collected during the selection.
    """

    algorithm: str
    k: int
    budget: int
    anchors: Tuple[Vertex, ...]
    followers: FrozenSet[Vertex]
    anchored_core_size: int
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def num_followers(self) -> int:
        """Number of followers gained by the anchor set."""
        return len(self.followers)

    def summary(self) -> str:
        """Return a one-line human-readable summary (used by examples and CLI)."""
        anchor_text = ", ".join(str(anchor) for anchor in self.anchors) or "-"
        return (
            f"{self.algorithm}: anchors=[{anchor_text}] followers={self.num_followers} "
            f"|C_k(S)|={self.anchored_core_size} "
            f"(candidates={self.stats.candidates_evaluated}, "
            f"visited={self.stats.visited_vertices})"
        )
