"""OLAK baseline: per-snapshot anchored k-core selection without AVT pruning.

OLAK (Zhang et al., PVLDB 2017) is the first practical algorithm for the
anchored k-core problem on static graphs.  The paper adapts it as a baseline by
re-running it independently at every snapshot.  Relative to the paper's
optimised Greedy, this adaptation

* scans the *unpruned* candidate universe (every un-anchored vertex outside the
  anchored k-core), and
* evaluates each candidate with a cascade over the whole ``(k-1)``-shell rather
  than only the region reachable from the candidate,

so it produces the same anchor quality while visiting many more vertices —
which is exactly how it behaves in the paper's Figures 3-8.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Set, Union

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.errors import ParameterError
from repro.backends import BACKEND_AUTO, ExecutionBackend
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


class OLAKAnchoredKCore:
    """Per-snapshot OLAK adaptation used as a baseline in the evaluation."""

    name = "OLAK"

    def __init__(
        self,
        graph: Graph,
        k: int,
        budget: int,
        stop_on_zero_gain: bool = True,
        initial_anchors: Iterable[Vertex] = (),
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        self._graph = graph
        self._k = k
        self._budget = budget
        self._stop_on_zero_gain = stop_on_zero_gain
        self._initial_anchors = tuple(initial_anchors)
        self._backend = backend

    def select(self) -> AnchoredKCoreResult:
        """Run the OLAK-style selection and return the resulting anchor set."""
        started = time.perf_counter()
        index = AnchoredCoreIndex(
            self._graph, self._k, anchors=self._initial_anchors, backend=self._backend
        )
        chosen: List[Vertex] = list(self._initial_anchors)
        stats = SolverStats()

        while len(chosen) < self._budget:
            candidates = index.all_non_core_vertices()
            best_vertex: Optional[Vertex] = None
            best_gain: Set[Vertex] = set()
            for candidate in sorted(candidates, key=tie_break_key):
                gained = index.marginal_followers(candidate, full_shell=True)
                if len(gained) > len(best_gain):
                    best_vertex, best_gain = candidate, gained
            if best_vertex is None or (self._stop_on_zero_gain and not best_gain):
                break
            index.add_anchor(best_vertex)
            chosen.append(best_vertex)
            stats.iterations += 1

        stats.candidates_evaluated = index.candidates_evaluated
        stats.visited_vertices = index.visited_vertices
        stats.runtime_seconds = time.perf_counter() - started
        return AnchoredKCoreResult(
            algorithm=self.name,
            k=self._k,
            budget=self._budget,
            anchors=tuple(chosen),
            followers=frozenset(index.followers()),
            anchored_core_size=index.anchored_core_size(),
            stats=stats,
        )
