"""Exact anchored k-core selection by exhaustive enumeration (Section 6.4).

The paper's case study compares the heuristics against a brute-force solver
that enumerates every anchor set of size ``l`` — time complexity
``O(C(|V|, l) * |E|)``, feasible only for tiny budgets on small graphs.  The
implementation below restricts the enumeration universe to vertices outside
the k-core, which preserves optimality: a vertex already in the k-core is a
member of ``C_k(S)`` for every anchor set ``S`` and contributes its support
whether anchored or not, so anchoring it never helps.  A smaller universe
(e.g. the Theorem-3 candidates) can be supplied explicitly for speed at the
cost of exactness for multi-anchor interactions through low-core vertices.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.followers import anchored_k_core, compute_followers
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.errors import ParameterError
from repro.backends import BACKEND_AUTO, ExecutionBackend
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


class BruteForceAnchoredKCore:
    """Exact anchored k-core selection by enumerating candidate anchor sets.

    Parameters
    ----------
    graph, k, budget:
        Problem instance, as for the heuristics.
    max_combinations:
        Safety valve: if the number of anchor-set combinations exceeds this
        bound a :class:`ParameterError` is raised instead of running for hours.
        Raise it explicitly for larger case studies.
    candidate_universe:
        Optional explicit universe to enumerate; defaults to every vertex
        outside the k-core (exact).
    """

    name = "Brute-force"

    def __init__(
        self,
        graph: Graph,
        k: int,
        budget: int,
        max_combinations: int = 2_000_000,
        candidate_universe: Optional[Iterable[Vertex]] = None,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        self._graph = graph
        self._k = k
        self._budget = budget
        self._max_combinations = max_combinations
        self._backend = backend
        self._universe = (
            None if candidate_universe is None else sorted(set(candidate_universe), key=tie_break_key)
        )

    def _default_universe(self) -> List[Vertex]:
        index = AnchoredCoreIndex(self._graph, self._k, backend=self._backend)
        return sorted(index.all_non_core_vertices(), key=tie_break_key)

    @staticmethod
    def _num_combinations(universe_size: int, budget: int) -> int:
        from math import comb

        budget = min(budget, universe_size)
        return sum(comb(universe_size, size) for size in range(budget + 1))

    def select(self) -> AnchoredKCoreResult:
        """Enumerate anchor sets and return an optimal one.

        Every anchor-set size from 0 up to the budget is enumerated: turning a
        follower into an extra anchor can *reduce* the follower count even
        though it never shrinks the anchored k-core, so restricting the search
        to exactly ``budget`` anchors would not maximise followers.
        """
        started = time.perf_counter()
        universe = self._universe if self._universe is not None else self._default_universe()
        budget = min(self._budget, len(universe))
        total = self._num_combinations(len(universe), budget)
        if total > self._max_combinations:
            raise ParameterError(
                f"brute force would enumerate {total} anchor sets "
                f"(> max_combinations={self._max_combinations}); "
                "reduce the budget, shrink the graph, or raise the bound explicitly"
            )

        plain_core = anchored_k_core(self._graph, self._k, ())
        best_anchors: Tuple[Vertex, ...] = ()
        best_followers: Set[Vertex] = set()
        stats = SolverStats()
        combos: Iterable[Tuple[Vertex, ...]] = (
            anchors
            for size in range(budget + 1)
            for anchors in combinations(universe, size)
        )
        for anchors in combos:
            followers = compute_followers(self._graph, self._k, anchors, plain_core)
            stats.candidates_evaluated += 1
            stats.visited_vertices += self._graph.num_vertices
            if len(followers) > len(best_followers):
                best_anchors, best_followers = anchors, followers

        stats.runtime_seconds = time.perf_counter() - started
        stats.iterations = len(best_anchors)
        anchored_size = len(plain_core | set(best_anchors) | best_followers)
        return AnchoredKCoreResult(
            algorithm=self.name,
            k=self._k,
            budget=self._budget,
            anchors=best_anchors,
            followers=frozenset(best_followers),
            anchored_core_size=anchored_size,
            stats=stats,
        )
