"""The paper's optimised Greedy algorithm for the anchored k-core problem.

Algorithm 2 selects ``l`` anchors one at a time, each time committing the
candidate with the largest follower set.  The two optimisations of Section 4
are applied: candidate anchors are pruned with Theorem 3 (only vertices with a
later-ordered neighbour in the ``(k-1)``-shell can gain followers) and the
follower computation is the fast shell-local cascade instead of a full core
decomposition per candidate.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Set, Union

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.errors import ParameterError
from repro.backends import BACKEND_AUTO, ExecutionBackend
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


class GreedyAnchoredKCore:
    """Greedy anchored k-core selection (the paper's *Greedy*).

    Parameters
    ----------
    graph:
        The graph snapshot to anchor.
    k:
        Degree constraint of the k-core engagement model.
    budget:
        Maximum number of anchors to select (the paper's ``l``).
    order_pruning:
        Apply Theorem-3 candidate pruning (default).  Disabling it only makes
        the algorithm slower; results are unchanged.
    stop_on_zero_gain:
        Stop early once no candidate gains any followers (default); the paper's
        formulation allows fewer than ``l`` anchors in that situation because
        additional anchors cannot enlarge the anchored k-core.
    backend:
        Execution backend for the core index (``"auto"`` / ``"dict"`` /
        ``"compact"``, see :mod:`repro.backends`); results are identical,
        only the speed differs.
    """

    name = "Greedy"

    def __init__(
        self,
        graph: Graph,
        k: int,
        budget: int,
        order_pruning: bool = True,
        stop_on_zero_gain: bool = True,
        initial_anchors: Iterable[Vertex] = (),
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        self._graph = graph
        self._k = k
        self._budget = budget
        self._order_pruning = order_pruning
        self._stop_on_zero_gain = stop_on_zero_gain
        self._initial_anchors = tuple(initial_anchors)
        self._backend = backend

    def select(self) -> AnchoredKCoreResult:
        """Run the greedy selection and return the resulting anchor set."""
        started = time.perf_counter()
        index = AnchoredCoreIndex(
            self._graph, self._k, anchors=self._initial_anchors, backend=self._backend
        )
        chosen: List[Vertex] = list(self._initial_anchors)
        stats = SolverStats()

        while len(chosen) < self._budget:
            candidates = index.candidate_anchors(order_pruning=self._order_pruning)
            best_vertex: Optional[Vertex] = None
            best_gain: Set[Vertex] = set()
            for candidate in sorted(candidates, key=tie_break_key):
                gained = index.marginal_followers(candidate)
                if len(gained) > len(best_gain):
                    best_vertex, best_gain = candidate, gained
            if best_vertex is None or (self._stop_on_zero_gain and not best_gain):
                break
            index.add_anchor(best_vertex)
            chosen.append(best_vertex)
            stats.iterations += 1

        stats.candidates_evaluated = index.candidates_evaluated
        stats.visited_vertices = index.visited_vertices
        stats.runtime_seconds = time.perf_counter() - started
        followers = frozenset(index.followers())
        return AnchoredKCoreResult(
            algorithm=self.name,
            k=self._k,
            budget=self._budget,
            anchors=tuple(chosen),
            followers=followers,
            anchored_core_size=index.anchored_core_size(),
            stats=stats,
        )
