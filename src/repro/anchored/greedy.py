"""The paper's optimised Greedy algorithm for the anchored k-core problem.

Algorithm 2 selects ``l`` anchors one at a time, each time committing the
candidate with the largest follower set.  The two optimisations of Section 4
are applied: candidate anchors are pruned with Theorem 3 (only vertices with a
later-ordered neighbour in the ``(k-1)``-shell can gain followers) and the
follower computation is the fast shell-local cascade instead of a full core
decomposition per candidate.

On top of the paper's algorithm, the default ``incremental`` mode avoids
recomputation *within* a snapshot without changing a single result:

* **Incremental anchor commits.**  Committing the round's winner goes through
  :meth:`~repro.anchored.anchored_core.AnchoredCoreIndex.commit_anchor`, the
  kernels' delta-refresh path (order-suffix re-peel splice), which also
  reports the exact *touched set* of vertices whose anchored core number
  changed.
* **Memoized marginal gains.**  A candidate's evaluation reads only the core
  numbers of its explored shell-local region, the candidate, and their
  neighbours.  Each evaluation is cached together with that region; after a
  commit only the candidates whose cached scope intersects the touched set
  (expanded by one hop — a changed vertex can affect evaluations that read
  it from a neighbouring region vertex) are invalidated and re-run.  Valid
  cached gains are *exact*, so each round re-runs O(invalidated) cascades
  instead of O(candidates) — while anchors, followers and the instrumentation
  counters stay bit-identical to the full-recompute path (cached evaluations
  replay their recorded visit counts).

``incremental=False`` restores the full-recompute behaviour (full anchored
re-peel per commit, every candidate cascaded every round) — the equivalence
referee and the benchmark baseline.

A CELF-style lazy variant — evaluating stale candidates in descending
cached-gain order and stopping once a fresh gain dominates every remaining
cached value — is deliberately *not* used: it is only exact when cached
gains upper-bound fresh gains, and anchored k-core marginal gains are not
submodular (a commit can connect a candidate's region to previously
unreachable shell components, so a stale candidate's gain may *grow*).
Skipping stale evaluations would therefore risk wrong anchors and would
change ``candidates_evaluated``/``visited_vertices``, breaking the
bit-identical contract.  The memoization above already removes the same
cascades soundly: valid cached gains are exact, so only invalidated
candidates ever re-run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Union

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.errors import ParameterError
from repro.backends import BACKEND_AUTO, ExecutionBackend
from repro.graph.static import Graph, Vertex
from repro.obs import tracer
from repro.ordering import tie_break_key


@dataclass(frozen=True)
class _CachedGain:
    """One memoized candidate evaluation.

    ``scope`` is the evaluation's read region plus the candidate itself; the
    cached result is exact as long as no committed anchor touches the scope
    or its one-hop neighbourhood.  ``visited`` is the raw cascade count the
    evaluation reported, replayed into the instrumentation on every reuse so
    the paper's counters match the full-recompute path bit for bit.
    """

    followers: FrozenSet[Vertex]
    visited: int
    scope: FrozenSet[Vertex]


class GreedyAnchoredKCore:
    """Greedy anchored k-core selection (the paper's *Greedy*).

    Parameters
    ----------
    graph:
        The graph snapshot to anchor.
    k:
        Degree constraint of the k-core engagement model.
    budget:
        Maximum number of anchors to select (the paper's ``l``).
    order_pruning:
        Apply Theorem-3 candidate pruning (default).  Disabling it only makes
        the algorithm slower; results are unchanged.
    stop_on_zero_gain:
        Stop early once no candidate gains any followers (default); the paper's
        formulation allows fewer than ``l`` anchors in that situation because
        additional anchors cannot enlarge the anchored k-core.
    incremental:
        Use the delta-refresh commit path and memoize marginal gains across
        rounds (default).  Results — anchors, followers, visited counts — are
        identical either way; ``False`` forces the full-recompute behaviour
        (the benchmark baseline).
    backend:
        Execution backend for the core index (``"auto"`` / ``"dict"`` /
        ``"compact"``, see :mod:`repro.backends`); results are identical,
        only the speed differs.
    """

    name = "Greedy"

    def __init__(
        self,
        graph: Graph,
        k: int,
        budget: int,
        order_pruning: bool = True,
        stop_on_zero_gain: bool = True,
        initial_anchors: Iterable[Vertex] = (),
        incremental: bool = True,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        self._graph = graph
        self._k = k
        self._budget = budget
        self._order_pruning = order_pruning
        self._stop_on_zero_gain = stop_on_zero_gain
        self._initial_anchors = tuple(initial_anchors)
        self._incremental = incremental
        self._backend = backend

    def select(self) -> AnchoredKCoreResult:
        """Run the greedy selection and return the resulting anchor set."""
        started = time.perf_counter()
        with tracer.span(
            "solver.select",
            algorithm=self.name,
            k=self._k,
            budget=self._budget,
            incremental=self._incremental,
        ) as select_span:
            index = AnchoredCoreIndex(
                self._graph, self._k, anchors=self._initial_anchors, backend=self._backend
            )
            chosen: List[Vertex] = list(self._initial_anchors)
            stats = SolverStats()
            cache: Dict[Vertex, _CachedGain] = {}

            while len(chosen) < self._budget:
                round_number = stats.iterations + 1
                candidates = index.candidate_anchors(order_pruning=self._order_pruning)
                best_vertex: Optional[Vertex] = None
                best_gain: FrozenSet[Vertex] = frozenset()
                with tracer.span(
                    "greedy.evaluate", round=round_number, candidates=len(candidates)
                ) as eval_span:
                    recomputed_before = stats.candidates_recomputed
                    for candidate in sorted(candidates, key=tie_break_key):
                        entry = cache.get(candidate)
                        if entry is not None:
                            # Valid cached gain: exact by the invalidation argument
                            # below, so the cascade is skipped and its recorded
                            # visit count replayed into the instrumentation.
                            index.record_cached_evaluation(entry.visited)
                            stats.cache_hits += 1
                            gained = entry.followers
                        elif self._incremental:
                            raw, visited, region = index.evaluate_candidate(candidate)
                            stats.candidates_recomputed += 1
                            gained = frozenset(raw)
                            if region is not None:
                                cache[candidate] = _CachedGain(
                                    followers=gained,
                                    visited=visited,
                                    scope=region | {candidate},
                                )
                        else:
                            # Full-recompute baseline: no region capture, no cache.
                            gained = frozenset(index.marginal_followers(candidate))
                            stats.candidates_recomputed += 1
                        if len(gained) > len(best_gain):
                            best_vertex, best_gain = candidate, gained
                    eval_span.set(
                        recomputed=stats.candidates_recomputed - recomputed_before
                    )
                if best_vertex is None or (self._stop_on_zero_gain and not best_gain):
                    break
                commit_started = time.perf_counter()
                with tracer.span(
                    "greedy.commit", round=round_number, gain=len(best_gain)
                ) as commit_span:
                    if self._incremental:
                        touched = index.commit_anchor(best_vertex)
                        self._invalidate(cache, touched)
                        commit_span.set(
                            touched=len(touched) if touched is not None else -1
                        )
                    else:
                        # Full-recompute baseline: whole-snapshot anchored re-peel.
                        index.set_anchors(chosen + [best_vertex])
                stats.commit_seconds.append(time.perf_counter() - commit_started)
                chosen.append(best_vertex)
                stats.iterations += 1
            followers = frozenset(index.followers())
            select_span.set(anchors=len(chosen), followers=len(followers))

        stats.candidates_evaluated = index.candidates_evaluated
        stats.visited_vertices = index.visited_vertices
        stats.runtime_seconds = time.perf_counter() - started
        return AnchoredKCoreResult(
            algorithm=self.name,
            k=self._k,
            budget=self._budget,
            anchors=tuple(chosen),
            followers=followers,
            anchored_core_size=index.anchored_core_size(),
            stats=stats,
        )

    def _invalidate(
        self,
        cache: Dict[Vertex, _CachedGain],
        touched: Optional[FrozenSet[Vertex]],
    ) -> None:
        """Drop every cached gain the last commit may have changed.

        An evaluation is a deterministic function of the core numbers of its
        scope (region + candidate) and of the scope's neighbours.  A commit
        that changed core numbers only inside ``touched`` can therefore
        affect a cached entry only if ``touched`` (expanded by one hop)
        intersects the entry's scope — including the case where the region
        itself would now grow or shrink, since any vertex joining or leaving
        the region is itself touched or adjacent to it.  ``None`` means the
        kernel could not bound the change: drop everything.
        """
        if touched is None:
            cache.clear()
            return
        if not cache or not touched:
            return
        invalid_zone: Set[Vertex] = set(touched)
        neighbors = self._graph.neighbors
        for vertex in touched:
            invalid_zone.update(neighbors(vertex))
        stale = [
            candidate
            for candidate, entry in cache.items()
            if not entry.scope.isdisjoint(invalid_zone)
        ]
        for candidate in stale:
            del cache[candidate]
