"""Exact anchored k-core selection for k = 1 and k = 2 (Theorem 1).

The paper proves the AVT problem is polynomial for ``k <= 2`` and NP-hard from
``k = 3`` on.  This module provides the polynomial exact solvers:

* ``k = 1``: anchoring can never create followers (a vertex with an engaged
  neighbour is already in the 1-core), so the optimum simply anchors isolated
  vertices — they join ``C_1(S)`` themselves and nothing else changes.
* ``k = 2``: the vertices outside the 2-core form a forest in which every tree
  touches the 2-core in at most one vertex (two attachment points would close
  a cycle through the 2-core and pull the path into it).  Anchoring a set
  ``A`` inside a tree drags exactly the Steiner tree spanned by ``A`` and the
  tree's attachment point (if any) into the anchored 2-core.  Maximising
  followers therefore reduces to a Steiner-coverage problem on trees, solved
  exactly by the classic farthest-point greedy inside each tree (optimal on
  trees because marginal path gains are the branch lengths of a fixed
  decomposition) combined with a knapsack over trees for the budget split.

Both solvers return the same :class:`~repro.anchored.result.AnchoredKCoreResult`
as the heuristics, so they can be dropped into the trackers and compared
against brute force in the tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.anchored.followers import compute_followers
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.cores.decomposition import k_core
from repro.errors import ParameterError
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


# ---------------------------------------------------------------------------
# k = 1
# ---------------------------------------------------------------------------
def solve_k1(graph: Graph, budget: int) -> AnchoredKCoreResult:
    """Exact anchored 1-core selection: anchor isolated vertices, no followers."""
    if budget < 0:
        raise ParameterError("budget must be non-negative")
    started = time.perf_counter()
    isolated = sorted(
        (vertex for vertex in graph.vertices() if graph.degree(vertex) == 0),
        key=tie_break_key,
    )
    anchors = tuple(isolated[:budget])
    core = {vertex for vertex in graph.vertices() if graph.degree(vertex) >= 1}
    stats = SolverStats(
        candidates_evaluated=len(isolated),
        visited_vertices=graph.num_vertices,
        runtime_seconds=time.perf_counter() - started,
        iterations=len(anchors),
    )
    return AnchoredKCoreResult(
        algorithm="Exact-k1",
        k=1,
        budget=budget,
        anchors=anchors,
        followers=frozenset(),
        anchored_core_size=len(core | set(anchors)),
        stats=stats,
    )


# ---------------------------------------------------------------------------
# k = 2
# ---------------------------------------------------------------------------
class _TreePlan:
    """Per-tree result of the Steiner-coverage greedy.

    ``anchor_sequence[i]`` is the ``(i+1)``-th anchor chosen in this tree and
    ``net_gain(j)`` the number of followers obtained by using its first ``j``
    anchors (coverage of the spanned Steiner tree minus the anchors).
    """

    def __init__(
        self,
        anchor_sequence: List[Vertex],
        coverage_gains: List[int],
        base_coverage: int,
    ) -> None:
        self.anchor_sequence = anchor_sequence
        self.coverage_gains = coverage_gains
        self.base_coverage = base_coverage

    def max_anchors(self) -> int:
        return len(self.anchor_sequence)

    def net_gain(self, num_anchors: int) -> int:
        if num_anchors <= 0:
            return 0
        num_anchors = min(num_anchors, len(self.anchor_sequence))
        coverage = self.base_coverage + sum(self.coverage_gains[:num_anchors])
        return coverage - num_anchors


def _tree_components(graph: Graph, forest_vertices: Set[Vertex]) -> List[Set[Vertex]]:
    """Connected components of the subgraph induced on ``forest_vertices``."""
    components: List[Set[Vertex]] = []
    unseen = set(forest_vertices)
    while unseen:
        root = next(iter(unseen))
        component = {root}
        frontier = [root]
        unseen.discard(root)
        while frontier:
            current = frontier.pop()
            for neighbour in graph.neighbors(current):
                if neighbour in unseen:
                    unseen.discard(neighbour)
                    component.add(neighbour)
                    frontier.append(neighbour)
        components.append(component)
    return components


def _bfs_farthest(
    graph: Graph,
    tree: Set[Vertex],
    sources: Sequence[Vertex],
) -> Tuple[Optional[Vertex], int, Dict[Vertex, Vertex]]:
    """Multi-source BFS inside ``tree``; return the farthest vertex, its distance and parents."""
    distance: Dict[Vertex, int] = {source: 0 for source in sources}
    parent: Dict[Vertex, Vertex] = {}
    queue = deque(sources)
    farthest: Optional[Vertex] = None
    farthest_distance = -1
    while queue:
        current = queue.popleft()
        current_distance = distance[current]
        if current_distance > farthest_distance or (
            current_distance == farthest_distance
            and farthest is not None
            and tie_break_key(current) < tie_break_key(farthest)
        ):
            farthest, farthest_distance = current, current_distance
        for neighbour in graph.neighbors(current):
            if neighbour in tree and neighbour not in distance:
                distance[neighbour] = current_distance + 1
                parent[neighbour] = current
                queue.append(neighbour)
    return farthest, max(farthest_distance, 0), parent


def _plan_tree(graph: Graph, tree: Set[Vertex], two_core: Set[Vertex], budget: int) -> _TreePlan:
    """Run the farthest-point Steiner-coverage greedy inside one forest tree."""
    attachment_points = sorted(
        (vertex for vertex in tree if any(n in two_core for n in graph.neighbors(vertex))),
        key=tie_break_key,
    )

    covered: Set[Vertex] = set()
    base_coverage = 0
    if attachment_points:
        # Theory says there is at most one attachment point per tree (a second
        # one would close a cycle through the 2-core); handle a hypothetical
        # multi-attachment tree defensively by seeding the covered region with
        # the paths connecting all attachment points.
        covered.add(attachment_points[0])
        if len(attachment_points) > 1:
            parents = _bfs_parents(graph, tree, [attachment_points[0]])
            for extra in attachment_points[1:]:
                walker: Optional[Vertex] = extra
                while walker is not None and walker not in covered:
                    covered.add(walker)
                    walker = parents.get(walker)
        base_coverage = len(covered)

    anchor_sequence: List[Vertex] = []
    coverage_gains: List[int] = []
    limit = min(budget, len(tree)) if budget else 0

    if not covered and limit > 0:
        # No free attachment point: seed the greedy at a diameter endpoint so
        # the farthest-point sequence is optimal for every prefix.
        start = sorted(tree, key=tie_break_key)[0]
        endpoint, _, _ = _bfs_farthest(graph, tree, [start])
        anchor_sequence.append(endpoint)
        coverage_gains.append(1)
        covered.add(endpoint)

    while len(anchor_sequence) < limit:
        farthest, distance, _ = _bfs_farthest(graph, tree, sorted(covered, key=tie_break_key))
        if farthest is None or distance == 0:
            break
        parents = _bfs_parents(graph, tree, sorted(covered, key=tie_break_key))
        path: List[Vertex] = []
        walker: Optional[Vertex] = farthest
        while walker is not None and walker not in covered:
            path.append(walker)
            walker = parents.get(walker)
        anchor_sequence.append(farthest)
        coverage_gains.append(len(path))
        covered.update(path)

    return _TreePlan(anchor_sequence, coverage_gains, base_coverage)


def _bfs_parents(graph: Graph, tree: Set[Vertex], sources: Sequence[Vertex]) -> Dict[Vertex, Vertex]:
    """Parent pointers of a multi-source BFS inside ``tree``."""
    parent: Dict[Vertex, Vertex] = {}
    visited: Set[Vertex] = set(sources)
    queue = deque(sources)
    while queue:
        current = queue.popleft()
        for neighbour in graph.neighbors(current):
            if neighbour in tree and neighbour not in visited:
                visited.add(neighbour)
                parent[neighbour] = current
                queue.append(neighbour)
    return parent


def solve_k2(graph: Graph, budget: int) -> AnchoredKCoreResult:
    """Exact anchored 2-core selection via Steiner coverage on the non-core forest."""
    if budget < 0:
        raise ParameterError("budget must be non-negative")
    started = time.perf_counter()
    two_core = k_core(graph, 2)
    forest_vertices = set(graph.vertices()) - two_core
    trees = _tree_components(graph, forest_vertices)
    plans = [_plan_tree(graph, tree, two_core, budget) for tree in trees]

    # Knapsack across trees: dp[b] = (best follower count, per-tree allocation).
    dp: List[Tuple[int, List[int]]] = [(0, [0] * len(plans)) for _ in range(budget + 1)]
    for index, plan in enumerate(plans):
        updated_dp: List[Tuple[int, List[int]]] = [(value, list(alloc)) for value, alloc in dp]
        for spend in range(budget + 1):
            for within_tree in range(1, min(plan.max_anchors(), spend) + 1):
                candidate_value = dp[spend - within_tree][0] + plan.net_gain(within_tree)
                if candidate_value > updated_dp[spend][0]:
                    allocation = list(dp[spend - within_tree][1])
                    allocation[index] = within_tree
                    updated_dp[spend] = (candidate_value, allocation)
        dp = updated_dp

    best_value, best_allocation = max(dp, key=lambda entry: entry[0])
    anchors: List[Vertex] = []
    for plan, allocation in zip(plans, best_allocation):
        anchors.extend(plan.anchor_sequence[:allocation])
    anchors = anchors[:budget]

    followers = compute_followers(graph, 2, anchors, k_core_vertices=two_core)
    stats = SolverStats(
        candidates_evaluated=len(forest_vertices),
        visited_vertices=graph.num_vertices + sum(len(tree) for tree in trees),
        runtime_seconds=time.perf_counter() - started,
        iterations=len(anchors),
    )
    return AnchoredKCoreResult(
        algorithm="Exact-k2",
        k=2,
        budget=budget,
        anchors=tuple(anchors),
        followers=frozenset(followers),
        anchored_core_size=len(two_core | set(anchors) | followers),
        stats=stats,
    )


class ExactSmallK:
    """Dispatcher exposing the polynomial exact solvers behind the solver interface.

    Raises :class:`ParameterError` for ``k >= 3``, where the problem is NP-hard
    (Theorem 1) and the heuristics or brute force must be used instead.
    """

    name = "Exact-small-k"

    def __init__(self, graph: Graph, k: int, budget: int) -> None:
        if k not in (1, 2):
            raise ParameterError(
                "the exact polynomial solvers only exist for k = 1 and k = 2 "
                "(the anchored k-core problem is NP-hard for k >= 3)"
            )
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        self._graph = graph
        self._k = k
        self._budget = budget

    def select(self) -> AnchoredKCoreResult:
        """Return an optimal anchor set for the configured instance."""
        if self._k == 1:
            return solve_k1(self._graph, self._budget)
        return solve_k2(self._graph, self._budget)
