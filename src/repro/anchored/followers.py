"""Follower computation for anchored k-cores (Definitions 3-4, Algorithm 3).

Anchoring a vertex exempts it from the degree constraint of the k-core; the
*followers* of an anchor set are the additional vertices that the exemption
drags into the k-core.  Two implementations are provided:

* :func:`anchored_k_core` / :func:`compute_followers` — the exact
  deletion-cascade reference, valid for arbitrary anchor sets; and
* :func:`marginal_followers` — the fast single-anchor computation used inside
  the greedy loops.  It explores only the ``(k-1)``-shell region reachable from
  the candidate anchor (every follower of a single anchor has core number
  exactly ``k-1`` and must be connected to the anchor through followers), which
  is the shell-local equivalent of the paper's OrderInsert-based Algorithm 3.

The two are property-tested against each other; the greedy algorithms use the
fast path and the test-suite keeps the reference honest.

Every cascade also exists as a flat integer-array kernel
(:func:`compact_marginal_followers`, :func:`compact_full_shell_followers`)
operating on a :class:`~repro.graph.compact.CompactGraph` snapshot plus a
core-number list indexed by vertex id — these are the primitives the
``compact`` execution backend (:mod:`repro.backends.compact_backend`) is
built from, and the ``numpy`` backend vectorises the same cascades.  All
backends return identical follower sets and report the same visited-vertex
counts for the paper's instrumentation figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.backends import (
    BACKEND_AUTO,
    WORKLOAD_ONE_SHOT,
    ExecutionBackend,
    get_backend,
)
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph, Vertex


def anchored_k_core(
    graph: Graph,
    k: int,
    anchors: Iterable[Vertex] = (),
    backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
) -> Set[Vertex]:
    """Return the anchored k-core ``C_k(S)``: k-core plus anchors plus followers.

    Anchored vertices are never peeled.  With an empty anchor set this is the
    plain k-core.  Runs a single O(n + m) deletion cascade; the workload-aware
    ``"auto"`` policy resolves one-shot cascades to the dict backend at any
    size because a lone pass cannot amortise building a snapshot (see
    :mod:`repro.backends.registry`).
    """
    if k < 0:
        raise ParameterError("k must be non-negative")
    anchor_set = set(anchors)
    for anchor in anchor_set:
        if not graph.has_vertex(anchor):
            raise VertexNotFoundError(anchor)
    return get_backend(backend, graph.num_vertices, workload=WORKLOAD_ONE_SHOT).k_core(
        graph, k, anchor_set
    )


def compute_followers(
    graph: Graph,
    k: int,
    anchors: Iterable[Vertex],
    k_core_vertices: Optional[Set[Vertex]] = None,
    backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
) -> Set[Vertex]:
    """Return ``F_k(S, G)``: the followers of the anchor set ``S`` (Definition 3).

    Followers are the members of the anchored k-core that are neither anchors
    nor members of the plain k-core.  ``k_core_vertices`` may be supplied to
    avoid recomputing the plain k-core.
    """
    anchor_set = set(anchors)
    anchored = anchored_k_core(graph, k, anchor_set, backend=backend)
    if k_core_vertices is None:
        k_core_vertices = anchored_k_core(graph, k, (), backend=backend)
    return anchored - k_core_vertices - anchor_set


def follower_gain(
    graph: Graph,
    k: int,
    base_anchors: Iterable[Vertex],
    candidate: Vertex,
    k_core_vertices: Optional[Set[Vertex]] = None,
    backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
) -> Set[Vertex]:
    """Return the extra followers gained by adding ``candidate`` to ``base_anchors``.

    This is the exact (reference) marginal-gain computation:
    ``F_k(S ∪ {x}) \\ (F_k(S) ∪ {x})``.
    """
    base_set = set(base_anchors)
    base_followers = compute_followers(graph, k, base_set, k_core_vertices, backend=backend)
    extended = compute_followers(
        graph, k, base_set | {candidate}, k_core_vertices, backend=backend
    )
    return extended - base_followers - {candidate}


def marginal_followers(
    graph: Graph,
    k: int,
    candidate: Vertex,
    core: Mapping[Vertex, float],
    visit_log: Optional[List[Vertex]] = None,
    region_out: Optional[Set[Vertex]] = None,
) -> Set[Vertex]:
    """Fast follower computation for a single candidate anchor.

    ``core`` must hold the core numbers of the *current* (possibly already
    anchored) graph: for a plain graph the output of
    :func:`repro.cores.decomposition.core_numbers`, or the anchored core
    numbers maintained by :class:`repro.anchored.anchored_core.AnchoredCoreIndex`
    when a partial anchor set has already been fixed (previously selected
    anchors then carry :data:`~repro.cores.decomposition.ANCHOR_CORE`).

    The computation explores only the ``(k-1)``-shell region reachable from the
    candidate and cascades locally: a region vertex survives when its
    supporters — neighbours already in the k-core (core ≥ k), the candidate
    itself, and surviving region vertices — number at least ``k``.  This is
    exact because every follower of a single anchor has core number exactly
    ``k-1`` and must reach the anchor through follower-to-follower edges.

    Parameters
    ----------
    visit_log:
        When supplied, every vertex touched by the exploration is appended,
        which feeds the "visited candidate vertices" instrumentation of
        Figures 4, 6 and 8.
    region_out:
        When supplied, the explored shell-local region (candidate excluded)
        is added to it — the read scope of this evaluation, which memoizing
        callers key cache invalidation on.
    """
    if k < 1:
        raise ParameterError("k must be >= 1 for follower computation")
    if not graph.has_vertex(candidate):
        raise VertexNotFoundError(candidate)
    candidate_core = core[candidate]
    if candidate_core >= k:
        # Already inside the k-core: anchoring it changes nothing.
        return set()

    target = k - 1
    # Region growth: shell-(k-1) vertices reachable from the candidate through
    # shell-(k-1) vertices.
    region: Set[Vertex] = set()
    stack: List[Vertex] = []
    for neighbour in graph.neighbors(candidate):
        if core.get(neighbour) == target and neighbour not in region:
            region.add(neighbour)
            stack.append(neighbour)
    # The candidate itself may sit in the shell; its own shell neighbours are
    # already seeded above, so the candidate is treated purely as an anchor.
    while stack:
        current = stack.pop()
        if visit_log is not None:
            visit_log.append(current)
        for neighbour in graph.neighbors(current):
            if (
                core.get(neighbour) == target
                and neighbour not in region
                and neighbour != candidate
            ):
                region.add(neighbour)
                stack.append(neighbour)

    if region_out is not None:
        region_out.update(region)
    if not region:
        return set()

    # Local cascade: count supporters for each region vertex.
    support: Dict[Vertex, int] = {}
    for vertex in region:
        count = 0
        for neighbour in graph.neighbors(vertex):
            if neighbour == candidate:
                count += 1
            elif core.get(neighbour, -1) >= k:
                count += 1
            elif neighbour in region:
                count += 1
        support[vertex] = count

    removal_queue = [vertex for vertex, count in support.items() if count < k]
    removed: Set[Vertex] = set()
    while removal_queue:
        vertex = removal_queue.pop()
        if vertex in removed:
            continue
        removed.add(vertex)
        if visit_log is not None:
            visit_log.append(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in region and neighbour not in removed:
                support[neighbour] -= 1
                if support[neighbour] < k:
                    removal_queue.append(neighbour)
    return region - removed


def full_shell_followers(
    graph: Graph,
    k: int,
    candidate: Vertex,
    core: Mapping[Vertex, float],
    visit_log: Optional[List[Vertex]] = None,
) -> Set[Vertex]:
    """Single-anchor follower computation that scans the entire ``(k-1)``-shell.

    Returns exactly the same set as :func:`marginal_followers` but runs the
    survival cascade over every shell vertex instead of only the region
    reachable from the candidate — the behaviour of the OLAK adaptation used as
    a baseline, which therefore reports many more visited vertices.
    """
    if k < 1:
        raise ParameterError("k must be >= 1 for follower computation")
    if not graph.has_vertex(candidate):
        raise VertexNotFoundError(candidate)
    if core[candidate] >= k:
        return set()

    target = k - 1
    shell = {vertex for vertex, value in core.items() if value == target and vertex != candidate}
    if visit_log is not None:
        visit_log.extend(shell)
    if not shell:
        return set()

    support: Dict[Vertex, int] = {}
    for vertex in shell:
        count = 0
        for neighbour in graph.neighbors(vertex):
            if neighbour == candidate:
                count += 1
            elif core.get(neighbour, -1) >= k:
                count += 1
            elif neighbour in shell:
                count += 1
        support[vertex] = count

    removal_queue = [vertex for vertex, count in support.items() if count < k]
    removed: Set[Vertex] = set()
    while removal_queue:
        vertex = removal_queue.pop()
        if vertex in removed:
            continue
        removed.add(vertex)
        if visit_log is not None:
            visit_log.append(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in shell and neighbour not in removed:
                support[neighbour] -= 1
                if support[neighbour] < k:
                    removal_queue.append(neighbour)
    return shell - removed


# ---------------------------------------------------------------------------
# Compact (flat integer-array) kernels
# ---------------------------------------------------------------------------
def compact_marginal_followers(
    cgraph: CompactGraph,
    k: int,
    candidate_id: int,
    core: Sequence[float],
    region_out: Optional[Set[int]] = None,
) -> Tuple[Set[int], int]:
    """Region-restricted follower cascade over a compact snapshot.

    ``core`` is indexed by vertex id and holds the *current* (possibly
    anchored) core numbers.  Returns ``(follower ids, visited count)`` where
    the visited count matches the dict kernel's ``visit_log`` length exactly
    (region pops plus cascade removals).  ``region_out`` receives the
    explored region ids when supplied (see :func:`marginal_followers`).
    """
    if k < 1:
        raise ParameterError("k must be >= 1 for follower computation")
    if core[candidate_id] >= k:
        return set(), 0

    target = k - 1
    indptr = cgraph.indptr
    indices = cgraph.indices
    visited = 0

    region: Set[int] = set()
    stack: List[int] = []
    for position in range(indptr[candidate_id], indptr[candidate_id + 1]):
        neighbour = indices[position]
        if core[neighbour] == target and neighbour not in region:
            region.add(neighbour)
            stack.append(neighbour)
    while stack:
        current = stack.pop()
        visited += 1
        for position in range(indptr[current], indptr[current + 1]):
            neighbour = indices[position]
            if (
                core[neighbour] == target
                and neighbour not in region
                and neighbour != candidate_id
            ):
                region.add(neighbour)
                stack.append(neighbour)

    if region_out is not None:
        region_out.update(region)
    if not region:
        return set(), visited

    support: Dict[int, int] = {}
    for vid in region:
        count = 0
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour == candidate_id:
                count += 1
            elif core[neighbour] >= k:
                count += 1
            elif neighbour in region:
                count += 1
        support[vid] = count

    removal_queue = [vid for vid, count in support.items() if count < k]
    removed: Set[int] = set()
    while removal_queue:
        vid = removal_queue.pop()
        if vid in removed:
            continue
        removed.add(vid)
        visited += 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour in region and neighbour not in removed:
                support[neighbour] -= 1
                if support[neighbour] < k:
                    removal_queue.append(neighbour)
    return region - removed, visited


def compact_full_shell_followers(
    cgraph: CompactGraph,
    k: int,
    candidate_id: int,
    core: Sequence[float],
) -> Tuple[Set[int], int]:
    """Whole-shell follower cascade over a compact snapshot (OLAK baseline).

    Same result set as :func:`compact_marginal_followers`; the visited count
    covers every shell vertex plus the cascade removals, matching the dict
    kernel's instrumentation.
    """
    if k < 1:
        raise ParameterError("k must be >= 1 for follower computation")
    if core[candidate_id] >= k:
        return set(), 0

    target = k - 1
    indptr = cgraph.indptr
    indices = cgraph.indices
    shell = {
        vid
        for vid in range(cgraph.num_vertices)
        if core[vid] == target and vid != candidate_id
    }
    visited = len(shell)
    if not shell:
        return set(), visited

    support: Dict[int, int] = {}
    for vid in shell:
        count = 0
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour == candidate_id:
                count += 1
            elif core[neighbour] >= k:
                count += 1
            elif neighbour in shell:
                count += 1
        support[vid] = count

    removal_queue = [vid for vid, count in support.items() if count < k]
    removed: Set[int] = set()
    while removal_queue:
        vid = removal_queue.pop()
        if vid in removed:
            continue
        removed.add(vid)
        visited += 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour in shell and neighbour not in removed:
                support[neighbour] -= 1
                if support[neighbour] < k:
                    removal_queue.append(neighbour)
    return shell - removed, visited
