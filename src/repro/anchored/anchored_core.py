"""Anchored core index: the working state of the greedy anchor-selection loops.

The greedy algorithms of Section 4 repeatedly (1) enumerate candidate anchors,
(2) compute each candidate's marginal followers, and (3) commit the best
candidate.  After committing an anchor, the graph behaves as if that vertex had
infinite degree, so the core numbers that drive steps (1) and (2) must be the
*anchored* core numbers.  :class:`AnchoredCoreIndex` packages that state:

* the anchored core decomposition of the current graph + anchor set, refreshed
  whenever an anchor is committed;
* Theorem-3 candidate pruning with or without the K-order position condition;
* fast marginal follower computation (shell-local cascade); and
* the instrumentation counters (candidates evaluated, vertices visited) that
  the paper's Figures 4, 6 and 8 report.

The index is execution-backend-agnostic: it validates inputs, owns the anchor
set and the instrumentation, and delegates every kernel — the anchored peel,
the candidate scans, the follower cascades — to the
:class:`~repro.backends.CoreIndexKernel` built by the resolved
:class:`~repro.backends.ExecutionBackend` (``backend="auto"`` picks by graph
size; see :mod:`repro.backends.registry`).  Snapshot-based kernels build
their snapshot once for the index's lifetime — valid because the solvers
never mutate the graph during a selection run — and results are identical
across all registered backends.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Optional, Set, Tuple, Union

from repro.backends import BACKEND_AUTO, ExecutionBackend, get_backend
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.static import Graph, Vertex
from repro.obs import tracer


class AnchoredCoreIndex:
    """Mutable index of a graph, a degree constraint ``k`` and a growing anchor set.

    ``backend`` selects the execution layer (a registered name, ``"auto"``,
    or an :class:`~repro.backends.ExecutionBackend` instance — see
    :mod:`repro.backends`).  The graph must not be mutated while the index is
    alive (the solvers never do).
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        anchors: Iterable[Vertex] = (),
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        if k < 1:
            raise ParameterError("k must be >= 1")
        self._graph = graph
        self._k = k
        self._anchors: Set[Vertex] = set(anchors)
        for anchor in self._anchors:
            if not graph.has_vertex(anchor):
                raise VertexNotFoundError(anchor)
        self._backend = get_backend(backend, graph.num_vertices)
        self._kernel = self._backend.build_core_index(graph)
        self._plain_k_core: Optional[Set[Vertex]] = None
        # Instrumentation shared with the solver wrappers.
        self.candidates_evaluated = 0
        self.visited_vertices = 0
        with tracer.span(
            "kernel.peel",
            backend=self._backend.name,
            vertices=graph.num_vertices,
            anchors=len(self._anchors),
        ):
            self._kernel.refresh(self._anchors)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph (not copied)."""
        return self._graph

    @property
    def k(self) -> int:
        """The degree constraint."""
        return self._k

    @property
    def backend(self) -> str:
        """The name of the resolved execution backend (e.g. ``"dict"``)."""
        return self._backend.name

    @property
    def kernel(self):
        """The live :class:`~repro.backends.CoreIndexKernel` (observability).

        Exposed for instrumentation readers — e.g. the sharded kernel's
        coordinator cache counters; treat as read-only.
        """
        return self._kernel

    @property
    def anchors(self) -> Set[Vertex]:
        """A copy of the current anchor set."""
        return set(self._anchors)

    def core(self, vertex: Vertex) -> float:
        """Return the anchored core number of ``vertex`` (anchors map to infinity)."""
        return self._kernel.core_of(vertex)

    def core_numbers(self) -> Mapping[Vertex, float]:
        """Return the anchored core-number mapping (live, do not mutate)."""
        return self._kernel.core_numbers()

    def anchored_core_vertices(self) -> Set[Vertex]:
        """Return the anchored k-core ``C_k(S)`` under the current anchor set."""
        return self._kernel.vertices_with_core_at_least(self._k)

    def anchored_core_size(self) -> int:
        """Return ``|C_k(S)|``."""
        return self._kernel.count_core_at_least(self._k)

    def plain_k_core(self) -> Set[Vertex]:
        """Return the k-core of the graph without any anchors (cached)."""
        if self._plain_k_core is None:
            self._plain_k_core = self._kernel.plain_k_core(self._k)
        return set(self._plain_k_core)

    def followers(self) -> Set[Vertex]:
        """Return the followers of the current anchor set (Definition 3)."""
        return self.anchored_core_vertices() - self.plain_k_core() - self._anchors

    def shell(self) -> Set[Vertex]:
        """Return the ``(k-1)``-shell under the anchored core numbers."""
        return self._kernel.shell_vertices(self._k - 1)

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------
    def candidate_anchors(self, order_pruning: bool = True) -> Set[Vertex]:
        """Return candidate anchors under the current anchored core numbers.

        A candidate must not already be anchored and must lie outside the
        anchored k-core.  With ``order_pruning`` (Theorem 3) it must also have
        a neighbour ``v`` with core ``k - 1`` positioned *after* it in the
        anchored removal order; without pruning the positional condition is
        dropped (the coarser filter used by the OLAK adaptation).
        """
        return self._kernel.candidate_anchors(self._k, order_pruning)

    def all_non_core_vertices(self) -> Set[Vertex]:
        """Return every un-anchored vertex outside the anchored k-core.

        This is the unpruned candidate universe that the per-snapshot OLAK
        adaptation scans, and the universe the brute-force solver enumerates.
        """
        return self._kernel.non_core_vertices(self._k)

    # ------------------------------------------------------------------
    # Follower evaluation
    # ------------------------------------------------------------------
    def marginal_followers(self, candidate: Vertex, full_shell: bool = False) -> Set[Vertex]:
        """Return the followers gained by anchoring ``candidate`` next.

        ``full_shell`` selects the unrestricted shell scan (OLAK-style, visits
        every shell vertex) instead of the region-restricted cascade; both
        return the same set, the flag only changes the amount of work counted
        by the instrumentation.
        """
        with tracer.span("kernel.marginal_followers", full_shell=full_shell) as mf_span:
            gained, visited = self._kernel.marginal_followers(
                self._k, candidate, full_shell
            )
            mf_span.set(visited=visited, gained=len(gained))
        self.candidates_evaluated += 1
        self.visited_vertices += max(visited, 1)
        return gained

    def evaluate_candidate(
        self, candidate: Vertex
    ) -> Tuple[Set[Vertex], int, Optional[FrozenSet[Vertex]]]:
        """Like :meth:`marginal_followers` but also reports the read scope.

        Returns ``(gained, visited, region)``: the followers gained by
        anchoring ``candidate`` next, the raw visited count of the cascade,
        and the explored shell-local region (``None`` when the kernel cannot
        report it, in which case the evaluation is not safely cacheable).
        Instrumentation is updated exactly as by :meth:`marginal_followers`;
        ``visited`` is returned raw so a memoizing caller can replay it later
        through :meth:`record_cached_evaluation`.
        """
        with tracer.span("kernel.marginal_followers_with_region") as mf_span:
            gained, visited, region = self._kernel.marginal_followers_with_region(
                self._k, candidate
            )
            mf_span.set(visited=visited, gained=len(gained))
        self.candidates_evaluated += 1
        self.visited_vertices += max(visited, 1)
        return gained, visited, region

    def record_cached_evaluation(self, visited: int) -> None:
        """Account one memoized candidate evaluation in the instrumentation.

        The paper's counters (``candidates_evaluated``, ``visited_vertices``)
        report the *algorithmic* work of the greedy selection; a memoized
        evaluation replays the counts its cascade reported when it actually
        ran, so the instrumentation stays bit-identical to the
        full-recompute path while the cascades themselves are skipped.
        """
        self.candidates_evaluated += 1
        self.visited_vertices += max(visited, 1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_anchor(self, vertex: Vertex) -> None:
        """Commit ``vertex`` as an anchor and refresh the anchored decomposition."""
        self.commit_anchor(vertex)

    def commit_anchor(self, vertex: Vertex) -> Optional[FrozenSet[Vertex]]:
        """Commit ``vertex`` as an anchor through the kernel's incremental path.

        Returns the *touched set* — every vertex whose anchored core number
        changed (the new anchor included) — exactly as specified by the
        delta-refresh contract of :class:`repro.backends.CoreIndexKernel`, or
        ``None`` when the kernel fell back to a full refresh without diffing
        (treat as "anything may have changed").  Committing an existing
        anchor is a no-op and returns an empty set.
        """
        if not self._graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
        if vertex in self._anchors:
            return frozenset()
        self._anchors.add(vertex)
        with tracer.span(
            "kernel.commit_anchor", backend=self._backend.name
        ) as commit_span:
            touched = self._kernel.commit_anchor(vertex, self._anchors)
            commit_span.set(touched=len(touched) if touched is not None else -1)
        return touched

    def set_anchors(self, anchors: Iterable[Vertex]) -> None:
        """Replace the anchor set wholesale and refresh the decomposition."""
        new_anchors = set(anchors)
        for anchor in new_anchors:
            if not self._graph.has_vertex(anchor):
                raise VertexNotFoundError(anchor)
        self._anchors = new_anchors
        with tracer.span(
            "kernel.peel", backend=self._backend.name, anchors=len(new_anchors)
        ):
            self._kernel.refresh(self._anchors)
