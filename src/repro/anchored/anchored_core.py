"""Anchored core index: the working state of the greedy anchor-selection loops.

The greedy algorithms of Section 4 repeatedly (1) enumerate candidate anchors,
(2) compute each candidate's marginal followers, and (3) commit the best
candidate.  After committing an anchor, the graph behaves as if that vertex had
infinite degree, so the core numbers that drive steps (1) and (2) must be the
*anchored* core numbers.  :class:`AnchoredCoreIndex` packages that state:

* the anchored core decomposition of the current graph + anchor set, refreshed
  whenever an anchor is committed;
* Theorem-3 candidate pruning with or without the K-order position condition;
* fast marginal follower computation (shell-local cascade); and
* the instrumentation counters (candidates evaluated, vertices visited) that
  the paper's Figures 4, 6 and 8 report.

The index is backend-aware (see :mod:`repro.graph.compact`): in compact mode
it snapshots the graph once into CSR arrays and runs every refresh, candidate
scan and follower cascade over flat int arrays, translating back to the
caller's hashable vertices only at the API boundary.  Because the solvers
never mutate the graph during a selection run, the one-off snapshot is valid
for the index's whole lifetime; results are identical across backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.anchored.followers import (
    compact_full_shell_followers,
    compact_marginal_followers,
    full_shell_followers,
    marginal_followers,
)
from repro.cores.decomposition import (
    ANCHOR_CORE,
    CoreDecomposition,
    anchored_core_decomposition,
    compact_k_core_ids,
    compact_peel,
)
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.compact import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    CompactGraph,
    resolve_backend,
)
from repro.graph.static import Graph, Vertex


class AnchoredCoreIndex:
    """Mutable index of a graph, a degree constraint ``k`` and a growing anchor set.

    ``backend`` selects the execution layer: ``"dict"`` works directly on the
    adjacency-set graph, ``"compact"`` on a one-off CSR snapshot with integer
    kernels, and ``"auto"`` (default) picks compact for large graphs.  The
    graph must not be mutated while the index is alive (the solvers never do).
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        anchors: Iterable[Vertex] = (),
        backend: str = BACKEND_AUTO,
    ) -> None:
        if k < 1:
            raise ParameterError("k must be >= 1")
        self._graph = graph
        self._k = k
        self._anchors: Set[Vertex] = set(anchors)
        for anchor in self._anchors:
            if not graph.has_vertex(anchor):
                raise VertexNotFoundError(anchor)
        self._backend = resolve_backend(backend, graph.num_vertices)
        self._plain_k_core: Optional[Set[Vertex]] = None
        # Dict-mode state.
        self._decomposition: Optional[CoreDecomposition] = None
        self._rank: Dict[Vertex, int] = {}
        # Compact-mode state (flat arrays indexed by vertex id).
        self._cgraph: Optional[CompactGraph] = None
        self._anchor_ids: Set[int] = set()
        self._core_ids: List[float] = []
        self._rank_ids: List[int] = []
        self._core_map_cache: Optional[Dict[Vertex, float]] = None
        if self._backend == BACKEND_COMPACT:
            self._cgraph = CompactGraph.from_graph(graph, ordered=True)
            self._anchor_ids = {
                self._cgraph.interner.id_of(anchor) for anchor in self._anchors
            }
        # Instrumentation shared with the solver wrappers.
        self.candidates_evaluated = 0
        self.visited_vertices = 0
        self._refresh()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph (not copied)."""
        return self._graph

    @property
    def k(self) -> int:
        """The degree constraint."""
        return self._k

    @property
    def backend(self) -> str:
        """The resolved execution backend (``"dict"`` or ``"compact"``)."""
        return self._backend

    @property
    def anchors(self) -> Set[Vertex]:
        """A copy of the current anchor set."""
        return set(self._anchors)

    def core(self, vertex: Vertex) -> float:
        """Return the anchored core number of ``vertex`` (anchors map to infinity)."""
        if self._cgraph is not None:
            return self._core_ids[self._cgraph.interner.id_of(vertex)]
        return self._decomposition.core[vertex]

    def core_numbers(self) -> Mapping[Vertex, float]:
        """Return the anchored core-number mapping (live, do not mutate)."""
        if self._cgraph is not None:
            if self._core_map_cache is None:
                vertices = self._cgraph.interner.vertices
                core_ids = self._core_ids
                self._core_map_cache = {
                    vertices[vid]: core_ids[vid] for vid in range(len(vertices))
                }
            return self._core_map_cache
        return self._decomposition.core

    def anchored_core_vertices(self) -> Set[Vertex]:
        """Return the anchored k-core ``C_k(S)`` under the current anchor set."""
        if self._cgraph is not None:
            k = self._k
            core_ids = self._core_ids
            return self._cgraph.interner.translate(
                vid for vid in range(len(core_ids)) if core_ids[vid] >= k
            )
        return self._decomposition.k_core_vertices(self._k)

    def anchored_core_size(self) -> int:
        """Return ``|C_k(S)|``."""
        if self._cgraph is not None:
            k = self._k
            return sum(1 for value in self._core_ids if value >= k)
        return len(self.anchored_core_vertices())

    def plain_k_core(self) -> Set[Vertex]:
        """Return the k-core of the graph without any anchors (cached)."""
        if self._plain_k_core is None:
            if self._cgraph is not None:
                self._plain_k_core = self._cgraph.interner.translate(
                    compact_k_core_ids(self._cgraph, self._k)
                )
            else:
                from repro.cores.decomposition import k_core

                self._plain_k_core = k_core(self._graph, self._k, backend=BACKEND_DICT)
        return set(self._plain_k_core)

    def followers(self) -> Set[Vertex]:
        """Return the followers of the current anchor set (Definition 3)."""
        return self.anchored_core_vertices() - self.plain_k_core() - self._anchors

    def shell(self) -> Set[Vertex]:
        """Return the ``(k-1)``-shell under the anchored core numbers."""
        if self._cgraph is not None:
            target = self._k - 1
            core_ids = self._core_ids
            return self._cgraph.interner.translate(
                vid for vid in range(len(core_ids)) if core_ids[vid] == target
            )
        return self._decomposition.shell_vertices(self._k - 1)

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------
    def candidate_anchors(self, order_pruning: bool = True) -> Set[Vertex]:
        """Return candidate anchors under the current anchored core numbers.

        A candidate must not already be anchored and must lie outside the
        anchored k-core.  With ``order_pruning`` (Theorem 3) it must also have
        a neighbour ``v`` with core ``k - 1`` positioned *after* it in the
        anchored removal order; without pruning the positional condition is
        dropped (the coarser filter used by the OLAK adaptation).
        """
        if self._cgraph is not None:
            return self._compact_candidate_anchors(order_pruning)
        target = self._k - 1
        core = self._decomposition.core
        candidates: Set[Vertex] = set()
        for vertex, value in core.items():
            if vertex in self._anchors or value >= self._k:
                continue
            rank = self._rank[vertex]
            for neighbour in self._graph.neighbors(vertex):
                if core.get(neighbour) != target:
                    continue
                if not order_pruning or self._rank[neighbour] > rank:
                    candidates.add(vertex)
                    break
        return candidates

    def _compact_candidate_anchors(self, order_pruning: bool) -> Set[Vertex]:
        k = self._k
        target = k - 1
        cgraph = self._cgraph
        indptr = cgraph.indptr
        indices = cgraph.indices
        core_ids = self._core_ids
        rank_ids = self._rank_ids
        anchor_ids = self._anchor_ids
        candidates: List[int] = []
        for vid in range(len(core_ids)):
            if core_ids[vid] >= k or vid in anchor_ids:
                continue
            rank = rank_ids[vid]
            for position in range(indptr[vid], indptr[vid + 1]):
                neighbour = indices[position]
                if core_ids[neighbour] != target:
                    continue
                if not order_pruning or rank_ids[neighbour] > rank:
                    candidates.append(vid)
                    break
        return cgraph.interner.translate(candidates)

    def all_non_core_vertices(self) -> Set[Vertex]:
        """Return every un-anchored vertex outside the anchored k-core.

        This is the unpruned candidate universe that the per-snapshot OLAK
        adaptation scans, and the universe the brute-force solver enumerates.
        """
        if self._cgraph is not None:
            k = self._k
            core_ids = self._core_ids
            anchor_ids = self._anchor_ids
            return self._cgraph.interner.translate(
                vid
                for vid in range(len(core_ids))
                if core_ids[vid] < k and vid not in anchor_ids
            )
        core = self._decomposition.core
        return {
            vertex
            for vertex, value in core.items()
            if value < self._k and vertex not in self._anchors
        }

    # ------------------------------------------------------------------
    # Follower evaluation
    # ------------------------------------------------------------------
    def marginal_followers(self, candidate: Vertex, full_shell: bool = False) -> Set[Vertex]:
        """Return the followers gained by anchoring ``candidate`` next.

        ``full_shell`` selects the unrestricted shell scan (OLAK-style, visits
        every shell vertex) instead of the region-restricted cascade; both
        return the same set, the flag only changes the amount of work counted
        by the instrumentation.
        """
        if self._cgraph is not None:
            candidate_id = self._cgraph.interner.id_of(candidate)
            if full_shell:
                gained_ids, visited = compact_full_shell_followers(
                    self._cgraph, self._k, candidate_id, self._core_ids
                )
            else:
                gained_ids, visited = compact_marginal_followers(
                    self._cgraph, self._k, candidate_id, self._core_ids
                )
            self.candidates_evaluated += 1
            self.visited_vertices += max(visited, 1)
            return self._cgraph.interner.translate(gained_ids)
        visit_log: List[Vertex] = []
        if full_shell:
            gained = full_shell_followers(
                self._graph, self._k, candidate, self._decomposition.core, visit_log
            )
        else:
            gained = marginal_followers(
                self._graph, self._k, candidate, self._decomposition.core, visit_log
            )
        self.candidates_evaluated += 1
        self.visited_vertices += max(len(visit_log), 1)
        return gained

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_anchor(self, vertex: Vertex) -> None:
        """Commit ``vertex`` as an anchor and refresh the anchored decomposition."""
        if not self._graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
        if vertex in self._anchors:
            return
        self._anchors.add(vertex)
        if self._cgraph is not None:
            self._anchor_ids.add(self._cgraph.interner.id_of(vertex))
        self._refresh()

    def set_anchors(self, anchors: Iterable[Vertex]) -> None:
        """Replace the anchor set wholesale and refresh the decomposition."""
        new_anchors = set(anchors)
        for anchor in new_anchors:
            if not self._graph.has_vertex(anchor):
                raise VertexNotFoundError(anchor)
        self._anchors = new_anchors
        if self._cgraph is not None:
            self._anchor_ids = {
                self._cgraph.interner.id_of(anchor) for anchor in new_anchors
            }
        self._refresh()

    def _refresh(self) -> None:
        if self._cgraph is not None:
            core_ids, order_ids = compact_peel(self._cgraph, self._anchor_ids)
            self._core_ids = core_ids
            rank_ids = [0] * len(core_ids)
            for position, vid in enumerate(order_ids):
                rank_ids[vid] = position
            self._rank_ids = rank_ids
            self._core_map_cache = None
            return
        self._decomposition = anchored_core_decomposition(
            self._graph, self._anchors, backend=BACKEND_DICT
        )
        self._rank = {
            vertex: position for position, vertex in enumerate(self._decomposition.order)
        }
