"""Anchored k-core algorithms: followers, greedy selection, and baselines."""

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.bruteforce import BruteForceAnchoredKCore
from repro.anchored.exact_small_k import ExactSmallK
from repro.anchored.followers import anchored_k_core, compute_followers, marginal_followers
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.olak import OLAKAnchoredKCore
from repro.anchored.rcm import RCMAnchoredKCore
from repro.anchored.result import AnchoredKCoreResult

__all__ = [
    "AnchoredCoreIndex",
    "AnchoredKCoreResult",
    "BruteForceAnchoredKCore",
    "ExactSmallK",
    "GreedyAnchoredKCore",
    "OLAKAnchoredKCore",
    "RCMAnchoredKCore",
    "anchored_k_core",
    "compute_followers",
    "marginal_followers",
]
