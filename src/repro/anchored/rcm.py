"""RCM baseline: Residual Core Maximization adapted to per-snapshot selection.

RCM (Laishram et al., SDM 2020) is the state-of-the-art anchored k-core
heuristic on static graphs.  Instead of exhaustively evaluating every
candidate's followers at every step, it scores candidates cheaply using the
*residual degree* structure of the ``(k-1)``-shell and only verifies the
highest-scoring candidates:

* the **residual degree** of a shell vertex ``v`` is ``k`` minus the number of
  supporters ``v`` already has in the anchored k-core — how much extra support
  it still needs;
* the **anchor score** of a candidate ``x`` aggregates, over the shell
  component(s) adjacent to ``x``, how many residual-degree-deficient vertices a
  single unit of support from ``x`` could unlock (vertices with residual
  degree 1 count fully, others proportionally).

The adaptation used here mirrors the paper's experimental setup: RCM is re-run
from scratch at every snapshot (it has no incremental machinery), its follower
quality is close to Greedy/OLAK, and its cost sits between them because it
verifies only a shortlist of candidates per iteration.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.errors import ParameterError
from repro.backends import BACKEND_AUTO, ExecutionBackend
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


class RCMAnchoredKCore:
    """Residual Core Maximization, re-run per snapshot as in the paper's baseline."""

    name = "RCM"

    def __init__(
        self,
        graph: Graph,
        k: int,
        budget: int,
        shortlist_size: int = 20,
        stop_on_zero_gain: bool = True,
        initial_anchors: Iterable[Vertex] = (),
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        if shortlist_size < 1:
            raise ParameterError("shortlist_size must be >= 1")
        self._graph = graph
        self._k = k
        self._budget = budget
        self._shortlist_size = shortlist_size
        self._stop_on_zero_gain = stop_on_zero_gain
        self._initial_anchors = tuple(initial_anchors)
        self._backend = backend

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _residual_degrees(self, index: AnchoredCoreIndex) -> Dict[Vertex, int]:
        """Residual degree of every shell vertex under the current anchor set."""
        core = index.core_numbers()
        residual: Dict[Vertex, int] = {}
        for vertex in index.shell():
            supporters = sum(
                1 for neighbour in self._graph.neighbors(vertex) if core[neighbour] >= self._k
            )
            residual[vertex] = max(self._k - supporters, 0)
        return residual

    def _anchor_scores(
        self, index: AnchoredCoreIndex, residual: Dict[Vertex, int]
    ) -> Dict[Vertex, float]:
        """Cheap anchor score for every candidate: expected unlocking power."""
        scores: Dict[Vertex, float] = {}
        core = index.core_numbers()
        for candidate in index.all_non_core_vertices():
            score = 0.0
            touched = 0
            for neighbour in self._graph.neighbors(candidate):
                need = residual.get(neighbour)
                if need is None or core[neighbour] >= self._k:
                    continue
                touched += 1
                if need <= 1:
                    score += 1.0
                else:
                    score += 1.0 / need
            if touched:
                scores[candidate] = score
        return scores

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self) -> AnchoredKCoreResult:
        """Run the RCM-style selection and return the resulting anchor set."""
        started = time.perf_counter()
        index = AnchoredCoreIndex(
            self._graph, self._k, anchors=self._initial_anchors, backend=self._backend
        )
        chosen: List[Vertex] = list(self._initial_anchors)
        stats = SolverStats()

        while len(chosen) < self._budget:
            residual = self._residual_degrees(index)
            scores = self._anchor_scores(index, residual)
            if not scores:
                break
            shortlist = sorted(
                scores,
                key=lambda vertex: (-scores[vertex], tie_break_key(vertex)),
            )[: self._shortlist_size]
            best_vertex: Optional[Vertex] = None
            best_gain: Set[Vertex] = set()
            for candidate in shortlist:
                gained = index.marginal_followers(candidate)
                if len(gained) > len(best_gain):
                    best_vertex, best_gain = candidate, gained
            if best_vertex is None or (self._stop_on_zero_gain and not best_gain):
                break
            index.add_anchor(best_vertex)
            chosen.append(best_vertex)
            stats.iterations += 1

        stats.candidates_evaluated = index.candidates_evaluated
        stats.visited_vertices = index.visited_vertices
        stats.runtime_seconds = time.perf_counter() - started
        return AnchoredKCoreResult(
            algorithm=self.name,
            k=self._k,
            budget=self._budget,
            anchors=tuple(chosen),
            followers=frozenset(index.followers()),
            anchored_core_size=index.anchored_core_size(),
            stats=stats,
        )
