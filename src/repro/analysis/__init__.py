"""Engagement analytics built on the k-core model (the paper's motivation)."""

from repro.analysis.engagement import (
    anchored_engagement_series,
    departure_cascade,
    engagement_series,
    core_resilience,
    most_critical_users,
)

__all__ = [
    "anchored_engagement_series",
    "departure_cascade",
    "engagement_series",
    "core_resilience",
    "most_critical_users",
]
