"""Engagement analytics: unraveling cascades, equilibrium series and resilience.

The introduction of the paper motivates anchored vertex tracking with the
dynamics of user engagement: the k-core is the natural equilibrium of a model
where a user stays engaged while at least ``k`` friends stay engaged, so one
departure can trigger a cascading drop-out, and *critical* users are the ones
whose departure unravels the most.  These helpers quantify those dynamics:

* :func:`departure_cascade` — who ends up disengaged if a given set of users
  leaves (the cascading departure of Section 1);
* :func:`most_critical_users` — rank engaged users by the cascade their
  departure would trigger;
* :func:`engagement_series` / :func:`anchored_engagement_series` — the engaged
  community size over the snapshots of an evolving network, without and with
  an anchor-set series (e.g. the output of a tracker);
* :func:`core_resilience` — the expected fraction of the k-core lost under
  random departures, in the spirit of the resilience work cited in Section 7.

They are deliberately independent of the solvers so they can be used to
evaluate any anchoring policy, not only the ones in this package.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.anchored.followers import anchored_k_core
from repro.cores.decomposition import k_core
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.dynamic import EvolvingGraph
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


def departure_cascade(graph: Graph, k: int, leavers: Iterable[Vertex]) -> Set[Vertex]:
    """Return every user who ends up disengaged when ``leavers`` quit.

    The result contains the leavers themselves (if they were engaged) plus all
    members of the k-core that no longer have ``k`` engaged neighbours once the
    cascade settles.
    """
    if k < 1:
        raise ParameterError("k must be >= 1")
    leaver_set = set(leavers)
    for vertex in leaver_set:
        if not graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
    engaged_before = k_core(graph, k)
    remaining = graph.subgraph(set(graph.vertices()) - leaver_set)
    engaged_after = k_core(remaining, k)
    return engaged_before - engaged_after


def most_critical_users(
    graph: Graph, k: int, top: int = 10, candidates: Optional[Iterable[Vertex]] = None
) -> List[Tuple[Vertex, int]]:
    """Rank engaged users by the size of the cascade their departure triggers.

    Returns up to ``top`` pairs ``(user, cascade size)`` sorted by decreasing
    cascade size (the user herself counts, so every engaged user scores at
    least 1).  ``candidates`` restricts the evaluation (default: every k-core
    member), which is how the paper's "critical users" are found in practice.
    """
    if top < 1:
        raise ParameterError("top must be >= 1")
    engaged = k_core(graph, k)
    pool = engaged if candidates is None else set(candidates) & engaged
    scores: Dict[Vertex, int] = {}
    for vertex in pool:
        scores[vertex] = len(departure_cascade(graph, k, [vertex]))
    ranked = sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))
    return ranked[:top]


def engagement_series(evolving: EvolvingGraph, k: int) -> List[int]:
    """Return the engaged community size (k-core size) at every snapshot."""
    if k < 1:
        raise ParameterError("k must be >= 1")
    return [len(k_core(snapshot, k)) for snapshot in evolving.snapshots()]


def anchored_engagement_series(
    evolving: EvolvingGraph,
    k: int,
    anchor_sets: Sequence[Iterable[Vertex]],
) -> List[int]:
    """Return ``|C_k(S_t)|`` per snapshot for a given anchor-set series.

    ``anchor_sets`` typically comes from a tracker result
    (:attr:`repro.avt.problem.AVTResult.anchor_sets`); it must provide one
    anchor set per snapshot.
    """
    if k < 1:
        raise ParameterError("k must be >= 1")
    snapshots = list(evolving.snapshots())
    if len(anchor_sets) != len(snapshots):
        raise ParameterError(
            f"expected {len(snapshots)} anchor sets (one per snapshot), got {len(anchor_sets)}"
        )
    sizes: List[int] = []
    for snapshot, anchors in zip(snapshots, anchor_sets):
        valid_anchors = [anchor for anchor in anchors if snapshot.has_vertex(anchor)]
        sizes.append(len(anchored_k_core(snapshot, k, valid_anchors)))
    return sizes


def core_resilience(
    graph: Graph,
    k: int,
    num_departures: int,
    trials: int = 20,
    seed: int | random.Random | None = 0,
) -> float:
    """Return the expected fraction of the k-core surviving random departures.

    Each trial removes ``num_departures`` uniformly random k-core members and
    measures the surviving fraction of the original k-core; the average over
    ``trials`` is returned (1.0 = perfectly resilient, 0.0 = fully unravelled).
    """
    if k < 1:
        raise ParameterError("k must be >= 1")
    if num_departures < 0:
        raise ParameterError("num_departures must be non-negative")
    if trials < 1:
        raise ParameterError("trials must be >= 1")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    engaged = sorted(k_core(graph, k), key=tie_break_key)
    if not engaged:
        return 1.0
    fractions: List[float] = []
    for _ in range(trials):
        departures = rng.sample(engaged, min(num_departures, len(engaged)))
        lost = departure_cascade(graph, k, departures)
        fractions.append(1.0 - len(lost) / len(engaged))
    return sum(fractions) / len(fractions)
