"""Anchored Vertex Tracking (AVT) in dynamic social networks.

A pure-Python reproduction of *Incremental Graph Computation: Anchored Vertex
Tracking in Dynamic Social Networks*: the anchored k-core model of user
engagement, the optimised Greedy and incremental (IncAVT) trackers, the OLAK /
RCM / brute-force baselines, the graph and dataset substrates, and the full
experiment harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import AVTProblem, GreedyTracker, IncAVTTracker, load_dataset

    problem = AVTProblem(load_dataset("eu_core", num_snapshots=10), k=3, budget=5)
    incremental = IncAVTTracker().track(problem)
    print(incremental.summary())

Online serving::

    from repro import StreamingAVTEngine, load_dataset

    evolving = load_dataset("gnutella", num_snapshots=10, scale=0.3)
    engine = StreamingAVTEngine(evolving.base)
    answer = engine.query(k=3, budget=5)          # cold solve, cached
    for delta in evolving.deltas:                 # live edge stream
        engine.ingest(delta)                      # batched + coalesced
        answer = engine.query(k=3, budget=5)      # warm IncAVT refresh
    again = engine.query(k=3, budget=5)           # served from cache
    print(engine.stats.summary())                 # hit rate, latencies
    engine.checkpoint("engine.ckpt")              # survive a restart
    resumed = StreamingAVTEngine.restore("engine.ckpt")

The engine batches edge events through an ingest buffer, maintains core
numbers incrementally, caches answers per graph version with selective
invalidation, and reuses the previous anchor set via the IncAVT update path
for warm queries; ``avt-bench serve-sim`` simulates the whole loop on a
bundled dataset.

Architecture
------------
The library is layered; each layer only depends on the ones above it::

    repro.graph     Graph (adjacency-set dict, hashable vertex ids)  ── public substrate
                    compact: VertexInterner · CompactGraph (CSR) ·
                    DynamicCompactAdjacency                          ── execution layer
    repro.cores     core_decomposition · KOrder · CoreMaintainer     ── k-core machinery
    repro.anchored  followers · AnchoredCoreIndex ·
                    Greedy / OLAK / RCM / brute force                ── anchored k-core
    repro.avt       per-snapshot trackers · IncAVTTracker            ── dynamic tracking
    repro.engine    StreamingAVTEngine (ingest, cache, warm solves)  ── online serving

Every hot kernel exists twice: a hashable-vertex ``dict`` implementation and
a flat integer-array implementation over the compact backend.  The split
follows the symbolic-vs-numeric layering of dataflow systems: user code
always speaks hashable vertex ids; the kernels run on dense ``0..n-1`` ints.

*Interning semantics* — :class:`~repro.graph.VertexInterner` assigns dense
ids in first-seen order and never reuses or moves them, so flat arrays stay
index-stable for the interner's lifetime.  Ordered
:class:`~repro.graph.CompactGraph` snapshots intern in
:func:`repro.ordering.tie_break_key` order, making the id double as the
deterministic tie-break rank — which is why both backends produce identical
peeling orders, not merely identical core numbers.

*Backend selection* — solvers, trackers, ``CoreMaintainer``, ``KOrder`` and
``StreamingAVTEngine`` accept ``backend="auto" | "dict" | "compact"``.
``auto`` (the default) resolves to compact at
:data:`~repro.graph.COMPACT_THRESHOLD` vertices and to dict below it.
One-shot cascades (:func:`k_core`, :func:`anchored_k_core`,
:func:`compute_followers`) default to ``dict`` because a single O(n + m)
pass cannot amortise building the snapshot; long-lived consumers
(:class:`AnchoredCoreIndex`, ``CoreMaintainer``) build one compact structure
and reuse it across every refresh, scan and cascade.  Results are identical
across backends (enforced by ``tests/test_backend_equivalence.py``); only
speed differs — ``benchmarks/bench_backend_compare.py`` tracks the gap.
"""

from repro.anchored import (
    AnchoredCoreIndex,
    AnchoredKCoreResult,
    BruteForceAnchoredKCore,
    ExactSmallK,
    GreedyAnchoredKCore,
    OLAKAnchoredKCore,
    RCMAnchoredKCore,
    anchored_k_core,
    compute_followers,
    marginal_followers,
)
from repro.avt import (
    AVTProblem,
    AVTResult,
    BruteForceTracker,
    ExactSmallKTracker,
    GreedyTracker,
    IncAVTTracker,
    OLAKTracker,
    RCMTracker,
    SnapshotResult,
    SnapshotTracker,
)
from repro.cores import (
    CoreMaintainer,
    KOrder,
    core_decomposition,
    core_numbers,
    k_core,
    k_shell,
)
from repro.engine import (
    CacheKey,
    EngineStats,
    IngestBuffer,
    ResultCache,
    StreamingAVTEngine,
    load_checkpoint,
    save_checkpoint,
)
from repro.graph import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKENDS,
    COMPACT_THRESHOLD,
    CompactGraph,
    DynamicCompactAdjacency,
    EdgeDelta,
    EvolvingGraph,
    Graph,
    SnapshotSequence,
    VertexInterner,
    resolve_backend,
)
from repro.graph.datasets import (
    DATASET_NAMES,
    dataset_spec,
    load_dataset,
    load_snapshot_sequence,
    toy_example_evolving_graph,
    toy_example_graph,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph substrate
    "Graph",
    "EdgeDelta",
    "EvolvingGraph",
    "SnapshotSequence",
    # compact backend
    "BACKEND_AUTO",
    "BACKEND_COMPACT",
    "BACKEND_DICT",
    "BACKENDS",
    "COMPACT_THRESHOLD",
    "CompactGraph",
    "DynamicCompactAdjacency",
    "VertexInterner",
    "resolve_backend",
    # datasets
    "DATASET_NAMES",
    "dataset_spec",
    "load_dataset",
    "load_snapshot_sequence",
    "toy_example_graph",
    "toy_example_evolving_graph",
    # core machinery
    "core_decomposition",
    "core_numbers",
    "k_core",
    "k_shell",
    "KOrder",
    "CoreMaintainer",
    # anchored k-core
    "anchored_k_core",
    "compute_followers",
    "marginal_followers",
    "AnchoredCoreIndex",
    "AnchoredKCoreResult",
    "GreedyAnchoredKCore",
    "OLAKAnchoredKCore",
    "RCMAnchoredKCore",
    "BruteForceAnchoredKCore",
    "ExactSmallK",
    # AVT trackers
    "AVTProblem",
    "AVTResult",
    "SnapshotResult",
    "SnapshotTracker",
    "GreedyTracker",
    "OLAKTracker",
    "RCMTracker",
    "BruteForceTracker",
    "ExactSmallKTracker",
    "IncAVTTracker",
    # online serving engine
    "StreamingAVTEngine",
    "IngestBuffer",
    "ResultCache",
    "CacheKey",
    "EngineStats",
    "save_checkpoint",
    "load_checkpoint",
]
