"""Anchored Vertex Tracking (AVT) in dynamic social networks.

A pure-Python reproduction of *Incremental Graph Computation: Anchored Vertex
Tracking in Dynamic Social Networks*: the anchored k-core model of user
engagement, the optimised Greedy and incremental (IncAVT) trackers, the OLAK /
RCM / brute-force baselines, the graph and dataset substrates, and the full
experiment harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import AVTProblem, GreedyTracker, IncAVTTracker, load_dataset

    problem = AVTProblem(load_dataset("eu_core", num_snapshots=10), k=3, budget=5)
    incremental = IncAVTTracker().track(problem)
    print(incremental.summary())

Online serving::

    from repro import StreamingAVTEngine, load_dataset

    evolving = load_dataset("gnutella", num_snapshots=10, scale=0.3)
    engine = StreamingAVTEngine(evolving.base)
    answer = engine.query(k=3, budget=5)          # cold solve, cached
    for delta in evolving.deltas:                 # live edge stream
        engine.ingest(delta)                      # batched + coalesced
        answer = engine.query(k=3, budget=5)      # warm IncAVT refresh
    again = engine.query(k=3, budget=5)           # served from cache
    print(engine.stats.summary())                 # hit rate, latencies
    engine.checkpoint("engine.ckpt")              # survive a restart
    resumed = StreamingAVTEngine.restore("engine.ckpt")

The engine batches edge events through an ingest buffer, maintains core
numbers incrementally, caches answers per graph version with selective
invalidation, and reuses the previous anchor set via the IncAVT update path
for warm queries; ``avt-bench serve-sim`` simulates the whole loop on a
bundled dataset.

Architecture
------------
The library is layered; each layer only depends on the ones above it::

    repro.graph     Graph (adjacency-set dict, hashable vertex ids)  ── public substrate
                    compact: VertexInterner · CompactGraph (CSR) ·
                    DynamicCompactAdjacency                          ── snapshot structures
    repro.shard     partitioners (hash / degree-balanced /
                    community) · ShardCoordinator (per-shard waves
                    + async futures-based or lock-step boundary
                    exchange, serial or spawn process pool over
                    shared-memory CSR states)                        ── scale-out layer
    repro.backends  ExecutionBackend protocol · registry · auto
                    policy · dict / compact / numpy / sharded
                    kernels                                          ── execution layer
    repro.cores     core_decomposition · KOrder · CoreMaintainer     ── k-core machinery
    repro.anchored  followers · AnchoredCoreIndex ·
                    Greedy / OLAK / RCM / brute force                ── anchored k-core
    repro.avt       per-snapshot trackers · IncAVTTracker            ── dynamic tracking
    repro.engine    StreamingAVTEngine (ingest, cache, warm solves)  ── online serving

*Execution backends* — every hot kernel (peeling decomposition, k-core
cascades, K-order ``deg+``, the follower cascades and candidate scans behind
the anchored core index, the incremental maintenance traversals) is defined
once as the :class:`~repro.backends.ExecutionBackend` protocol and
implemented by the registered backends; public modules never branch on a
backend name, they call through the object the registry resolves.  The five
built-ins:

================  =============================================  =========================================
backend           implementation                                 ``auto`` picks it when
================  =============================================  =========================================
``dict``          hashable vertices over the adjacency-set       the graph has fewer than
                  graph; zero setup or translation cost          :data:`~repro.backends.COMPACT_THRESHOLD`
                                                                 vertices, or for any one-shot cascade
                                                                 (a single O(n + m) pass cannot amortise
                                                                 a snapshot build)
``compact``       flat int arrays over an interned CSR           large amortised workloads when neither
                  snapshot; packed single-int heap peeling       numba nor numpy is installed
``numpy``         vectorised numpy kernels over the same CSR     large amortised workloads when numpy is
                  contract (wave peeling, bincount support       installed but numba is not
                  counts, edge-level candidate scans)
``numba``         the three hottest kernels (packed-heap peel,   large amortised workloads when numba is
                  support cascades, maintenance traversals) as   installed (highest auto priority); JIT
                  ``@njit(cache=True)`` machine code over the    compilation runs once at construction
                  CSR contract; everything else inherits the     under a ``kernel.jit_compile`` span
                  compact twins
``sharded``       the CSR snapshot partitioned across shards     never — multi-process execution is an
                  (:mod:`repro.shard`: hash, degree-balanced     explicit operator decision: request
                  or locality-aware community partitioners,      ``backend="sharded"``, pass a configured
                  ghost tables); cascades run as per-shard       ``ShardedBackend(...)``, or set the
                  waves with boundary exchange — async           ``REPRO_SHARD_*`` environment variables
                  futures-based by default, lock-step rounds     (count / partitioner / executor /
                  selectable — until fixpoint, on a serial       workers / exchange / shm)
                  executor or one spawn-safe worker process
                  per shard attached to shared-memory CSR
                  blocks
================  =============================================  =========================================

The priority ladder above is only the *uncalibrated* policy.  A measured
calibration table (:mod:`repro.backends.calibrate`: ``avt-bench calibrate``
or :func:`repro.backends.run_calibration`, activated via
:func:`repro.backends.load_calibration` or ``REPRO_CALIBRATION``) makes
``auto`` resolve amortised workloads to the *measured* winner of the size
band containing the graph, falling back to the ladder for uncalibrated sizes
and unavailable winners.

All registered backends guarantee identical core numbers, identical
*removal orders* and identical instrumentation counts (enforced by
``tests/test_backend_equivalence.py``, five-way); only speed differs —
``benchmarks/bench_backend_compare.py`` tracks the gaps and emits
``BENCH_backend.json`` / ``BENCH_numpy.json`` / ``BENCH_sharded.json``
(shard-scaling: 1-shard serial vs multi-worker process pool, async vs
lock-step exchange, and the community partitioner's cut-edge reduction
vs hash) /
``BENCH_incremental.json`` (incremental vs full-recompute Greedy), and
``benchmarks/bench_autotune.py`` emits ``BENCH_autotune.json`` (compiled-vs-
vectorised kernel floor plus the recorded calibration table), each with an
enforced ``floors`` block read by ``python -m repro.bench.compare``.

*Delta refresh* — committing one anchor never re-peels the snapshot.
:meth:`~repro.backends.CoreIndexKernel.commit_anchor` is the incremental
sibling of :meth:`~repro.backends.CoreIndexKernel.refresh` with a precise
contract (the delta-refresh contract in :mod:`repro.backends.base`):

=============  ==============================================================
kernel         ``commit_anchor`` path
=============  ==============================================================
``dict``       affected-region splice: per-level riser cascades update the
               core numbers (+1 each, the single-anchor shell lemma), only
               shells whose membership or starting degrees changed re-run
               their within-shell order cascade
``compact``    the same splice over flat id arrays
               (:func:`repro.cores.decomposition.incremental_anchor_commit`)
``numpy``      shares the compact splice (the region is scalar-sized work)
``numba``      shares the compact splice too, then patches its float64 core
               mirror for the touched ids
``sharded``    full refresh through the coordinator's shard-local result
               caches (round-1 peel keyed by local anchors, fragments keyed
               by converged bounds, no-traffic shards skipped), then an
               exact core diff
custom         inherits the protocol default — full refresh, touched
               unknown (``None``) — so third-party kernels keep working
=============  ==============================================================

Every path returns the exact *touched set* (vertices whose anchored core
number changed), which :class:`~repro.anchored.GreedyAnchoredKCore` uses to
memoize marginal gains across rounds: each candidate evaluation is cached
with its read region and invalidated only when a commit touches that region
or its one-hop neighbourhood, so each round re-runs O(invalidated) cascades
instead of O(candidates) — anchors, followers and the paper's
instrumentation counters stay bit-identical to the full-recompute path
(``incremental=False``), enforced by ``tests/test_incremental_refresh.py``
and the ``BENCH_incremental.json`` floor.  The
determinism hinges on the interning semantics: :class:`~repro.graph.VertexInterner`
assigns dense ids in first-seen order and never moves them, and ordered
:class:`~repro.graph.CompactGraph` snapshots intern in
:func:`repro.ordering.tie_break_key` order so the integer id doubles as the
deterministic tie-break rank.  The sharded backend preserves it by owning
each id in exactly one shard: core numbers come from locally-exact peels
reconciled through exchanged boundary core bounds, removal orders from the
same packed-heap within-shell cascade the other snapshot backends use, and
deletion cascades are confluent, so batched boundary decrements reach the
sequential fixpoint exactly.  The async exchange keeps this bit-identity
under arbitrary completion interleavings because every payload merge is
order-insensitive — cascade deltas sum, h-index estimates combine with
``min`` (the bounds only ever decrease toward the unique fixpoint) — so
whichever shard finishes first, the converged state is the lock-step one.
Engine checkpoints persist a configurable backend's configuration (shard
count, partitioner policy, exchange mode, shared-memory flag) next to the
policy name, and restoring a checkpoint whose backend is unavailable in the
restoring process falls back to ``"auto"`` with a warning.

*Custom backends* — implement the protocol and register it::

    from repro.backends import ExecutionBackend, register_backend

    class MyBackend(ExecutionBackend):
        name = "mine"
        ...  # decompose / k_core / remaining_degrees /
             # build_core_index / build_maintenance

    register_backend("mine", MyBackend, auto_priority=5)
    GreedyAnchoredKCore(graph, k=3, budget=5, backend="mine")

``auto_priority`` ranks the backend for ``auto`` on large amortised
workloads; an ``is_available`` probe (with an optional ``availability_reason``
companion explaining *why* — missing import vs. ``REPRO_DISABLE_*`` switch)
lets optional-dependency backends like numpy and numba degrade gracefully —
``avt-bench backends`` prints the registry with availability, skip reasons,
priorities and per-backend configuration.

*Dynamic re-resolution* — ``StreamingAVTEngine(backend="auto")`` re-resolves
at flush time and migrates its :class:`CoreMaintainer` state, so an engine
that starts empty upgrades off the dict backend once the ingested stream
crosses the threshold; with a calibration table active the measured winner
is re-consulted at every flush, so the engine follows band boundaries.

Observability
-------------
:mod:`repro.obs` is the cross-cutting layer every other layer reports into:

===========================  ==================================================
surface                      what it gives you
===========================  ==================================================
``repro.obs.tracer``         hierarchical spans over engine queries/flushes/
                             checkpoints, warm vs cold solves, per-round
                             greedy evaluate/commit, kernel calls, and shard
                             coordinator rounds (worker spans are merged into
                             the coordinator's trace with shard tags)
:class:`~repro.obs.MetricsRegistry`
                             counters / gauges / log-bucketed histograms with
                             one snapshot schema, ``{name, type, value,
                             labels}``; :class:`EngineStats`,
                             ``SolverStats`` and the shard coordinator's
                             counters are views over registries
exporters                    :class:`~repro.obs.JsonLinesSpanSink` (streaming
                             span JSONL), :func:`~repro.obs.to_prometheus` /
                             :func:`~repro.obs.write_metrics` (Prometheus
                             text or JSON), and the existing human
                             ``summary()`` renderings
``repro.obs.analyze``        offline trace analytics: span-tree
                             reconstruction (:func:`~repro.obs.build_span_trees`),
                             Dapper-style critical paths
                             (:func:`~repro.obs.critical_path`, summing to the
                             root's wall time by construction), per-name
                             self-time flamegraph aggregation with
                             collapsed-stack output, shard
                             straggler/utilization reports reconciling with
                             the coordinator's ``exchange_waves`` /
                             ``ops_dispatched`` counters, and two-trace
                             latency diffs — also on the command line as
                             ``avt-bench trace {tree,critical-path,flame,
                             stragglers}`` (``--diff`` compares two traces)
:class:`~repro.obs.SamplingProfiler`
                             thread-based wall-clock sampling profiler
                             (``sys._current_frames`` at a configurable hz)
                             attributing samples both to code stacks and to
                             the open span stack, with an enforced <=5%
                             overhead floor in ``BENCH_trace.json``
:class:`~repro.obs.FlightRecorder`
                             always-on bounded ring of recent spans + metric
                             deltas that survives disabled tracing cheaply
                             and auto-dumps on span errors, broken worker
                             pools and checkpoint failures; inspect it live
                             via ``engine.flight_record()``
===========================  ==================================================

Tracing is off by default and costs one module-flag check per instrumented
site when disabled (``benchmarks/bench_obs_overhead.py`` enforces a <=5%
replay-overhead floor in ``BENCH_obs.json``).  Enable it with
``repro.obs.tracer.set_enabled(True)``, the ``REPRO_TRACE=1`` environment
variable, or ``avt-bench serve-sim --trace-out spans.jsonl --metrics-out
metrics.prom`` for a fully traced replay; ``examples/traced_query.py`` walks
a captured trace through the span tree, the critical path and the flamegraph
aggregation.  The ``engine.latency.*`` histograms additionally carry
*exemplars* — each bucket remembers the trace id of its slowest recent
observation, linking a latency outlier straight to its trace.  Engine lifecycle events also go to stdlib logging under
the ``"repro"`` logger hierarchy (a :class:`logging.NullHandler` is
installed at the package root, per library convention).

Failure handling
----------------
:mod:`repro.resilience` makes the failure story testable: a deterministic
fault-injection framework plus the supervision that turns faults into
retries and degradations instead of wrong answers.

*Fault injection* — :class:`~repro.resilience.FaultSpec` describes one fault
(site, action, match filters, firing schedule); arm a plan programmatically
(:func:`~repro.resilience.install_plan` / the
:func:`~repro.resilience.inject` context manager) or from the environment::

    REPRO_FAULTS="shard.op:action=crash,executor=process,op=hindex_round,at=2"

Sites cover shard op dispatch (``shard.op`` — crash via ``os._exit`` inside
sacrificial workers, slow, or raised :class:`~repro.errors.FaultError`),
shared-memory attach (``shm.attach``), checkpoint byte corruption
(``checkpoint.bytes``) and checkpoint flush failure (``checkpoint.write``).
Every firing increments the ``resilience.faults_injected`` counter and lands
in the flight recorder, tracing on or off.

*Supervised shard execution* — the :class:`~repro.shard.ShardCoordinator`
dispatches every kernel under a :class:`~repro.resilience.RetryPolicy`
(bounded retries, exponential backoff with deterministic jitter, per-op
deadlines; ``REPRO_RETRY_MAX`` / ``REPRO_RETRY_BASE_DELAY`` /
``REPRO_SHARD_OP_TIMEOUT``).  A broken or timed-out worker pool is
respawned, its shards reloaded from kept payloads, and the op replayed;
in-flight boundary exchanges *resume* (monotone h-index rounds re-ship
current estimates to reborn shards; confluent cascades restart from their
reset op, which keeps results bit-identical).  When retries exhaust, the
ladder degrades rather than fails: coordinator process pool → serial
executor, then :class:`StreamingAVTEngine` → compact backend — the query is
still answered, ``engine.health()`` reports ``"degraded"`` with the reason,
and every subsequent flush probes the failed substrate, migrating back
automatically once it is healthy again (``degradations`` /
``recovery_probes`` / ``recoveries`` counters).

*Verified checkpoints* — checkpoint files carry a versioned manifest with a
SHA-256 digest per section (graph / core / warm / cache / stats); a
truncated or bit-flipped file raises
:class:`~repro.errors.CheckpointCorruptionError` naming the damaged section
*before* any unpickling of that section.  ``save_checkpoint(engine, path,
keep=N)`` rotates the last N checkpoints, and ``load_checkpoint`` falls back
to the newest intact rotation on corruption.  ``avt-bench serve-sim
--backend sharded --inject-faults`` replays a dataset with a persistent
shard fault armed and fails unless every query was answered through the
degradation path; ``examples/chaos_replay.py`` walks the same loop in code,
and ``benchmarks/bench_resilience.py`` enforces a <=5% no-fault supervision
overhead floor in ``BENCH_resilience.json``.
"""

import logging as _logging

from repro.obs import (
    JsonLinesSpanSink,
    MetricsRegistry,
    global_registry,
    to_prometheus,
    tracer,
    write_metrics,
)

_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.anchored import (
    AnchoredCoreIndex,
    AnchoredKCoreResult,
    BruteForceAnchoredKCore,
    ExactSmallK,
    GreedyAnchoredKCore,
    OLAKAnchoredKCore,
    RCMAnchoredKCore,
    anchored_k_core,
    compute_followers,
    marginal_followers,
)
from repro.avt import (
    AVTProblem,
    AVTResult,
    BruteForceTracker,
    ExactSmallKTracker,
    GreedyTracker,
    IncAVTTracker,
    OLAKTracker,
    RCMTracker,
    SnapshotResult,
    SnapshotTracker,
)
from repro.cores import (
    CoreMaintainer,
    KOrder,
    core_decomposition,
    core_numbers,
    k_core,
    k_shell,
)
from repro.engine import (
    CacheKey,
    EngineStats,
    IngestBuffer,
    ResultCache,
    StreamingAVTEngine,
    load_checkpoint,
    save_checkpoint,
)
from repro.backends import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMBA,
    BACKEND_NUMPY,
    BACKEND_SHARDED,
    BACKENDS,
    COMPACT_THRESHOLD,
    CalibrationSpec,
    CalibrationTable,
    ExecutionBackend,
    available_backends,
    backend_availability,
    backend_info,
    get_backend,
    load_calibration,
    register_backend,
    registered_backends,
    resolve_backend,
    run_calibration,
)
from repro.errors import CheckpointCorruptionError, FaultError
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    clear_plan,
    inject,
    install_plan,
)
from repro.graph import (
    CompactGraph,
    DynamicCompactAdjacency,
    EdgeDelta,
    EvolvingGraph,
    Graph,
    SnapshotSequence,
    VertexInterner,
)
from repro.graph.datasets import (
    DATASET_NAMES,
    dataset_spec,
    load_dataset,
    load_snapshot_sequence,
    toy_example_evolving_graph,
    toy_example_graph,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph substrate
    "Graph",
    "EdgeDelta",
    "EvolvingGraph",
    "SnapshotSequence",
    # execution backends
    "BACKEND_AUTO",
    "BACKEND_COMPACT",
    "BACKEND_DICT",
    "BACKEND_NUMBA",
    "BACKEND_NUMPY",
    "BACKEND_SHARDED",
    "BACKENDS",
    "COMPACT_THRESHOLD",
    "CalibrationSpec",
    "CalibrationTable",
    "CompactGraph",
    "DynamicCompactAdjacency",
    "ExecutionBackend",
    "VertexInterner",
    "available_backends",
    "backend_availability",
    "backend_info",
    "get_backend",
    "load_calibration",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "run_calibration",
    # datasets
    "DATASET_NAMES",
    "dataset_spec",
    "load_dataset",
    "load_snapshot_sequence",
    "toy_example_graph",
    "toy_example_evolving_graph",
    # core machinery
    "core_decomposition",
    "core_numbers",
    "k_core",
    "k_shell",
    "KOrder",
    "CoreMaintainer",
    # anchored k-core
    "anchored_k_core",
    "compute_followers",
    "marginal_followers",
    "AnchoredCoreIndex",
    "AnchoredKCoreResult",
    "GreedyAnchoredKCore",
    "OLAKAnchoredKCore",
    "RCMAnchoredKCore",
    "BruteForceAnchoredKCore",
    "ExactSmallK",
    # AVT trackers
    "AVTProblem",
    "AVTResult",
    "SnapshotResult",
    "SnapshotTracker",
    "GreedyTracker",
    "OLAKTracker",
    "RCMTracker",
    "BruteForceTracker",
    "ExactSmallKTracker",
    "IncAVTTracker",
    # online serving engine
    "StreamingAVTEngine",
    "IngestBuffer",
    "ResultCache",
    "CacheKey",
    "EngineStats",
    "save_checkpoint",
    "load_checkpoint",
    # resilience
    "CheckpointCorruptionError",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "clear_plan",
    "inject",
    "install_plan",
    # observability
    "tracer",
    "MetricsRegistry",
    "global_registry",
    "JsonLinesSpanSink",
    "to_prometheus",
    "write_metrics",
]
