"""IncAVT: the incremental Anchored Vertex Tracking algorithm (Section 5).

IncAVT exploits the smoothness of the network's evolution.  It solves the
first snapshot with the Greedy algorithm, then for every subsequent snapshot:

1. maintains the core numbers incrementally while applying the edge delta
   (``E+`` then ``E-``), collecting the affected vertex pools ``VI`` and
   ``VR`` — the insertion- and deletion-affected vertices whose core number is
   ``k - 1`` afterwards (Algorithms 4-5, realised by
   :class:`repro.cores.maintenance.CoreMaintainer`);
2. carries the previous anchor set forward (``S_t := S_{t-1}``); and
3. probes only candidates drawn from ``VI ∪ VR ∪ nbr(VI ∪ VR)`` outside the
   k-core (Algorithm 6, line 12), swapping an existing anchor for a candidate
   whenever that increases the follower count.  The swap examination is
   limited to the anchors whose neighbourhood the delta actually touched and
   to anchors that the evolution pushed inside the k-core (their budget is
   wasted) — the remaining anchors sit in unchanged regions, where a swap
   cannot help, which is precisely the smoothness argument of Section 5.  If
   the carried-forward set is smaller than the budget, the spare budget is
   filled greedily from the same restricted pool.

Because the candidate pool is restricted to the region the delta actually
touched, IncAVT visits far fewer vertices per snapshot than re-running any of
the static algorithms — the effect the paper's Figures 3-8 measure.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.followers import compute_followers
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.avt.problem import AVTProblem, AVTResult, SnapshotResult
from repro.cores.maintenance import CoreMaintainer
from repro.errors import ParameterError
from repro.backends import BACKEND_AUTO, ExecutionBackend
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


class IncAVTTracker:
    """Incremental AVT tracker (the paper's IncAVT, Algorithm 6).

    Parameters
    ----------
    fill_budget:
        When the carried-forward anchor set has spare budget, greedily add
        candidates from the restricted pool (default).  Disable to follow the
        swap-only pseudocode literally.
    neighbourhood_hops:
        How far around the affected vertices the candidate pool extends; the
        paper uses the direct neighbourhood (1 hop).
    swap_all_anchors:
        Examine a replacement for *every* carried-forward anchor at every
        snapshot (the literal Algorithm 6 loop) instead of only the anchors
        the delta touched.  Slower, occasionally slightly better anchors.
    restart_churn_ratio:
        When a single delta changes more than this fraction of the snapshot's
        edges, the smoothness assumption behind the incremental update no
        longer holds, so the snapshot is re-solved from scratch with the
        Greedy algorithm instead (the incremental core index is still
        maintained).  The paper observes the same effect: K-order maintenance
        "downgrades when the percentage of updated edges is high" (Section
        6.2.2), which is visible as the IncAVT time jump at eu-core T=21.
        Set to ``None`` to disable restarts.
    backend:
        Execution backend (``"auto"`` / ``"dict"`` / ``"compact"``, see
        :mod:`repro.backends`) used for core maintenance, the Greedy
        first-snapshot/restart solves and the swap/fill core indexes.
    """

    name = "IncAVT"

    def __init__(
        self,
        fill_budget: bool = True,
        neighbourhood_hops: int = 1,
        swap_all_anchors: bool = False,
        restart_churn_ratio: Optional[float] = 0.15,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        self._fill_budget = fill_budget
        self._neighbourhood_hops = max(0, neighbourhood_hops)
        self._swap_all_anchors = swap_all_anchors
        self._restart_churn_ratio = restart_churn_ratio
        self._backend = backend

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def track(self, problem: AVTProblem, max_snapshots: Optional[int] = None) -> AVTResult:
        """Solve the AVT problem incrementally across all snapshots."""
        result = AVTResult(
            algorithm=self.name, k=problem.k, budget=problem.budget, problem_name=problem.name
        )
        limit = (
            problem.num_snapshots
            if max_snapshots is None
            else min(max_snapshots, problem.num_snapshots)
        )
        if limit == 0:
            return result

        # Snapshot 1: solved from scratch with the Greedy algorithm (Algorithm 6, line 2).
        maintainer = CoreMaintainer(
            problem.evolving_graph.base, copy_graph=True, backend=self._backend
        )
        first_graph = maintainer.graph
        greedy = GreedyAnchoredKCore(
            first_graph, problem.k, problem.budget, backend=self._backend
        )
        first = greedy.select()
        result.append(
            SnapshotResult(
                timestamp=0,
                result=AnchoredKCoreResult(
                    algorithm=self.name,
                    k=first.k,
                    budget=first.budget,
                    anchors=first.anchors,
                    followers=first.followers,
                    anchored_core_size=first.anchored_core_size,
                    stats=first.stats,
                ),
                num_vertices=first_graph.num_vertices,
                num_edges=first_graph.num_edges,
            )
        )
        anchors: List[Vertex] = list(first.anchors)

        for timestamp in range(1, limit):
            delta = problem.evolving_graph.deltas[timestamp - 1]
            started = time.perf_counter()
            churn_ratio = delta.num_changes / max(maintainer.graph.num_edges, 1)
            if (
                self._restart_churn_ratio is not None
                and churn_ratio > self._restart_churn_ratio
            ):
                # Smoothness violated: per-edge maintenance and anchor swapping
                # would cost more than starting over, so apply the delta in
                # bulk, refresh the core index, and re-solve with Greedy.
                delta.apply(maintainer.graph)
                maintainer.refresh_from_graph()
                restart = GreedyAnchoredKCore(
                    maintainer.graph, problem.k, problem.budget, backend=self._backend
                ).select()
                anchors = list(restart.anchors)
                stats = restart.stats
                maintenance_visited = 0
            else:
                effect = maintainer.apply_delta(delta, k=problem.k)
                anchors, stats = self._update_anchor_set(
                    maintainer, problem.k, problem.budget, anchors, effect.affected
                )
                maintenance_visited = effect.visited
            stats.maintenance_visited += maintenance_visited

            # Reporting for this snapshot: the plain k-core comes for free from
            # the maintained core numbers; the followers need one anchored
            # cascade — no full decomposition, which is part of IncAVT's win.
            snapshot_graph = maintainer.graph
            plain_core = maintainer.k_core_vertices(problem.k)
            followers = compute_followers(
                snapshot_graph, problem.k, anchors, k_core_vertices=plain_core
            )
            stats.runtime_seconds = time.perf_counter() - started
            anchored_size = len(plain_core | set(anchors) | followers)
            result.append(
                SnapshotResult(
                    timestamp=timestamp,
                    result=AnchoredKCoreResult(
                        algorithm=self.name,
                        k=problem.k,
                        budget=problem.budget,
                        anchors=tuple(anchors),
                        followers=frozenset(followers),
                        anchored_core_size=anchored_size,
                        stats=stats,
                    ),
                    num_vertices=snapshot_graph.num_vertices,
                    num_edges=snapshot_graph.num_edges,
                    edges_inserted=len(delta.inserted),
                    edges_removed=len(delta.removed),
                )
            )
        return result

    def refresh_anchors(
        self,
        maintainer: CoreMaintainer,
        k: int,
        budget: int,
        anchors: Iterable[Vertex],
        affected: Set[Vertex],
    ) -> Tuple[List[Vertex], SolverStats]:
        """Warm-update a carried-forward anchor set after external maintenance.

        This is the engine-facing entry point: a long-lived caller (such as
        :class:`repro.engine.StreamingAVTEngine`) that owns its own
        :class:`CoreMaintainer` applies deltas itself, accumulates the touched
        vertex set, and then asks for the Algorithm-6 swap/fill pass over that
        restricted pool instead of re-solving from scratch.  Returns the
        refreshed anchor list and the solver stats of the pass.
        """
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        carried = list(anchors)[:budget]
        return self._update_anchor_set(maintainer, k, budget, carried, set(affected))

    # ------------------------------------------------------------------
    # Anchor-set update (Algorithm 6, lines 9-16)
    # ------------------------------------------------------------------
    def _affected_region(self, graph: Graph, affected: Set[Vertex]) -> Set[Vertex]:
        """Expand the affected vertices by the configured neighbourhood radius."""
        region: Set[Vertex] = {vertex for vertex in affected if graph.has_vertex(vertex)}
        frontier = set(region)
        for _ in range(self._neighbourhood_hops):
            next_frontier: Set[Vertex] = set()
            for vertex in frontier:
                next_frontier.update(graph.neighbors(vertex))
            next_frontier -= region
            region |= next_frontier
            frontier = next_frontier
        return region

    def _candidate_pool(
        self,
        graph: Graph,
        k: int,
        core: Dict[Vertex, int],
        region: Set[Vertex],
        exclude: Set[Vertex],
    ) -> List[Vertex]:
        """Filter the affected region down to plausible anchor candidates."""
        target = k - 1
        filtered: List[Vertex] = []
        for vertex in region:
            if vertex in exclude:
                continue
            if core.get(vertex, 0) >= k:
                continue
            # Theorem-3 relaxation: a useful anchor must touch the (k-1)-shell.
            if any(core.get(neighbour) == target for neighbour in graph.neighbors(vertex)):
                filtered.append(vertex)
        return sorted(filtered, key=tie_break_key)

    def _update_anchor_set(
        self,
        maintainer: CoreMaintainer,
        k: int,
        budget: int,
        previous_anchors: List[Vertex],
        affected: Set[Vertex],
    ) -> Tuple[List[Vertex], SolverStats]:
        """Swap / extend the carried-forward anchor set using the affected pool."""
        stats = SolverStats()
        graph = maintainer.graph
        core = maintainer.core_numbers()
        anchors = [anchor for anchor in previous_anchors if graph.has_vertex(anchor)]

        region = self._affected_region(graph, affected)
        pool = self._candidate_pool(graph, k, core, region, exclude=set(anchors))
        if not pool:
            return anchors, stats

        # Which carried-forward anchors are worth re-examining: those the delta
        # touched, plus anchors the evolution absorbed into the k-core (their
        # budget is wasted where they stand).
        if self._swap_all_anchors:
            swap_targets = list(anchors)
        else:
            swap_targets = [
                anchor
                for anchor in anchors
                if anchor in region or core.get(anchor, 0) >= k
            ]

        for old_anchor in swap_targets:
            position = anchors.index(old_anchor)
            base_anchors = [anchor for anchor in anchors if anchor != old_anchor]
            index = AnchoredCoreIndex(graph, k, anchors=base_anchors, backend=self._backend)
            base_followers = index.followers()
            base_total = len(base_followers)

            def total_with(candidate: Vertex) -> int:
                gain = len(index.marginal_followers(candidate))
                already_follower = 1 if candidate in base_followers else 0
                return base_total + gain - already_follower

            best_vertex = old_anchor
            best_total = total_with(old_anchor)
            for candidate in pool:
                if candidate in anchors:
                    continue
                total = total_with(candidate)
                if total > best_total:
                    best_vertex, best_total = candidate, total
            if best_vertex != old_anchor:
                anchors[position] = best_vertex
            stats.candidates_evaluated += index.candidates_evaluated
            stats.visited_vertices += index.visited_vertices
            stats.iterations += 1

        # Fill phase: spend any unused budget on the restricted pool.
        if self._fill_budget and len(anchors) < budget:
            index = AnchoredCoreIndex(graph, k, anchors=anchors, backend=self._backend)
            while len(anchors) < budget:
                best_vertex: Optional[Vertex] = None
                best_gain = 0
                for candidate in pool:
                    if candidate in anchors:
                        continue
                    gain = len(index.marginal_followers(candidate))
                    if gain > best_gain:
                        best_vertex, best_gain = candidate, gain
                if best_vertex is None or best_gain == 0:
                    break
                anchors.append(best_vertex)
                index.add_anchor(best_vertex)
                stats.iterations += 1
            stats.candidates_evaluated += index.candidates_evaluated
            stats.visited_vertices += index.visited_vertices

        return anchors, stats
