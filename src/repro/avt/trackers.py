"""Per-snapshot trackers: run a static anchored k-core solver at every timestamp.

These trackers adapt the static algorithms (Greedy, OLAK, RCM, brute force) to
the AVT problem exactly the way the paper's baselines do: re-run the solver
from scratch on every snapshot.  They share the :class:`SnapshotTracker`
machinery; the incremental algorithm lives in :mod:`repro.avt.incremental`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.anchored.bruteforce import BruteForceAnchoredKCore
from repro.anchored.exact_small_k import ExactSmallK
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.olak import OLAKAnchoredKCore
from repro.anchored.rcm import RCMAnchoredKCore
from repro.avt.problem import AVTProblem, AVTResult, SnapshotResult
from repro.backends import BACKEND_AUTO, ExecutionBackend
from repro.graph.static import Graph

SolverFactory = Callable[[Graph, int, int], object]


class SnapshotTracker:
    """Track anchors by running an independent solver at every snapshot.

    Parameters
    ----------
    solver_factory:
        Callable ``(graph, k, budget) -> solver`` where the solver exposes
        ``select() -> AnchoredKCoreResult`` (all solvers in
        :mod:`repro.anchored` qualify).
    name:
        Label recorded in the results; defaults to the solver's own name.
    """

    def __init__(self, solver_factory: SolverFactory, name: Optional[str] = None) -> None:
        self._solver_factory = solver_factory
        self._name = name

    def track(self, problem: AVTProblem, max_snapshots: Optional[int] = None) -> AVTResult:
        """Solve the AVT problem snapshot by snapshot."""
        deltas = problem.evolving_graph.deltas
        name = self._name or "snapshot-tracker"
        result = AVTResult(
            algorithm=name, k=problem.k, budget=problem.budget, problem_name=problem.name
        )
        current = problem.evolving_graph.base.copy()
        limit = problem.num_snapshots if max_snapshots is None else min(max_snapshots, problem.num_snapshots)
        for timestamp in range(limit):
            if timestamp > 0:
                deltas[timestamp - 1].apply(current)
            solver = self._solver_factory(current, problem.k, problem.budget)
            selection = solver.select()
            if self._name is None and timestamp == 0:
                name = selection.algorithm
                result.algorithm = name
            delta = deltas[timestamp - 1] if timestamp > 0 else None
            result.append(
                SnapshotResult(
                    timestamp=timestamp,
                    result=selection,
                    num_vertices=current.num_vertices,
                    num_edges=current.num_edges,
                    edges_inserted=len(delta.inserted) if delta else 0,
                    edges_removed=len(delta.removed) if delta else 0,
                )
            )
        return result


class GreedyTracker(SnapshotTracker):
    """The paper's optimised Greedy applied independently at every snapshot."""

    def __init__(
        self,
        order_pruning: bool = True,
        stop_on_zero_gain: bool = True,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        super().__init__(
            lambda graph, k, budget: GreedyAnchoredKCore(
                graph,
                k,
                budget,
                order_pruning=order_pruning,
                stop_on_zero_gain=stop_on_zero_gain,
                backend=backend,
            ),
            name="Greedy",
        )


class OLAKTracker(SnapshotTracker):
    """OLAK re-run from scratch at every snapshot (baseline)."""

    def __init__(self, stop_on_zero_gain: bool = True, backend: Union[str, ExecutionBackend] = BACKEND_AUTO) -> None:
        super().__init__(
            lambda graph, k, budget: OLAKAnchoredKCore(
                graph, k, budget, stop_on_zero_gain=stop_on_zero_gain, backend=backend
            ),
            name="OLAK",
        )


class RCMTracker(SnapshotTracker):
    """RCM re-run from scratch at every snapshot (baseline)."""

    def __init__(
        self,
        shortlist_size: int = 20,
        stop_on_zero_gain: bool = True,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        super().__init__(
            lambda graph, k, budget: RCMAnchoredKCore(
                graph,
                k,
                budget,
                shortlist_size=shortlist_size,
                stop_on_zero_gain=stop_on_zero_gain,
                backend=backend,
            ),
            name="RCM",
        )


class BruteForceTracker(SnapshotTracker):
    """Exact brute-force selection at every snapshot (case-study use only)."""

    def __init__(self, max_combinations: int = 2_000_000) -> None:
        super().__init__(
            lambda graph, k, budget: BruteForceAnchoredKCore(
                graph, k, budget, max_combinations=max_combinations
            ),
            name="Brute-force",
        )


class ExactSmallKTracker(SnapshotTracker):
    """Exact polynomial tracker for k <= 2 (Theorem 1) applied at every snapshot.

    Useful as an optimality reference on the tractable side of the complexity
    boundary; for k >= 3 constructing it raises, matching the NP-hardness
    result.
    """

    def __init__(self) -> None:
        super().__init__(
            lambda graph, k, budget: ExactSmallK(graph, k, budget),
            name="Exact-small-k",
        )
