"""The Anchored Vertex Tracking (AVT) problem layer: trackers and results."""

from repro.avt.incremental import IncAVTTracker
from repro.avt.problem import AVTProblem, AVTResult, SnapshotResult
from repro.avt.trackers import (
    BruteForceTracker,
    ExactSmallKTracker,
    GreedyTracker,
    OLAKTracker,
    RCMTracker,
    SnapshotTracker,
)

__all__ = [
    "AVTProblem",
    "AVTResult",
    "SnapshotResult",
    "SnapshotTracker",
    "GreedyTracker",
    "OLAKTracker",
    "RCMTracker",
    "BruteForceTracker",
    "ExactSmallKTracker",
    "IncAVTTracker",
]
