"""Problem definition and result containers for Anchored Vertex Tracking.

The AVT problem (Section 2.2): given an evolving graph ``G = {G_t}``, a degree
constraint ``k`` and a budget ``l``, find for every snapshot an anchor set
``S_t`` with ``|S_t| <= l`` maximising the anchored k-core ``|C_k(S_t)|``.
A *tracker* (see :mod:`repro.avt.trackers` and :mod:`repro.avt.incremental`)
consumes an :class:`AVTProblem` and produces an :class:`AVTResult` holding one
:class:`SnapshotResult` per timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.errors import ParameterError
from repro.graph.dynamic import EvolvingGraph, SnapshotSequence
from repro.graph.static import Vertex


@dataclass(frozen=True)
class AVTProblem:
    """One instance of the Anchored Vertex Tracking problem.

    Attributes
    ----------
    evolving_graph:
        The evolving network, as a base snapshot plus per-step edge deltas.
    k:
        Degree constraint of the engagement (k-core) model.
    budget:
        Maximum anchor-set size ``l`` per snapshot.
    name:
        Optional label used in reports (typically the dataset name).
    """

    evolving_graph: EvolvingGraph
    k: int
    budget: int
    name: str = "avt"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ParameterError("k must be >= 1")
        if self.budget < 0:
            raise ParameterError("budget must be non-negative")

    @classmethod
    def from_snapshots(
        cls,
        snapshots: Union[SnapshotSequence, Sequence],
        k: int,
        budget: int,
        name: str = "avt",
    ) -> "AVTProblem":
        """Build a problem from a materialised snapshot sequence."""
        if not isinstance(snapshots, SnapshotSequence):
            snapshots = SnapshotSequence(list(snapshots))
        return cls(evolving_graph=snapshots.to_evolving_graph(), k=k, budget=budget, name=name)

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots ``T``."""
        return self.evolving_graph.num_snapshots

    def truncated(self, num_snapshots: int) -> "AVTProblem":
        """Return the same problem restricted to the first ``num_snapshots`` snapshots."""
        return AVTProblem(
            evolving_graph=self.evolving_graph.truncated(num_snapshots),
            k=self.k,
            budget=self.budget,
            name=self.name,
        )


@dataclass(frozen=True)
class SnapshotResult:
    """The anchor set selected at one snapshot, plus context about the snapshot."""

    timestamp: int
    result: AnchoredKCoreResult
    num_vertices: int
    num_edges: int
    edges_inserted: int = 0
    edges_removed: int = 0

    @property
    def anchors(self) -> Tuple[Vertex, ...]:
        """The anchors selected at this snapshot."""
        return self.result.anchors

    @property
    def num_followers(self) -> int:
        """Followers gained at this snapshot."""
        return self.result.num_followers


@dataclass
class AVTResult:
    """The full output of a tracker: one :class:`SnapshotResult` per timestamp."""

    algorithm: str
    k: int
    budget: int
    problem_name: str
    snapshots: List[SnapshotResult] = field(default_factory=list)

    def append(self, snapshot_result: SnapshotResult) -> None:
        """Add the result of the next snapshot."""
        self.snapshots.append(snapshot_result)

    def __iter__(self) -> Iterator[SnapshotResult]:
        return iter(self.snapshots)

    def __len__(self) -> int:
        return len(self.snapshots)

    # ------------------------------------------------------------------
    # Aggregates used by the experiment harness
    # ------------------------------------------------------------------
    @property
    def anchor_sets(self) -> List[Tuple[Vertex, ...]]:
        """The series of anchor sets ``S = {S_t}``."""
        return [snapshot.anchors for snapshot in self.snapshots]

    @property
    def followers_per_snapshot(self) -> List[int]:
        """Follower count at each snapshot (Figures 9-12)."""
        return [snapshot.num_followers for snapshot in self.snapshots]

    @property
    def total_followers(self) -> int:
        """Total followers across all snapshots."""
        return sum(self.followers_per_snapshot)

    @property
    def total_runtime_seconds(self) -> float:
        """Total solver time across all snapshots (Figures 3, 5, 7)."""
        return sum(snapshot.result.stats.runtime_seconds for snapshot in self.snapshots)

    @property
    def total_visited_vertices(self) -> int:
        """Total visited candidate vertices across snapshots (Figures 4, 6, 8)."""
        return sum(snapshot.result.stats.visited_vertices for snapshot in self.snapshots)

    @property
    def total_candidates_evaluated(self) -> int:
        """Total candidate anchors whose followers were computed."""
        return sum(snapshot.result.stats.candidates_evaluated for snapshot in self.snapshots)

    def aggregate_stats(self) -> SolverStats:
        """Return all per-snapshot stats merged into a single object."""
        merged = SolverStats()
        for snapshot in self.snapshots:
            merged.merge(snapshot.result.stats)
        return merged

    def summary(self) -> str:
        """Return a one-line summary for reports and examples."""
        return (
            f"{self.algorithm} on {self.problem_name} (k={self.k}, l={self.budget}, "
            f"T={len(self.snapshots)}): followers={self.total_followers}, "
            f"visited={self.total_visited_vertices}, "
            f"time={self.total_runtime_seconds:.3f}s"
        )
