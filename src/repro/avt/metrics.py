"""Cross-algorithm comparison metrics for AVT results.

These helpers turn a collection of :class:`~repro.avt.problem.AVTResult`
objects (one per algorithm, same problem) into the headline quantities the
paper reports: speed-ups, visited-vertex ratios, and follower-quality ratios.
They are used by the experiment harness, the CLI and ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.avt.problem import AVTResult
from repro.errors import ParameterError


def _by_algorithm(results: Iterable[AVTResult]) -> Dict[str, AVTResult]:
    """Index results by algorithm name, rejecting duplicates."""
    indexed: Dict[str, AVTResult] = {}
    for result in results:
        if result.algorithm in indexed:
            raise ParameterError(f"duplicate result for algorithm {result.algorithm!r}")
        indexed[result.algorithm] = result
    return indexed


def speedup(results: Iterable[AVTResult], baseline: str, target: str) -> float:
    """Return how many times faster ``target`` is than ``baseline`` (total runtime)."""
    indexed = _by_algorithm(results)
    if baseline not in indexed or target not in indexed:
        raise ParameterError(f"missing results for {baseline!r} or {target!r}")
    target_time = indexed[target].total_runtime_seconds
    if target_time <= 0:
        return float("inf")
    return indexed[baseline].total_runtime_seconds / target_time


def visited_ratio(results: Iterable[AVTResult], baseline: str, target: str) -> float:
    """Return the ratio of visited candidate vertices, baseline over target."""
    indexed = _by_algorithm(results)
    if baseline not in indexed or target not in indexed:
        raise ParameterError(f"missing results for {baseline!r} or {target!r}")
    target_visited = indexed[target].total_visited_vertices
    if target_visited <= 0:
        return float("inf")
    return indexed[baseline].total_visited_vertices / target_visited


def follower_quality(results: Iterable[AVTResult], reference: str) -> Dict[str, float]:
    """Return each algorithm's total followers as a fraction of ``reference``'s.

    A value of 1.0 means identical effectiveness; the paper's heuristics all
    sit close to 1.0 of each other, with brute force slightly above.
    """
    indexed = _by_algorithm(results)
    if reference not in indexed:
        raise ParameterError(f"missing results for reference {reference!r}")
    reference_total = indexed[reference].total_followers
    quality: Dict[str, float] = {}
    for name, result in indexed.items():
        if reference_total == 0:
            quality[name] = 1.0 if result.total_followers == 0 else float("inf")
        else:
            quality[name] = result.total_followers / reference_total
    return quality


def followers_series(results: Iterable[AVTResult]) -> Dict[str, List[int]]:
    """Return the per-snapshot follower series per algorithm (Figures 9 and 12)."""
    return {result.algorithm: result.followers_per_snapshot for result in results}


def anchor_stability(result: AVTResult) -> float:
    """Return the average Jaccard similarity of consecutive anchor sets.

    High values mean the tracker keeps its anchors stable across snapshots —
    the property that makes incremental tracking effective on smoothly
    evolving networks.
    """
    anchor_sets = [set(anchors) for anchors in result.anchor_sets]
    if len(anchor_sets) < 2:
        return 1.0
    similarities: List[float] = []
    for previous, current in zip(anchor_sets, anchor_sets[1:]):
        union = previous | current
        if not union:
            similarities.append(1.0)
        else:
            similarities.append(len(previous & current) / len(union))
    return sum(similarities) / len(similarities)


def summarise(results: Sequence[AVTResult]) -> List[Dict[str, object]]:
    """Return one summary row per algorithm (used by the CLI and reports)."""
    rows: List[Dict[str, object]] = []
    for result in results:
        rows.append(
            {
                "algorithm": result.algorithm,
                "k": result.k,
                "l": result.budget,
                "T": len(result.snapshots),
                "followers": result.total_followers,
                "visited": result.total_visited_vertices,
                "candidates": result.total_candidates_evaluated,
                "time_s": round(result.total_runtime_seconds, 4),
                "anchor_stability": round(anchor_stability(result), 3),
            }
        )
    return rows
