"""Graph partitioning for the sharded execution backend.

A partition splits the dense vertex-id space of an interned
:class:`~repro.graph.compact.CompactGraph` into ``num_shards`` disjoint owner
sets and builds one :class:`ShardState` per shard: a CSR over the shard's
owned vertices whose neighbour entries are *pre-encoded* so the hot cascade
loops never pay a hash lookup to classify an edge —

* an entry ``e >= 0`` is the **local index** of an owned neighbour;
* an entry ``e < 0`` encodes the **ghost index** ``-e - 1`` of a remote
  neighbour (a cut edge).

Ghosts are the shard's view of the vertices it can see but does not own.
Per ghost the state records the global id, the owning shard (so boundary
updates leave the shard already bucketed by destination), the global degree
(so core-bound refinement starts without an exchange) and the reverse
adjacency back into the owned vertices (so an incoming ghost update can mark
exactly the affected owned vertices dirty).

Each state also carries the explicit boundary tables the coordinator and the
tests read: ``boundary`` (owned vertices with at least one remote neighbour)
and ``cut_edges`` (per remote shard, the sorted ``(owned, remote)`` global-id
pairs — symmetric across shard pairs by construction).

Partitioners are pluggable through :data:`PARTITIONERS`:

``hash``
    ``shard_of(v) = id(v) % num_shards``.  The interner's dense ids make this
    assignment free and uniform in expectation; it is the default.
``degree_balanced``
    Greedy longest-processing-time assignment: vertices in decreasing degree
    order, each to the currently lightest shard (load = degree + 1).  The LPT
    invariant bounds the spread: ``max_load - min_load <= max_degree + 1``.
``community``
    Locality-aware: deterministic label propagation finds communities, each
    community is carved into connected BFS blocks no larger than the ideal
    shard size, and the blocks are LPT-packed into shards by vertex count.
    Keeping community neighbourhoods co-resident minimises cut edges — and
    with them the boundary traffic every coordinator exchange pays for —
    while the block cap keeps shard sizes balanced.

Partition quality is measured on every plan: :attr:`ShardPlan.cut_edge_count`
(each cut edge counted once), :attr:`ShardPlan.cut_edge_ratio` (cut over
total edges) and :attr:`ShardPlan.balance` (largest owned set over the ideal
even split).

Shard states hold only plain ints, lists and dicts, so they pickle cleanly
through a ``spawn`` process pool — the contract the process executor of
:mod:`repro.shard.coordinator` relies on.  Under the process executor the
static arrays normally travel via shared memory instead: :meth:`ShardState.to_shared`
packs them into one :mod:`multiprocessing.shared_memory` block and
:meth:`ShardState.from_shared` attaches zero-copy views (see
:mod:`repro.shard.shm`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.errors import ParameterError
from repro.graph.compact import CompactGraph


class ShardState:
    """One shard's picklable subgraph plus scratch space for cascade ops.

    The static fields below are built once by :func:`partition_compact_graph`
    and shipped to the shard's worker process; the cascade ops of
    :mod:`repro.shard.coordinator` attach mutable working state (effective
    degrees, liveness flags, core bounds, follower support) as extra
    attributes when they run.
    """

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        owned: List[int],
        indptr: List[int],
        encoded: List[int],
        ghost_gvid: List[int],
        ghost_owner: List[int],
        ghost_deg: List[int],
        ghost_rev: List[List[int]],
    ) -> None:
        self.shard_id = shard_id
        self.num_shards = num_shards
        #: Owned global vertex ids, ascending (global id == tie-break rank on
        #: ordered snapshots, so ascending owned order is tie-break order).
        self.owned = owned
        #: Global id -> local index into the CSR below.
        self.local_of = {gvid: local for local, gvid in enumerate(owned)}
        self.indptr = indptr
        #: Encoded neighbour entries: ``>= 0`` local index, ``< 0`` ghost
        #: index encoded as ``-(ghost + 1)``.
        self.encoded = encoded
        self.degrees = [indptr[i + 1] - indptr[i] for i in range(len(owned))]
        #: Ghost tables: global id, owning shard, global degree and the
        #: reverse adjacency (local indices of owned neighbours) per ghost.
        self.ghost_gvid = ghost_gvid
        self.ghost_owner = ghost_owner
        self.ghost_deg = ghost_deg
        self.ghost_rev = ghost_rev
        self.ghost_of = {gvid: ghost for ghost, gvid in enumerate(ghost_gvid)}

    @property
    def num_owned(self) -> int:
        return len(self.owned)

    @property
    def num_ghosts(self) -> int:
        return len(self.ghost_gvid)

    @property
    def boundary(self) -> List[int]:
        """Owned global ids with at least one remote neighbour (ascending).

        Derived from the ghost reverse adjacency on demand — the hot cascade
        loops never need it, only introspection and the invariant tests do.
        """
        locals_with_ghosts = set()
        for local_neighbours in self.ghost_rev:
            locals_with_ghosts.update(local_neighbours)
        return [self.owned[local] for local in sorted(locals_with_ghosts)]

    @property
    def cut_edges(self) -> Dict[int, List[Tuple[int, int]]]:
        """Per remote shard, the sorted ``(owned, remote)`` cut-edge pairs.

        Symmetric across shard pairs by construction (every cut edge appears
        in both endpoint shards, mirrored).  Derived on demand, like
        :attr:`boundary`.
        """
        table: Dict[int, List[Tuple[int, int]]] = {}
        for ghost, local_neighbours in enumerate(self.ghost_rev):
            owner = self.ghost_owner[ghost]
            remote = self.ghost_gvid[ghost]
            pairs = table.setdefault(owner, [])
            for local in local_neighbours:
                pairs.append((self.owned[local], remote))
        for pairs in table.values():
            pairs.sort()
        return table

    @property
    def num_cut_edges(self) -> int:
        """Cut edges incident to this shard (each counted once per shard)."""
        return sum(len(local_neighbours) for local_neighbours in self.ghost_rev)

    def to_shared(self, owner_key: str) -> "object":
        """Pack the static arrays into one shared-memory block.

        Returns a tiny picklable :class:`~repro.shard.shm.SharedShardHandle`;
        the block is registered under ``owner_key`` and unlinked via
        :func:`repro.shard.shm.unlink_blocks`.
        """
        from repro.shard import shm

        return shm.pack_state(self, owner_key)

    @classmethod
    def from_shared(cls, handle: "object") -> Tuple["ShardState", "object"]:
        """Attach a state over a packed block: ``(state, attachment)``.

        The caller must keep the attachment alive while the state is in use
        and ``close()`` it afterwards; the arrays are zero-copy views of the
        shared buffer.
        """
        from repro.shard import shm

        return shm.attach_state(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardState(shard={self.shard_id}/{self.num_shards}, "
            f"n={self.num_owned}, ghosts={self.num_ghosts}, "
            f"boundary={len(self.boundary)}, cut={self.num_cut_edges})"
        )


class ShardPlan:
    """A full partition: the owner map plus one :class:`ShardState` per shard."""

    def __init__(
        self,
        num_shards: int,
        partitioner: str,
        shard_of: List[int],
        shards: List[ShardState],
        num_vertices: int,
        num_edges: int,
        ordered: bool,
    ) -> None:
        self.num_shards = num_shards
        self.partitioner = partitioner
        self.shard_of = shard_of
        self.shards = shards
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.ordered = ordered

    @property
    def cut_edge_count(self) -> int:
        """Cut edges in the plan, each counted once.

        Every cut edge appears in both endpoint shards' ghost tables, so the
        per-shard incident counts sum to exactly twice the true count.
        """
        return sum(state.num_cut_edges for state in self.shards) // 2

    @property
    def cut_edge_ratio(self) -> float:
        """Fraction of all edges that cross shards (0.0 on an empty graph)."""
        if self.num_edges == 0:
            return 0.0
        return self.cut_edge_count / self.num_edges

    @property
    def balance(self) -> float:
        """Largest owned set over the ideal even split (1.0 = perfect)."""
        if self.num_vertices == 0 or self.num_shards == 0:
            return 1.0
        ideal = self.num_vertices / self.num_shards
        return max(state.num_owned for state in self.shards) / ideal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardPlan(shards={self.num_shards}, partitioner={self.partitioner!r}, "
            f"n={self.num_vertices}, m={self.num_edges}, "
            f"cut={self.cut_edge_count})"
        )


class HashPartitioner:
    """``id % num_shards`` — the interner's dense ids are a free shard key."""

    name = "hash"

    def assign(self, cgraph: CompactGraph, num_shards: int) -> List[int]:
        return [vid % num_shards for vid in range(cgraph.num_vertices)]


class DegreeBalancedPartitioner:
    """Greedy LPT assignment balancing total degree load across shards.

    Vertices are placed in decreasing degree order (ties by id, so the
    assignment is deterministic) onto the currently lightest shard (ties by
    shard id).  Per-vertex load is ``degree + 1`` so isolated vertices are
    spread too.  The classic LPT argument bounds the final spread by the
    heaviest single vertex: ``max_load - min_load <= max(degree) + 1``.
    """

    name = "degree_balanced"

    def assign(self, cgraph: CompactGraph, num_shards: int) -> List[int]:
        degrees = cgraph.degrees
        assignment = [0] * cgraph.num_vertices
        loads = [0] * num_shards
        for vid in sorted(range(cgraph.num_vertices), key=lambda v: (-degrees[v], v)):
            lightest = min(range(num_shards), key=lambda s: (loads[s], s))
            assignment[vid] = lightest
            loads[lightest] += degrees[vid] + 1
        return assignment


class CommunityPartitioner:
    """Locality-aware assignment: label propagation -> BFS blocks -> LPT.

    Three deterministic stages:

    1. **Label propagation** (asynchronous, ascending-id sweeps, ties to the
       smallest label, bounded at :attr:`max_sweeps`): each vertex adopts the
       most frequent label among its neighbours until a sweep changes
       nothing.  On graphs with community structure the surviving labels
       track the communities; on structureless graphs they degrade to
       something near-arbitrary but still deterministic.
    2. **BFS blocks**: each community is carved into connected blocks of at
       most ``ceil(n / num_shards)`` vertices by BFS from its smallest
       unvisited member.  The cap makes every block packable without
       overflowing a shard; BFS keeps each block internally connected so the
       carve adds few new cut edges.
    3. **LPT packing**: blocks in decreasing size (ties by smallest member
       id) onto the currently lightest shard by vertex count — community
       neighbourhoods stay co-resident, shard sizes stay balanced.
    """

    name = "community"

    #: Label-propagation sweep bound; LPA converges in a handful of sweeps
    #: on community-structured graphs and oscillations past this point no
    #: longer improve locality.
    max_sweeps = 10

    def assign(self, cgraph: CompactGraph, num_shards: int) -> List[int]:
        n = cgraph.num_vertices
        if n == 0:
            return []
        indptr = cgraph.indptr
        indices = cgraph.indices
        labels = list(range(n))
        for _ in range(self.max_sweeps):
            changed = False
            for vid in range(n):
                start, end = indptr[vid], indptr[vid + 1]
                if start == end:
                    continue
                counts: Dict[int, int] = {}
                for position in range(start, end):
                    label = labels[indices[position]]
                    counts[label] = counts.get(label, 0) + 1
                best = min(counts, key=lambda lab: (-counts[lab], lab))
                if best != labels[vid]:
                    labels[vid] = best
                    changed = True
            if not changed:
                break

        members: Dict[int, List[int]] = {}
        for vid in range(n):
            members.setdefault(labels[vid], []).append(vid)
        cap = -(-n // num_shards)  # ceil: the ideal shard size

        blocks: List[List[int]] = []
        for label in sorted(members, key=lambda lab: members[lab][0]):
            community = members[label]
            in_community = set(community)
            visited: set = set()
            for seed in community:
                if seed in visited:
                    continue
                block: List[int] = []
                queue = [seed]
                visited.add(seed)
                head = 0
                while head < len(queue) and len(block) < cap:
                    vid = queue[head]
                    head += 1
                    block.append(vid)
                    for position in range(indptr[vid], indptr[vid + 1]):
                        neighbour = indices[position]
                        if neighbour in in_community and neighbour not in visited:
                            visited.add(neighbour)
                            queue.append(neighbour)
                # Frontier vertices left in the queue at the cap are released
                # to seed the community's next block — they are adjacent to
                # this one, so the carve stays local.
                for vid in queue[head:]:
                    visited.discard(vid)
                blocks.append(block)

        assignment = [0] * n
        loads = [0] * num_shards
        order = sorted(range(len(blocks)), key=lambda b: (-len(blocks[b]), blocks[b][0]))
        for index in order:
            block = blocks[index]
            lightest = min(range(num_shards), key=lambda s: (loads[s], s))
            for vid in block:
                assignment[vid] = lightest
            loads[lightest] += len(block)
        return assignment


#: Registered partitioner policies, by name (extend to plug in your own).
PARTITIONERS = {
    HashPartitioner.name: HashPartitioner,
    DegreeBalancedPartitioner.name: DegreeBalancedPartitioner,
    CommunityPartitioner.name: CommunityPartitioner,
}


def get_partitioner(partitioner: Union[str, object]) -> object:
    """Resolve a partitioner policy: a name from :data:`PARTITIONERS` or an
    instance with ``name`` and ``assign(cgraph, num_shards)``."""
    if isinstance(partitioner, str):
        try:
            return PARTITIONERS[partitioner]()
        except KeyError:
            raise ParameterError(
                f"unknown partitioner {partitioner!r}; "
                f"expected one of {sorted(PARTITIONERS)}"
            ) from None
    if not hasattr(partitioner, "assign") or not hasattr(partitioner, "name"):
        raise ParameterError(
            "a partitioner must expose .name and .assign(cgraph, num_shards)"
        )
    return partitioner


def partition_compact_graph(
    cgraph: CompactGraph,
    num_shards: int,
    partitioner: Union[str, object] = HashPartitioner.name,
) -> ShardPlan:
    """Partition a CSR snapshot into ``num_shards`` :class:`ShardState`\\ s.

    Every vertex lands in exactly one shard; every edge appears in the CSR of
    both endpoint owners (as a local entry when the owner also owns the
    neighbour, as a ghost entry otherwise), so per-shard effective degrees
    equal true degrees and cut-edge tables come out symmetric.
    """
    if num_shards < 1:
        raise ParameterError("num_shards must be >= 1")
    policy = get_partitioner(partitioner)
    shard_of = policy.assign(cgraph, num_shards)
    if len(shard_of) != cgraph.num_vertices:
        raise ParameterError(
            f"partitioner {policy.name!r} assigned {len(shard_of)} vertices, "
            f"expected {cgraph.num_vertices}"
        )

    owned_lists: List[List[int]] = [[] for _ in range(num_shards)]
    for vid in range(cgraph.num_vertices):
        shard = shard_of[vid]
        if not 0 <= shard < num_shards:
            raise ParameterError(
                f"partitioner {policy.name!r} assigned vertex {vid} to "
                f"shard {shard} (valid: 0..{num_shards - 1})"
            )
        owned_lists[shard].append(vid)

    local_index: List[int] = [0] * cgraph.num_vertices
    for owned in owned_lists:
        for local, gvid in enumerate(owned):
            local_index[gvid] = local

    indptr_g = cgraph.indptr
    indices_g = cgraph.indices
    degrees_g = cgraph.degrees
    shards: List[ShardState] = []
    for shard in range(num_shards):
        owned = owned_lists[shard]
        indptr: List[int] = [0]
        encoded: List[int] = []
        ghost_gvid: List[int] = []
        ghost_owner: List[int] = []
        ghost_deg: List[int] = []
        ghost_rev: List[List[int]] = []
        ghost_of: Dict[int, int] = {}
        append = encoded.append
        for local, gvid in enumerate(owned):
            for position in range(indptr_g[gvid], indptr_g[gvid + 1]):
                neighbour = indices_g[position]
                owner = shard_of[neighbour]
                if owner == shard:
                    append(local_index[neighbour])
                else:
                    ghost = ghost_of.get(neighbour)
                    if ghost is None:
                        ghost = len(ghost_gvid)
                        ghost_of[neighbour] = ghost
                        ghost_gvid.append(neighbour)
                        ghost_owner.append(owner)
                        ghost_deg.append(degrees_g[neighbour])
                        ghost_rev.append([])
                    ghost_rev[ghost].append(local)
                    append(-ghost - 1)
            indptr.append(len(encoded))
        shards.append(
            ShardState(
                shard_id=shard,
                num_shards=num_shards,
                owned=owned,
                indptr=indptr,
                encoded=encoded,
                ghost_gvid=ghost_gvid,
                ghost_owner=ghost_owner,
                ghost_deg=ghost_deg,
                ghost_rev=ghost_rev,
            )
        )

    return ShardPlan(
        num_shards=num_shards,
        partitioner=policy.name,
        shard_of=shard_of,
        shards=shards,
        num_vertices=cgraph.num_vertices,
        num_edges=cgraph.num_edges,
        ordered=cgraph.ordered,
    )
