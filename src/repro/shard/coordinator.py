"""The shard coordinator: cascade kernels as local work + boundary exchange.

:class:`ShardCoordinator` drives every sharded kernel as local work on the
:class:`~repro.shard.partition.ShardState`\\ s — refining core bounds,
cascading removals or follower support, scanning candidates — interleaved
with a boundary exchange that routes the updates crossing cut edges, already
bucketed by owner shard (the ghost tables record who owns every remote
neighbour).

Exchange scheduling comes in two modes (``exchange=``):

``async`` (default)
    Futures-based: a shard's op is (re)submitted the moment its input bucket
    is non-empty and no op of its own is still in flight; every completed
    future immediately routes its boundary output into the destination
    buckets, waking the affected shards.  A straggler therefore only delays
    the shards that genuinely depend on its updates — unrelated shards keep
    draining their own buckets.  The fixpoint is an *outstanding-work
    counter* reaching zero: no in-flight futures and every bucket empty.
    Montresor-style bound refinement is monotone with a unique fixpoint and
    the deletion cascades are confluent, so the interleaving freedom never
    changes a result.

``lockstep``
    The PR-4 scheme, kept for comparison benchmarks: global rounds with a
    barrier after each — every shard waits for the slowest straggler.  A
    kernel finishes when a round performs no work and produces no boundary
    traffic.

Either way the exchange count is governed by the *cross-shard propagation
depth* of the computation, not its sequential length — the property that
lets a process-pool executor win.

Exactness
---------
All results are bit-identical to the dict/compact/numpy backends:

* **Core numbers by bound refinement.**  Every shard starts each owned
  vertex at its degree (ghosts at their global degree, anchors at infinity)
  and repeatedly lowers ``est(v)`` to the h-index of its neighbours'
  estimates — the largest ``k`` such that at least ``k`` neighbours have
  ``est >= k`` — running the monotone relaxation to a *local* fixpoint
  before exchanging the changed bounds of boundary vertices.  Estimates
  never drop below the true (anchored) core numbers, and any global fixpoint
  is self-consistent — ``{v : est(v) >= k}`` is an anchored k-core for every
  ``k`` — so the unique fixpoint *is* the anchored core numbers, regardless
  of shard count or exchange interleaving (cf. Montresor et al.,
  "Distributed k-core decomposition").
* **Deletion cascades are confluent** — the set of vertices surviving a
  ``remove everything below the threshold`` cascade does not depend on the
  interleaving of removals, so per-shard transitive cascades with batched
  boundary decrements reach exactly the sequential fixpoint.  This covers
  the k-core kernel and the follower support cascades (whose visited
  counts, region size plus removals, are order-independent too).
* **Removal order, shell by shell.**  With core numbers fixed, the
  reference heap peel's order is reproduced by the same packed-heap
  within-shell cascade the compact and numpy backends use; shells are
  mutually independent, so they are farmed out in parallel.

Shard-local result caching
--------------------------
Successive refreshes of an anchored core index differ by exactly one anchor,
so most shards see *identical inputs* from one refresh to the next.  Three
reuse layers exploit that without ever changing a result (all are keyed on
the exact inputs of the computation they skip): the round-1 local peel is
cached per shard keyed by its local anchor list (ghost support is pinned at
infinity in round 1 either way); the per-shard shell fragments are cached
keyed by the converged ``est``/``ghost_est`` vectors (content equality, not
hashes); and refinement/cascade rounds skip shards with no incoming boundary
traffic outright.  Hit counters are surfaced via :meth:`ShardCoordinator.stats`.

Executors
---------
``executor="serial"`` runs every op as a direct function call against the
coordinator's own shard states — no processes, no pickling; this is the
default and what small graphs and the test-suite use.  ``executor="process"``
runs each shard in a **dedicated single-worker process** created from the
``spawn`` start method (one :class:`~concurrent.futures.ProcessPoolExecutor`
of size 1 per worker slot).  Pinning a shard to one process keeps its mutable
state consistent across rounds; the pools themselves are process-wide and
reused across coordinators (states are loaded under a unique key at
coordinator construction and dropped again when the coordinator is closed or
garbage-collected), so the spawn cost is paid once per interpreter.

Shared-memory shard states
--------------------------
Under the process executor the static CSR arrays of every shard state —
``indptr``/``encoded``, the ghost tables, ``owned``/``degrees`` — are packed
into one :mod:`multiprocessing.shared_memory` block per shard
(:mod:`repro.shard.shm`) and workers *attach* instead of unpickling: the
load ships a tiny :class:`~repro.shard.shm.SharedShardHandle` and each
worker keeps a lifetime attachment per loaded shard, with zero-copy
``memoryview`` slices standing in for the list arrays.  The coordinator owns
the blocks and unlinks them on :meth:`ShardCoordinator.close` (also via a
``weakref.finalize`` and an ``atexit`` hook, so neither a dropped reference
nor a crashed worker can leak ``/dev/shm`` segments).  Disable with
``shared_memory=False`` (or ``REPRO_SHARD_SHM=0`` through the backend) to
fall back to pickled state loads.

Supervised execution
--------------------
Every public kernel runs under a :class:`~repro.resilience.RetryPolicy`
(:meth:`ShardCoordinator._supervised`): a retryable failure — a dead worker
pool, a missed per-op deadline (the hung worker is killed so the stall
becomes a broken pool) or an injected :class:`~repro.errors.FaultError` —
triggers bounded retries with deterministic-jitter backoff.  Recovery
respawns broken slots and reloads exactly the shards whose worker died (the
shm blocks outlive the worker), replaying the cached ``set_core`` broadcast;
each retry restarts the kernel from its reset op, because shard ops mutate
scratch across rounds and are not individually replayable — the kernels are
monotone/confluent, so the restart stays bit-identical.  The async exchange
goes further and *resumes in place* where that is provably safe: consumed
buckets are captured per in-flight op and restored on failure, and the bound
refinement re-ships current boundary estimates to reborn shards (idempotent
under min-combination).  When the retry budget is spent the coordinator
degrades gracefully to the serial executor (``degrade_to_serial=False``
disables this, surfacing :class:`~repro.errors.ShardExecutionError` instead
— the engine's recovery probe relies on that).  Fault-injection sites live
in the op dispatch path (:mod:`repro.resilience.faults`); only worker
processes may honour ``crash`` faults, so chaos never kills the coordinator.
"""

from __future__ import annotations

import atexit
import heapq
import logging
import math
import threading
import time
import uuid
import weakref
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    FaultError,
    ParameterError,
    ShardExecutionError,
    ShardTimeoutError,
)
from repro.obs import flight, tracer
from repro.obs.metrics import MetricsRegistry
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy, default_retry_policy
from repro.shard import shm
from repro.shard.partition import ShardPlan, ShardState

logger = logging.getLogger("repro.shard")

#: Failure classes the supervision layer recovers from: a dead worker pool,
#: a missed per-op deadline (the hung worker is killed, funnelling into the
#: same broken-pool path) and injected kernel exceptions.  Anything else is a
#: programming error and propagates untouched.
_RETRYABLE_FAILURES = (BrokenProcessPool, ShardTimeoutError, FaultError)

#: Valid ``executor=`` values for :class:`ShardCoordinator`.
EXECUTOR_SERIAL = "serial"
EXECUTOR_PROCESS = "process"
EXECUTORS = (EXECUTOR_SERIAL, EXECUTOR_PROCESS)

#: Valid ``exchange=`` values for :class:`ShardCoordinator`.
EXCHANGE_ASYNC = "async"
EXCHANGE_LOCKSTEP = "lockstep"
EXCHANGES = (EXCHANGE_ASYNC, EXCHANGE_LOCKSTEP)

#: Boundary updates bucketed by destination shard.
Buckets = Dict[int, Dict[int, int]]


# ---------------------------------------------------------------------------
# Per-shard ops (run shard-side: in-process for the serial executor, inside
# the shard's dedicated worker for the process executor).  Every op takes the
# shard state first and only plain picklable payloads after it.
# ---------------------------------------------------------------------------
def _op_hindex_reset(state: ShardState, anchor_gvids: List[int]) -> bool:
    """Arm the core-bound refinement; report whether the round-1 peel caches.

    Ghost estimates start at infinity — remote neighbours are assumed to
    support forever until their owner ships a tighter bound — and the
    last-shipped table starts at infinity too, so round 1 ships every
    boundary estimate that the first local peel lowers.

    Shard-local result caching: the round-1 local peel (and the support
    counters it establishes) depends *only* on the shard's local anchor set —
    ghost support is pinned at infinity either way — so its output is cached
    on the state, keyed by that anchor list, and reused verbatim when the
    next refresh leaves this shard's anchors unchanged (the common case: the
    greedy commits one anchor per refresh, owned by one shard).  The return
    value (``True`` on a cache hit) feeds the coordinator's cache counters.
    """
    n = state.num_owned
    state.anchor = bytearray(n)
    est: List[float] = list(state.degrees)
    local_anchors: List[int] = []
    for gvid in anchor_gvids:
        li = state.local_of.get(gvid)
        if li is not None:
            state.anchor[li] = 1
            est[li] = math.inf
            local_anchors.append(gvid)
    state.est = est
    state.ghost_est = [math.inf] * state.num_ghosts
    state.sent_est = [math.inf] * n
    #: Count of neighbours with est >= est[li]; -1 = not yet established
    #: (round 1 fills it in after the local peel).
    state.support_ct = [-1] * n
    peel_key = tuple(local_anchors)
    cache = getattr(state, "peel_cache", None)
    state.peel_key = peel_key
    state.use_peel_cache = cache is not None and cache[0] == peel_key
    if not hasattr(state, "boundary_locals"):
        # Static per partition, so computed once and reused across resets:
        # the owned local indices with >= 1 ghost neighbour, and the distinct
        # shards subscribed to each owned vertex's estimate.
        with_ghosts: Set[int] = set()
        for local_neighbours in state.ghost_rev:
            with_ghosts.update(local_neighbours)
        state.boundary_locals = sorted(with_ghosts)
        subscribers: Dict[int, Set[int]] = {li: set() for li in state.boundary_locals}
        for ghost, local_neighbours in enumerate(state.ghost_rev):
            owner = state.ghost_owner[ghost]
            for li in local_neighbours:
                subscribers[li].add(owner)
        state.subs_of = {
            li: tuple(sorted(targets)) for li, targets in subscribers.items()
        }
    return state.use_peel_cache


def _op_hindex_round(state: ShardState, updates: Dict[int, int], first: bool) -> Buckets:
    """One refinement round: apply ghost updates, relax locally, ship changes.

    Round 1 runs a packed-heap anchored peel of the local subgraph with
    ghost (and anchor) support pinned on — the exact core numbers of the
    ghost-augmented subgraph, a tight upper bound on the true core numbers
    and exact outright when the shard is alone.  Later rounds lower affected
    estimates to the capped h-index of their neighbours' estimates (largest
    ``k <= est(v)`` with at least ``k`` neighbours at ``est >= k``).

    A drop from ``old`` to ``new`` dirties a neighbour ``w`` only when it
    *crosses* ``est(w)`` (``old >= est(w) > new``): ``est(w)`` was consistent
    — at least ``est(w)`` neighbours at or above it — and a non-crossing
    drop leaves that count untouched.  Dirty vertices relax in ascending
    estimate order (packed heap), so a high vertex sees all lower drops in
    one recomputation.  Both operators keep every estimate at or above the
    true core number and the fixpoint is self-consistent, hence exactly the
    anchored core numbers (cf. Montresor et al., distributed k-core).

    Returns the boundary estimates that changed since last shipped, bucketed
    by the shard holding the ghost copy.
    """
    est = state.est
    ghost_est = state.ghost_est
    anchor = state.anchor
    indptr = state.indptr
    encoded = state.encoded
    support_ct = state.support_ct
    n = state.num_owned

    changed: Set[int] = set()
    in_queue = bytearray(n)
    queue: List[int] = []
    if first:
        if state.use_peel_cache:
            # Same local anchors as the cached run and ghost support pinned
            # at infinity either way: restore the cached peel verbatim
            # (copies — later rounds mutate both arrays in place).
            _, cached_est, cached_support = state.peel_cache
            est = state.est = list(cached_est)
            support_ct = state.support_ct = list(cached_support)
        else:
            degrees = state.degrees
            eff = list(degrees)
            removed = bytearray(n)
            heap = [degrees[li] * n + li for li in range(n) if not anchor[li]]
            heapq.heapify(heap)
            heappush = heapq.heappush
            heappop = heapq.heappop
            current = 0
            while heap:
                packed = heappop(heap)
                degree, li = divmod(packed, n)
                if removed[li] or degree != eff[li]:
                    continue
                if degree > current:
                    current = degree
                est[li] = current
                removed[li] = 1
                for position in range(indptr[li], indptr[li + 1]):
                    entry = encoded[position]
                    if entry >= 0 and not removed[entry] and not anchor[entry]:
                        slack = eff[entry] - 1
                        eff[entry] = slack
                        heappush(heap, slack * n + entry)
            # Establish the support counters: how many neighbours currently
            # sit at or above each vertex's estimate.  Kept incrementally up
            # to date from here on, so later rounds recompute a vertex only
            # when its count truly dips below its estimate.
            for li in range(n):
                if anchor[li]:
                    continue
                level = est[li]
                count = 0
                for position in range(indptr[li], indptr[li + 1]):
                    entry = encoded[position]
                    value = est[entry] if entry >= 0 else ghost_est[-entry - 1]
                    if value >= level:
                        count += 1
                support_ct[li] = count
            state.peel_cache = (state.peel_key, list(est), list(support_ct))
        # Ghost holders assume remote support never goes away (est infinity)
        # until told otherwise, so every boundary estimate ships in round 1;
        # the peel itself is consistent with that same assumption, so
        # nothing local needs re-examination yet.
        changed.update(li for li in state.boundary_locals if not anchor[li])
    else:
        ghost_of = state.ghost_of
        ghost_rev = state.ghost_rev
        for gvid, value in updates.items():
            ghost = ghost_of[gvid]
            old = ghost_est[ghost]
            ghost_est[ghost] = value
            for li in ghost_rev[ghost]:
                # Only a drop *crossing* est[li] changes its support count.
                if not anchor[li] and old >= est[li] > value:
                    support_ct[li] -= 1
                    if support_ct[li] < est[li] and not in_queue[li]:
                        queue.append(li)
                        in_queue[li] = 1

    # Relax starved vertices in ascending-estimate order (a packed heap):
    # low vertices settle first, so a high-degree vertex sees all of its
    # neighbours' drops in one recomputation instead of one per trigger.
    heap = [est[li] * n + li for li in queue]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop
    while heap:
        li = heappop(heap) % n
        if not in_queue[li]:
            continue
        in_queue[li] = 0
        cap = est[li]
        if cap <= 0 or support_ct[li] >= cap:
            continue
        counts = [0] * (cap + 1)
        for position in range(indptr[li], indptr[li + 1]):
            entry = encoded[position]
            value = est[entry] if entry >= 0 else ghost_est[-entry - 1]
            if value >= cap:
                counts[cap] += 1
            elif value > 0:
                counts[value] += 1
        total = 0
        new = 0
        for level in range(cap, 0, -1):
            total += counts[level]
            if total >= level:
                new = level
                break
        # support_ct < cap guarantees the capped h-index fell below the cap.
        est[li] = new
        support_ct[li] = total
        changed.add(li)
        for position in range(indptr[li], indptr[li + 1]):
            entry = encoded[position]
            if entry >= 0 and not anchor[entry] and cap >= est[entry] > new:
                support_ct[entry] -= 1
                if support_ct[entry] < est[entry] and not in_queue[entry]:
                    heappush(heap, est[entry] * n + entry)
                    in_queue[entry] = 1

    out: Buckets = {}
    owned = state.owned
    sent_est = state.sent_est
    subs_of = state.subs_of
    for li in changed:
        targets = subs_of.get(li)
        if targets is None:
            continue  # interior vertex: no shard subscribes to it
        value = est[li]
        if value == sent_est[li]:
            continue
        sent_est[li] = value
        gvid = owned[li]
        for target in targets:
            bucket = out.get(target)
            if bucket is None:
                bucket = out[target] = {}
            bucket[gvid] = value
    return out


def _op_hindex_collect(state: ShardState) -> List[float]:
    """Converged estimates (== core numbers) aligned with ``state.owned``."""
    return state.est


def _op_hindex_reship(state: ShardState, target: int) -> Buckets:
    """Re-emit every current boundary estimate subscribed by shard ``target``.

    Crash recovery for the bound refinement: a reborn shard restarts its
    ghost table at infinity, but the live senders' ``sent_est`` still says
    those estimates were already shipped — without a re-ship the crashed
    shard would converge against phantom infinite support.  Estimates are
    absolute and monotonically non-increasing with ``min`` combination, so
    re-shipping the *current* value is idempotent and subsumes every update
    the crash lost.
    """
    out: Buckets = {}
    bucket: Dict[int, int] = {}
    est = state.est
    anchor = state.anchor
    owned = state.owned
    for li in state.boundary_locals:
        if anchor[li]:
            continue
        targets = state.subs_of.get(li)
        if targets and target in targets:
            bucket[owned[li]] = est[li]
    if bucket:
        out[target] = bucket
    return out


def _op_peel_reset(state: ShardState, anchor_gvids: List[int]) -> None:
    """Arm the deletion-cascade scratch state (k-core kernel)."""
    n = state.num_owned
    state.eff = list(state.degrees)
    state.alive = bytearray([1]) * n
    state.anchor = bytearray(n)
    local_of = state.local_of
    for gvid in anchor_gvids:
        li = local_of.get(gvid)
        if li is not None:
            state.anchor[li] = 1
    state.ghost_dec = [0] * state.num_ghosts
    return None


def _op_peel_cascade(
    state: ShardState, level: int, decrements: Dict[int, int], rescan: bool
) -> Tuple[int, Buckets]:
    """One local cascade round: apply boundary decrements, then transitively
    remove every owned alive non-anchor vertex with effective degree at or
    below ``level``.  Returns ``(removed_count, boundary_decrements)``."""
    eff = state.eff
    alive = state.alive
    anchor = state.anchor
    indptr = state.indptr
    encoded = state.encoded
    local_of = state.local_of
    ghost_dec = state.ghost_dec

    queue: List[int] = []
    if rescan:
        queue.extend(
            li
            for li in range(state.num_owned)
            if alive[li] and not anchor[li] and eff[li] <= level
        )
    for gvid, count in decrements.items():
        li = local_of[gvid]
        if not alive[li] or anchor[li]:
            continue
        slack = eff[li] - count
        eff[li] = slack
        if slack <= level:
            queue.append(li)

    removed = 0
    touched_ghosts: List[int] = []
    while queue:
        li = queue.pop()
        if not alive[li] or eff[li] > level:
            continue
        alive[li] = 0
        removed += 1
        for position in range(indptr[li], indptr[li + 1]):
            entry = encoded[position]
            if entry >= 0:
                if alive[entry] and not anchor[entry]:
                    slack = eff[entry] - 1
                    eff[entry] = slack
                    if slack <= level:
                        queue.append(entry)
            else:
                ghost = -entry - 1
                if ghost_dec[ghost] == 0:
                    touched_ghosts.append(ghost)
                ghost_dec[ghost] += 1

    out: Buckets = {}
    ghost_owner = state.ghost_owner
    ghost_gvid = state.ghost_gvid
    for ghost in touched_ghosts:
        count = ghost_dec[ghost]
        ghost_dec[ghost] = 0
        target = ghost_owner[ghost]
        bucket = out.get(target)
        if bucket is None:
            bucket = out[target] = {}
        bucket[ghost_gvid[ghost]] = count
    return removed, out


def _op_alive_collect(state: ShardState) -> List[int]:
    """Global ids of owned vertices that survived the cascade (anchors too)."""
    alive = state.alive
    return [gvid for li, gvid in enumerate(state.owned) if alive[li]]


def _op_set_core(
    state: ShardState, core_g: List[float], rank_g: Optional[List[int]]
) -> None:
    """Install the global core (and optionally rank) arrays on the shard."""
    state.core_g = core_g
    state.rank_g = rank_g
    return None


def _decode(state: ShardState, entry: int) -> int:
    """Global id of an encoded neighbour entry."""
    return state.owned[entry] if entry >= 0 else state.ghost_gvid[-entry - 1]


def _op_shell_fragments(
    state: ShardState,
) -> Tuple[Dict[int, Tuple[List[int], List[int], List[int], List[int]]], bool]:
    """This shard's per-shell fragment of the order-reconstruction input.

    For every finite shell ``c``: the owned members (ascending global id),
    each member's starting effective degree (its count of neighbours with
    core >= c — anchors are infinity and therefore count), and the member's
    same-shell neighbour ids flattened CSR-style.  Reads the converged
    estimates, so no broadcast is needed between the phases.

    Shard-local result caching: the fragments are a pure function of the
    converged ``est`` / ``ghost_est`` vectors (plus the static structure), so
    the previous output is reused — ``(fragments, True)`` — whenever both
    vectors are unchanged since it was built.  The equality check is an O(n)
    tuple compare (C speed), versus the O(n + m) Python edge scan it skips;
    content equality, not hashing, so a collision can never smuggle in stale
    fragments.
    """
    est_key = tuple(state.est)
    ghost_key = tuple(state.ghost_est)
    cache = getattr(state, "frag_cache", None)
    if cache is not None and cache[0] == est_key and cache[1] == ghost_key:
        return cache[2], True
    est = state.est
    ghost_est = state.ghost_est
    ghost_gvid = state.ghost_gvid
    owned = state.owned
    indptr = state.indptr
    encoded = state.encoded
    frags: Dict[int, Tuple[List[int], List[int], List[int], List[int]]] = {}
    for li in range(state.num_owned):
        value = est[li]
        if value == math.inf:
            continue  # anchors are appended after every shell, by id
        frag = frags.get(value)
        if frag is None:
            frag = frags[value] = ([], [], [0], [])
        members, start_eff, sub_indptr, sub_nbrs = frag
        count = 0
        for position in range(indptr[li], indptr[li + 1]):
            entry = encoded[position]
            if entry >= 0:
                neighbour_core = est[entry]
                gvid = owned[entry]
            else:
                ghost = -entry - 1
                neighbour_core = ghost_est[ghost]
                gvid = ghost_gvid[ghost]
            if neighbour_core >= value:
                count += 1
            if neighbour_core == value:
                sub_nbrs.append(gvid)
        members.append(owned[li])
        start_eff.append(count)
        sub_indptr.append(len(sub_nbrs))
    state.frag_cache = (est_key, ghost_key, frags)
    return frags, False


def _op_deg_plus(state: ShardState, rank_g: List[int]) -> Dict[int, int]:
    """``deg+`` of every ranked owned vertex (one local pass)."""
    indptr = state.indptr
    encoded = state.encoded
    result: Dict[int, int] = {}
    for li, gvid in enumerate(state.owned):
        own_rank = rank_g[gvid]
        if own_rank < 0:
            continue
        count = 0
        for position in range(indptr[li], indptr[li + 1]):
            if rank_g[_decode(state, encoded[position])] > own_rank:
                count += 1
        result[gvid] = count
    return result


def _op_candidate_scan(state: ShardState, k: int, order_pruning: bool) -> List[int]:
    """Theorem-3 candidate anchors among owned vertices (one local pass)."""
    core_g = state.core_g
    rank_g = state.rank_g
    indptr = state.indptr
    encoded = state.encoded
    target = k - 1
    out: List[int] = []
    for li, gvid in enumerate(state.owned):
        # Anchored ids carry core infinity, so this also excludes them.
        if core_g[gvid] >= k:
            continue
        own_rank = rank_g[gvid]
        for position in range(indptr[li], indptr[li + 1]):
            neighbour = _decode(state, encoded[position])
            if core_g[neighbour] != target:
                continue
            if not order_pruning or rank_g[neighbour] > own_rank:
                out.append(gvid)
                break
    return out


def _op_region_init(state: ShardState, k: int, candidate: int) -> List[int]:
    """Arm a region exploration; the candidate's owner returns the seeds."""
    state.k_f = k
    state.cand_f = candidate
    li = state.local_of.get(candidate)
    if li is None:
        return []
    core_g = state.core_g
    target = k - 1
    seeds: List[int] = []
    for position in range(state.indptr[li], state.indptr[li + 1]):
        gvid = _decode(state, state.encoded[position])
        if core_g[gvid] == target:
            seeds.append(gvid)
    return seeds


def _op_region_expand(state: ShardState, frontier: List[int]) -> List[int]:
    """Same-shell neighbours of newly regioned owned vertices (one hop)."""
    core_g = state.core_g
    candidate = state.cand_f
    target = state.k_f - 1
    local_of = state.local_of
    indptr = state.indptr
    encoded = state.encoded
    out: List[int] = []
    for gvid in frontier:
        li = local_of[gvid]
        for position in range(indptr[li], indptr[li + 1]):
            neighbour = _decode(state, encoded[position])
            if neighbour != candidate and core_g[neighbour] == target:
                out.append(neighbour)
    return out


def _op_support_init(
    state: ShardState, k: int, candidate: int, region: Optional[List[int]]
) -> int:
    """Compute follower support for owned members; return the member count.

    ``region`` selects marginal mode (membership = the region set); ``None``
    selects full-shell mode (membership = core == k - 1, candidate excluded).
    """
    state.k_f = k
    state.cand_f = candidate
    state.removed_f = set()
    core_g = state.core_g
    target = k - 1
    if region is None:
        state.region_f = None
        members = [
            li
            for li, gvid in enumerate(state.owned)
            if core_g[gvid] == target and gvid != candidate
        ]
    else:
        region_set = set(region)
        state.region_f = region_set
        local_of = state.local_of
        members = sorted(local_of[gvid] for gvid in region if gvid in local_of)
    support: Dict[int, int] = dict.fromkeys(members, 0)
    indptr = state.indptr
    encoded = state.encoded
    owned = state.owned
    ghost_gvid = state.ghost_gvid
    for li in members:
        count = 0
        for position in range(indptr[li], indptr[li + 1]):
            entry = encoded[position]
            gvid = owned[entry] if entry >= 0 else ghost_gvid[-entry - 1]
            if gvid == candidate:
                count += 1
            elif core_g[gvid] >= k:
                count += 1
            elif entry >= 0:
                if entry in support:
                    count += 1
            elif (
                gvid in state.region_f
                if state.region_f is not None
                else core_g[gvid] == target
            ):
                count += 1
        support[li] = count
    state.members_f = members
    state.support_f = support
    return len(members)


def _op_support_cascade(
    state: ShardState, decrements: Dict[int, int], rescan: bool
) -> Tuple[int, Buckets]:
    """One local support-cascade round; mirrors :func:`_op_peel_cascade`."""
    k = state.k_f
    candidate = state.cand_f
    core_g = state.core_g
    support = state.support_f
    removed = state.removed_f
    local_of = state.local_of
    indptr = state.indptr
    encoded = state.encoded
    ghost_gvid = state.ghost_gvid
    ghost_owner = state.ghost_owner
    region = state.region_f
    target = k - 1

    queue: List[int] = []
    if rescan:
        queue.extend(li for li, value in support.items() if value < k)
    for gvid, count in decrements.items():
        li = local_of[gvid]
        if li in removed or li not in support:
            continue
        support[li] -= count
        if support[li] < k:
            queue.append(li)

    removed_count = 0
    out: Buckets = {}
    while queue:
        li = queue.pop()
        if li in removed or support[li] >= k:
            continue
        removed.add(li)
        removed_count += 1
        for position in range(indptr[li], indptr[li + 1]):
            entry = encoded[position]
            if entry >= 0:
                if entry in support and entry not in removed:
                    support[entry] -= 1
                    if support[entry] < k:
                        queue.append(entry)
            else:
                ghost = -entry - 1
                gvid = ghost_gvid[ghost]
                is_member = (
                    gvid in region
                    if region is not None
                    else core_g[gvid] == target and gvid != candidate
                )
                if is_member:
                    bucket = out.get(ghost_owner[ghost])
                    if bucket is None:
                        bucket = out[ghost_owner[ghost]] = {}
                    bucket[gvid] = bucket.get(gvid, 0) + 1
    return removed_count, out


def _op_support_collect(state: ShardState) -> List[int]:
    """Surviving members (the followers) as global ids."""
    removed = state.removed_f
    owned = state.owned
    return [owned[li] for li in state.members_f if li not in removed]


_OPS = {
    "hindex_reset": _op_hindex_reset,
    "hindex_round": _op_hindex_round,
    "hindex_collect": _op_hindex_collect,
    "hindex_reship": _op_hindex_reship,
    "peel_reset": _op_peel_reset,
    "peel_cascade": _op_peel_cascade,
    "alive_collect": _op_alive_collect,
    "set_core": _op_set_core,
    "shell_fragments": _op_shell_fragments,
    "deg_plus": _op_deg_plus,
    "candidate_scan": _op_candidate_scan,
    "region_init": _op_region_init,
    "region_expand": _op_region_expand,
    "support_init": _op_support_init,
    "support_cascade": _op_support_cascade,
    "support_collect": _op_support_collect,
}


# ---------------------------------------------------------------------------
# Stateless tasks (no shard state; payload in, result out) — used to farm the
# per-shell order reconstruction to any worker.
# ---------------------------------------------------------------------------
def _shell_order(
    fragments: Sequence[Tuple[List[int], List[int], List[int], List[int]]],
) -> List[int]:
    """Merge one shell's per-shard fragments and run the packed-heap cascade.

    Exactly the numpy backend's Phase B: members ascend by global id (id ==
    tie-break rank on ordered snapshots), heap entries pack
    ``eff * size + local`` so pops follow ``(effective degree, rank)``, and
    only same-shell removals decrement — reproducing the reference heap
    peel's within-shell order bit for bit.
    """
    entries: List[Tuple[int, int, List[int]]] = []
    for members, start_eff, sub_indptr, sub_nbrs in fragments:
        for i, gvid in enumerate(members):
            entries.append(
                (gvid, start_eff[i], sub_nbrs[sub_indptr[i] : sub_indptr[i + 1]])
            )
    entries.sort(key=lambda item: item[0])
    size = len(entries)
    position = {entry[0]: local for local, entry in enumerate(entries)}
    eff_local = [entry[1] for entry in entries]
    adjacency = [[position[gvid] for gvid in entry[2]] for entry in entries]

    heap = [eff_local[local] * size + local for local in range(size)]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop
    popped = bytearray(size)
    order: List[int] = []
    while heap:
        packed = heappop(heap)
        degree, local = divmod(packed, size)
        if popped[local] or degree != eff_local[local]:
            continue
        popped[local] = 1
        order.append(entries[local][0])
        for neighbour in adjacency[local]:
            if not popped[neighbour]:
                slack = eff_local[neighbour] - 1
                eff_local[neighbour] = slack
                heappush(heap, slack * size + neighbour)
    return order


def _task_shell_orders(
    batch: Sequence[
        Tuple[int, List[Tuple[List[int], List[int], List[int], List[int]]]]
    ],
) -> List[Tuple[int, List[int]]]:
    """Run :func:`_shell_order` for a batch of ``(level, fragments)`` shells."""
    return [(level, _shell_order(fragments)) for level, fragments in batch]


_TASKS = {
    "shell_orders": _task_shell_orders,
}


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------
class _SerialExecutor:
    """Run every op as a direct call against in-process shard states.

    A ``None`` entry in ``args_per_shard`` skips that shard (its result slot
    is ``None``) — the coordinator uses this to avoid no-op rounds on shards
    with no incoming boundary traffic.

    :meth:`submit` serves the async exchange: the op runs inline and comes
    back as an already-completed future, so the futures-based scheduler is a
    deterministic work-queue walk with zero overhead beyond the lock-step
    path (and bit-identical results either way — the kernels are monotone or
    confluent, see the module docstring).
    """

    is_process = False

    def __init__(self, shards: List[ShardState]) -> None:
        self._shards = shards

    def run(self, op: str, args_per_shard: List[Optional[tuple]]) -> List[object]:
        func = _OPS[op]
        results: List[object] = []
        for shard_id, (state, args) in enumerate(zip(self._shards, args_per_shard)):
            if args is None:
                results.append(None)
                continue
            faults.fire("shard.op", op=op, shard=shard_id, executor="serial")
            if tracer.enabled:
                with tracer.span("shard.op", op=op, shard=shard_id):
                    results.append(func(state, *args))
            else:
                results.append(func(state, *args))
        return results

    def submit(self, op: str, shard_id: int, args: tuple) -> "Future[object]":
        future: "Future[object]" = Future()
        state = self._shards[shard_id]
        try:
            faults.fire("shard.op", op=op, shard=shard_id, executor="serial")
            if tracer.enabled:
                with tracer.span("shard.op", op=op, shard=shard_id):
                    result = _OPS[op](state, *args)
            else:
                result = _OPS[op](state, *args)
        except BaseException as error:
            future.set_exception(error)
        else:
            future.set_result(result)
        return future

    def resolve(self, future: "Future[object]", timeout: Optional[float] = None) -> object:
        return future.result()

    def run_tasks(self, tasks: List[Tuple[str, tuple]]) -> List[object]:
        if not tracer.enabled:
            return [_TASKS[name](*args) for name, args in tasks]
        results = []
        for index, (name, args) in enumerate(tasks):
            with tracer.span("shard.task", task=name, slot=index):
                results.append(_TASKS[name](*args))
        return results


# Process-wide worker pools, one single-worker spawn pool per slot, reused
# across coordinators so the interpreter-spawn cost is paid once.
_POOLS: Dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()

# Worker-side shard states, keyed by (coordinator key, shard id).  Lives in
# the worker process; the names below are only ever *called* there.
_WORKER_STATES: Dict[Tuple[str, int], ShardState] = {}

# Worker-side lifetime attachments to shared-memory blocks, same keying.
# Held open for as long as the state is loaded (the memoryview-backed arrays
# alias the mapped buffer) and closed when the coordinator drops its states.
_WORKER_ATTACHMENTS: Dict[Tuple[str, int], object] = {}


def _worker_load(key: str, shard_id: int, state: object) -> bool:
    """Install one shard's state: a pickled :class:`ShardState` or, on the
    shared-memory path, a :class:`~repro.shard.shm.SharedShardHandle` the
    worker attaches to (keeping the attachment for the coordinator's
    lifetime)."""
    if isinstance(state, shm.SharedShardHandle):
        attached, block = shm.attach_state(state)
        _WORKER_STATES[(key, shard_id)] = attached
        _WORKER_ATTACHMENTS[(key, shard_id)] = block
        return True
    _WORKER_STATES[(key, shard_id)] = state
    return True


def _worker_drop(key: str) -> int:
    doomed = [item for item in _WORKER_STATES if item[0] == key]
    for item in doomed:
        del _WORKER_STATES[item]
        block = _WORKER_ATTACHMENTS.pop(item, None)
        if block is not None:
            # The state (and with it every memoryview over the buffer) is
            # unreferenced now, so the mapping can be closed.  Unlinking is
            # the creator's job, never the attacher's.
            try:
                block.close()
            except BufferError:  # pragma: no cover - a view outlived the state
                pass  # the mapping falls with the worker process instead
    return len(doomed)


def _worker_atexit() -> None:
    """Release loaded states before worker-interpreter teardown.

    Runs in every process importing this module (a no-op in the coordinator,
    whose state dicts stay empty).  When a coordinator dies without
    ``close()`` — a crashed parent, an aborted test — its workers still shut
    down through the pool's exit handler with attachments live; dropping the
    states here frees their memoryview slices while the interpreter is still
    orderly, so the block's mapping closes cleanly instead of its ``__del__``
    raising an ignored ``BufferError`` over exported pointers.
    """
    _WORKER_STATES.clear()
    for item in list(_WORKER_ATTACHMENTS):
        block = _WORKER_ATTACHMENTS.pop(item)
        try:
            block.close()
        except BufferError:  # pragma: no cover - a view outlived the state
            pass  # the mapping falls with the process instead


atexit.register(_worker_atexit)


def _worker_exec(
    key: str, shard_id: int, op: str, args: tuple, trace: bool = False
) -> object:
    """Run one op in the worker.  With ``trace``, the op executes inside a
    worker-local span and the result is returned as ``(result, spans)`` so the
    coordinator can merge the worker's trace into its own (shard-id tagged,
    pid-prefixed span ids keep everything unique across processes).

    This is also the process-side fault-injection point: only here may a
    ``crash`` fault actually take the interpreter down (``allow_crash``) —
    everywhere else crashes are downgraded to raised :class:`FaultError`\\ s
    so injected chaos can never kill the coordinator process itself."""
    faults.fire(
        "shard.op", op=op, shard=shard_id, executor="process", allow_crash=True
    )
    if not trace:
        return _OPS[op](_WORKER_STATES[(key, shard_id)], *args)
    tracer.set_enabled(True)
    with tracer.span("shard.op", op=op, shard=shard_id):
        result = _OPS[op](_WORKER_STATES[(key, shard_id)], *args)
    return result, tracer.drain()


def _worker_task(name: str, args: tuple, trace: bool = False) -> object:
    if not trace:
        return _TASKS[name](*args)
    tracer.set_enabled(True)
    with tracer.span("shard.task", task=name):
        result = _TASKS[name](*args)
    return result, tracer.drain()


def _get_pool(slot: int) -> ProcessPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(slot)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=1, mp_context=get_context("spawn"))
            _POOLS[slot] = pool
        return pool


def _discard_pool(slot: int) -> None:
    """Retire a broken pool so the next :func:`_get_pool` spawns a fresh one.

    A worker crash (OOM kill, segfault, ``os._exit``) leaves its
    :class:`ProcessPoolExecutor` permanently broken; keeping it in
    :data:`_POOLS` would poison every later coordinator sharing the slot.
    """
    with _POOLS_LOCK:
        pool = _POOLS.pop(slot, None)
    if pool is not None:
        logger.warning("shard worker slot %d broke; respawning on next use", slot)
        # Freeze the flight recorder before the respawn erases the evidence:
        # the ring holds the spans leading up to the crash even if tracing
        # was toggled off since.
        flight.default_recorder().dump("broken-process-pool", slot=slot)
        pool.shutdown(wait=False)


def _submit_to_slot(slot: int, fn, *args) -> "Future[object]":
    """Submit to a slot's pool, retiring the pool if its worker has died."""
    try:
        return _get_pool(slot).submit(fn, *args)
    except BrokenProcessPool:
        _discard_pool(slot)
        raise


def shutdown_shard_pools() -> None:
    """Shut down every persistent shard worker pool (they respawn on demand)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


atexit.register(shutdown_shard_pools)


def _release_states(key: str, slots: Tuple[int, ...]) -> None:
    """Drop a coordinator's worker-side states and unlink its shared-memory
    blocks (GC/close callback).

    The unlink must run even when a worker crashed: a broken pool means the
    worker-side attachments died with the process, but the segment *names*
    live until the creator unlinks them — exactly what this does last.
    Slots without a live pool are skipped outright — their worker (and with
    it every state under this key) is already gone, and respawning a fresh
    interpreter just to drop nothing would turn cleanup into a spawn storm.
    """
    for slot in slots:
        with _POOLS_LOCK:
            pool = _POOLS.get(slot)
        if pool is None:
            continue
        try:
            pool.submit(_worker_drop, key)
        except BrokenProcessPool:
            _discard_pool(slot)
        except RuntimeError:  # pool already shut down — nothing to release
            pass
    shm.unlink_blocks(key)


class _ProcessExecutor:
    """One dedicated single-worker spawn process per shard slot.

    Shard ``i`` always executes in slot ``i % max_workers``, so its mutable
    state (loaded once under this coordinator's key) stays consistent across
    rounds.  With ``max_workers < num_shards`` several shards share a worker
    — less parallelism, same semantics.

    With ``shared_memory`` (the default) the static CSR arrays travel as
    :mod:`repro.shard.shm` blocks: the load submits a tiny handle per shard
    and each worker attaches zero-copy instead of unpickling the state.  The
    executor's ``key`` doubles as the shm owner key, so
    :func:`_release_states` can unlink every block the coordinator created.

    Supervision hooks: the executor remembers every shard's load payload and
    which slots have lost their worker (``broken``), so :meth:`recover` can
    respawn the pools on demand and reload exactly the shards whose
    worker-side state died — a crash takes down *every* shard sharing the
    dead slot, in flight or not.  ``op_timeout`` (set by the coordinator
    from its :class:`~repro.resilience.RetryPolicy`) bounds each
    ``future.result`` wait; a miss gets the hung worker killed
    (:meth:`kill_slot`) so the deadline path funnels into the same
    broken-pool recovery as a genuine crash.
    """

    is_process = True

    def __init__(
        self,
        plan: ShardPlan,
        max_workers: Optional[int],
        shared_memory: bool = True,
    ) -> None:
        workers = plan.num_shards if max_workers is None else max_workers
        if workers < 1:
            raise ParameterError("max_workers must be >= 1")
        self.num_workers = min(workers, plan.num_shards)
        self.key = uuid.uuid4().hex
        self.shared_memory = shared_memory
        self.slots = [i % self.num_workers for i in range(plan.num_shards)]
        self.broken: Set[int] = set()
        self.op_timeout: Optional[float] = None
        try:
            payloads: List[object] = (
                [shm.pack_state(state, self.key) for state in plan.shards]
                if shared_memory
                else list(plan.shards)
            )
            loads = [
                _submit_to_slot(self.slots[shard_id], _worker_load, self.key, shard_id, payload)
                for shard_id, payload in enumerate(payloads)
            ]
            for future in loads:
                future.result()
        except BaseException:
            # Partial construction must not leak: blocks already packed for
            # earlier shards are registered under this executor's key but no
            # finalizer owns them yet — unlink them (and drop any states the
            # workers already loaded) before propagating.
            _release_states(self.key, tuple(set(self.slots)))
            raise
        self._payloads = payloads

    def note_broken(self, slot: int) -> None:
        """Record a dead worker and retire its pool (idempotent)."""
        self.broken.add(slot)
        _discard_pool(slot)

    def kill_slot(self, slot: int) -> None:
        """Terminate a (presumably hung) worker and mark its slot broken."""
        with _POOLS_LOCK:
            pool = _POOLS.get(slot)
        if pool is not None:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
        self.note_broken(slot)

    def recover(self) -> List[int]:
        """Respawn broken slots and reload their shards' states.

        Returns the reloaded shard ids.  Only shards on broken slots are
        reloaded: live workers still hold their states (and on the shm path
        their attachments), so a blanket reload would leak attachments.
        The shm blocks themselves survive worker crashes — the coordinator
        owns the segment names — so reloading is a cheap re-attach.
        """
        slots = set(self.broken)
        self.broken.clear()
        if not slots:
            return []
        reloaded = [
            shard_id
            for shard_id in range(len(self.slots))
            if self.slots[shard_id] in slots
        ]
        loads = [
            _submit_to_slot(
                self.slots[shard_id],
                _worker_load,
                self.key,
                shard_id,
                self._payloads[shard_id],
            )
            for shard_id in reloaded
        ]
        for future in loads:
            future.result()
        return reloaded

    def submit(self, op: str, shard_id: int, args: tuple) -> "Future[object]":
        trace = tracer.is_enabled()
        slot = self.slots[shard_id]
        try:
            future = _submit_to_slot(
                slot, _worker_exec, self.key, shard_id, op, args, trace
            )
        except BrokenProcessPool:
            self.broken.add(slot)  # _submit_to_slot already retired the pool
            raise
        future._repro_traced = trace  # type: ignore[attr-defined]
        return future

    def resolve(self, future: "Future[object]", timeout: Optional[float] = None) -> object:
        value = future.result(timeout)
        if getattr(future, "_repro_traced", False):
            value, spans = value
            tracer.adopt(spans)
        return value

    def run(self, op: str, args_per_shard: List[Optional[tuple]]) -> List[object]:
        futures = [
            None if args is None else self.submit(op, shard_id, args)
            for shard_id, args in enumerate(args_per_shard)
        ]
        results: List[object] = []
        for shard_id, future in enumerate(futures):
            if future is None:
                results.append(None)
                continue
            try:
                results.append(self.resolve(future, timeout=self.op_timeout))
            except FutureTimeout:
                self.kill_slot(self.slots[shard_id])
                raise ShardTimeoutError(
                    f"shard {shard_id} op {op!r} missed its "
                    f"{self.op_timeout}s deadline"
                ) from None
            except BrokenProcessPool:
                self.note_broken(self.slots[shard_id])
                raise
        return results

    def run_tasks(self, tasks: List[Tuple[str, tuple]]) -> List[object]:
        trace = tracer.is_enabled()
        futures = [
            _submit_to_slot(index % self.num_workers, _worker_task, name, args, trace)
            for index, (name, args) in enumerate(tasks)
        ]
        results = []
        for index, future in enumerate(futures):
            slot = index % self.num_workers
            try:
                value = future.result(self.op_timeout)
            except FutureTimeout:
                self.kill_slot(slot)
                raise ShardTimeoutError(
                    f"shard task batch {index} missed its {self.op_timeout}s deadline"
                ) from None
            except BrokenProcessPool:
                self.note_broken(slot)
                raise
            if trace:
                value, spans = value
                tracer.adopt(spans)
            results.append(value)
        return results


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
#: Registry-backed coordinator counters (``shard.<name>`` in the registry,
#: same keys in the :meth:`ShardCoordinator.stats` plain dict).
_COUNTER_FIELDS = (
    "rounds",
    "messages",
    "shard_cache_hits",
    "shard_cache_misses",
    "fragment_cache_hits",
    "fragment_cache_misses",
    "shard_rounds_skipped",
    "exchange_waves",
    "ops_dispatched",
    "op_failures",
    "op_retries",
    "exchange_resumes",
    "degradations",
)


class ShardCoordinator:
    """Drives sharded kernels over a :class:`~repro.shard.partition.ShardPlan`.

    All ids at this boundary are the snapshot's dense global vertex ids; the
    sharded backend translates hashable vertices at its own boundary, exactly
    like the compact backend.  ``rounds`` and ``messages`` count the exchange
    rounds issued and the boundary updates routed — observability for tests
    and the benchmark reports.
    """

    def __init__(
        self,
        plan: ShardPlan,
        executor: str = EXECUTOR_SERIAL,
        max_workers: Optional[int] = None,
        exchange: str = EXCHANGE_ASYNC,
        shared_memory: Optional[bool] = None,
        retry: Optional[RetryPolicy] = None,
        degrade_to_serial: bool = True,
    ) -> None:
        if executor not in EXECUTORS:
            raise ParameterError(
                f"unknown shard executor {executor!r}; expected one of {sorted(EXECUTORS)}"
            )
        if exchange not in EXCHANGES:
            raise ParameterError(
                f"unknown shard exchange {exchange!r}; expected one of {sorted(EXCHANGES)}"
            )
        self.plan = plan
        self.executor = executor
        self.exchange = exchange
        #: Shared-memory state shipping is a process-executor concern: the
        #: serial executor works on the plan's states directly.  ``None``
        #: means "on whenever it applies".
        self.shared_memory = (
            (True if shared_memory is None else bool(shared_memory))
            and executor == EXECUTOR_PROCESS
        )
        #: Registry behind every coordinator counter: ``rounds``/``messages``
        #: and the shard-local caching observability (round-1 peel reuses,
        #: fragment reuses, per-shard op calls skipped because the shard had
        #: no incoming boundary traffic) are properties over ``shard.*``
        #: counters here, so :meth:`snapshot` shares the unified
        #: ``{name, type, value, labels}`` schema with the engine and solver
        #: stats while :meth:`stats` keeps its plain-dict shape.  The async
        #: exchange adds ``exchange_waves`` (scheduler wake-ups) and
        #: ``ops_dispatched`` (per-shard ops actually submitted).
        self.registry = MetricsRegistry()
        self._metrics = {
            name: self.registry.counter("shard." + name) for name in _COUNTER_FIELDS
        }
        #: Partition quality, static per plan: total distinct cut edges, the
        #: cut-edge ratio (cut / total edges) and the owned-vertex balance
        #: (max shard size over the ideal even split).
        self.registry.gauge("shard.cut_edges").set(plan.cut_edge_count)
        self.registry.gauge("shard.cut_edge_ratio").set(plan.cut_edge_ratio)
        self.registry.gauge("shard.balance").set(plan.balance)
        #: Supervision: the retry policy bounding how hard a failing kernel
        #: is fought (respawn + replay) before the coordinator degrades to
        #: the serial executor, and the cached ``set_core`` broadcast so a
        #: recovered (or serial-degraded) shard set can be re-armed with the
        #: anchored-index state it missed.
        self._retry = retry if retry is not None else default_retry_policy()
        self._degrade = degrade_to_serial
        self._last_core_state: Optional[Tuple[List[float], Optional[List[int]]]] = None
        self._finalizer = None
        if executor == EXECUTOR_PROCESS:
            self._exec = _ProcessExecutor(
                plan, max_workers, shared_memory=self.shared_memory
            )
            self._exec.op_timeout = self._retry.op_timeout
            self.num_workers = self._exec.num_workers
            self._finalizer = weakref.finalize(
                self, _release_states, self._exec.key, tuple(set(self._exec.slots))
            )
        else:
            self._exec = _SerialExecutor(plan.shards)
            self.num_workers = 1

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release worker-side state (no-op for the serial executor)."""
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Supervision: bounded retry -> recovery -> degradation ladder
    # ------------------------------------------------------------------
    def _supervised(self, label: str, fn: Callable[[], Any]) -> Any:
        """Run a kernel under the retry policy; degrade to serial on exhaustion.

        Shard ops mutate worker-side scratch across rounds, so recovery never
        replays individual ops — each retry restarts the *kernel* from its
        reset op, which re-arms every shard's scratch and is therefore
        bit-identical to a fault-free run (the kernels are monotone or
        confluent).  Before a retry, :meth:`_recover` respawns any broken
        worker slots and reloads their shards' states; after the budget is
        spent the coordinator swaps in the serial executor (the plan's own
        states never left this process, so the fallback always has a
        consistent base) and tries once more.  Only when even that fails
        does a :class:`ShardExecutionError` escape to the caller.
        """
        policy = self._retry
        error: Optional[BaseException] = None
        for attempt in range(policy.max_retries + 1):
            if attempt:
                self.op_retries += 1
                time.sleep(policy.delay_for(attempt, token=label))
                try:
                    self._recover()
                except _RETRYABLE_FAILURES as recover_error:
                    logger.warning(
                        "recovery before retry %d of %r failed: %s",
                        attempt,
                        label,
                        recover_error,
                    )
                    error = recover_error
                    continue
            try:
                return fn()
            except _RETRYABLE_FAILURES as caught:
                error = caught
                self.op_failures += 1
                logger.warning(
                    "shard kernel %r attempt %d/%d failed: %s",
                    label,
                    attempt + 1,
                    policy.max_retries + 1,
                    caught,
                )
        if self._degrade and self._exec.is_process:
            self._degrade_to_serial(label, error)
            try:
                return fn()
            except _RETRYABLE_FAILURES as serial_error:
                raise ShardExecutionError(
                    f"shard kernel {label!r} failed even after degrading to "
                    f"the serial executor: {serial_error}"
                ) from serial_error
        raise ShardExecutionError(
            f"shard kernel {label!r} failed after {policy.max_retries + 1} "
            f"attempt(s): {error}"
        ) from error

    def _recover(self) -> None:
        """Respawn broken worker slots and re-arm the reloaded shards.

        Freshly reloaded states are static CSR only — any ``set_core``
        broadcast they held died with the worker, so the cached one is
        replayed to exactly those shards (kernel resets rebuild the rest).
        """
        if not self._exec.is_process:
            return
        reloaded = self._exec.recover()
        if reloaded and self._last_core_state is not None:
            targets = set(reloaded)
            core, rank = self._last_core_state
            self._exec.run(
                "set_core",
                [
                    (core, rank) if shard_id in targets else None
                    for shard_id in range(self.plan.num_shards)
                ],
            )

    def _degrade_to_serial(self, label: str, error: Optional[BaseException]) -> None:
        """Swap the process executor for the serial one (graceful degradation).

        The serial executor runs against the plan's own in-process states, so
        no worker-side scratch survives into it — which is fine, because
        every kernel entry point re-arms its scratch from a reset op.  The
        one piece of cross-kernel state, the ``set_core`` broadcast, is
        replayed from the coordinator-side cache.
        """
        logger.error(
            "shard coordinator degrading to the serial executor after %r "
            "exhausted its retry budget: %s",
            label,
            error,
        )
        self.degradations += 1
        recorder = flight.default_recorder()
        recorder.record_event(
            "shard.degraded", op=label, error=str(error), executor_from=self.executor
        )
        recorder.dump("shard-degraded-serial", op=label, error=str(error))
        if self._finalizer is not None:
            self._finalizer()  # drop worker states, unlink the shm blocks
            self._finalizer = None
        self._exec = _SerialExecutor(self.plan.shards)
        self.executor = EXECUTOR_SERIAL
        self.num_workers = 1
        if self._last_core_state is not None:
            core, rank = self._last_core_state
            self._exec.run("set_core", [(core, rank)] * self.plan.num_shards)

    def _run(
        self,
        op: str,
        args_per_shard: Optional[List[tuple]] = None,
        shared: tuple = (),
    ) -> List[object]:
        if args_per_shard is None:
            args_per_shard = [shared] * self.plan.num_shards
        self.rounds += 1
        with tracer.span(
            "shard.round",
            op=op,
            shards=sum(1 for args in args_per_shard if args is not None),
        ):
            return self._exec.run(op, args_per_shard)

    def _merge_buckets(self, outputs: List[Buckets]) -> Tuple[List[Dict[int, int]], bool]:
        """Combine per-shard destination buckets, summing duplicate targets."""
        pending: List[Dict[int, int]] = [dict() for _ in range(self.plan.num_shards)]
        produced = False
        for out in outputs:
            for target, payload in out.items():
                if not payload:
                    continue
                produced = True
                self.messages += len(payload)
                bucket = pending[target]
                for gvid, count in payload.items():
                    bucket[gvid] = bucket.get(gvid, 0) + count
        return pending, produced

    def _route(
        self,
        out: Buckets,
        pending: List[Dict[int, int]],
        combine: Callable[[int, int], int],
    ) -> None:
        """Route one op's boundary output into the destination buckets."""
        for target, payload in out.items():
            if not payload:
                continue
            self.messages += len(payload)
            bucket = pending[target]
            for gvid, value in payload.items():
                if gvid in bucket:
                    bucket[gvid] = combine(bucket[gvid], value)
                else:
                    bucket[gvid] = value

    def _resolve_with_deadline(self, shard_id: int, future: "Future[object]") -> object:
        """Resolve a future under the per-op deadline; a miss kills the worker."""
        timeout = self._retry.op_timeout
        if not self._exec.is_process or timeout is None:
            return self._exec.resolve(future)
        try:
            return self._exec.resolve(future, timeout=timeout)
        except FutureTimeout:
            self._exec.kill_slot(self._exec.slots[shard_id])
            raise ShardTimeoutError(
                f"shard {shard_id} missed its {timeout}s op deadline"
            ) from None

    def _note_shard_failure(self, shard_id: int, error: BaseException) -> None:
        """Bookkeeping for a failed shard op inside the async exchange."""
        self.op_failures += 1
        if isinstance(error, BrokenProcessPool) and self._exec.is_process:
            # The future completed *carrying* the pool's exception — unlike a
            # submit-time raise nothing retired the pool yet, so do it here.
            self._exec.note_broken(self._exec.slots[shard_id])
        logger.warning("shard %d failed mid-exchange: %s", shard_id, error)

    def _kill_inflight(self, shard_ids: List[int]) -> None:
        """Deadline missed by every in-flight op: kill the hung workers.

        Their futures then complete broken, so the next wait() pass funnels
        the stall into the ordinary crash-recovery path.
        """
        slots = {self._exec.slots[shard_id] for shard_id in shard_ids}
        logger.warning(
            "no shard op completed within the %ss deadline; killing %d "
            "hung worker slot(s)",
            self._retry.op_timeout,
            len(slots),
        )
        for slot in slots:
            self._exec.kill_slot(slot)

    def _exchange_until_fixpoint(
        self, op: str, first_args, next_args, extract, combine=None, reinit=None,
        reship_op=None,
    ) -> None:
        """The futures-based exchange: run ``op`` to the global fixpoint.

        Every shard gets one initial submission (``first_args(shard_id)``);
        afterwards a shard is resubmitted (``next_args(drained_bucket)``) the
        moment its input bucket is non-empty and it has no op in flight, and
        every completed future's boundary output is routed into destination
        buckets immediately.  ``extract(result)`` pulls the buckets out of an
        op result (accumulating any side counts).

        ``combine`` resolves a routed value colliding with one already
        pending for the same vertex — a case lock-step never sees (it drains
        every bucket each round) but the async exchange does whenever a
        producer laps a still-busy consumer.  Cascades ship *deltas* (the
        default sums them); the bound refinement ships *absolute estimates*,
        where the estimates only ever decrease, so it combines with ``min``
        to keep the latest bound.

        Fixpoint is the outstanding-work counter reaching zero: no in-flight
        futures and every bucket empty.  The invariant making the ``while
        inflight`` test sufficient: after each dispatch pass a non-empty
        bucket can only belong to a shard that is itself still in flight, so
        an empty in-flight map implies globally empty buckets.

        Bit-exactness does not depend on completion order — the bound
        refinement is a monotone relaxation with a unique fixpoint and the
        deletion cascades are confluent (module docstring) — so stragglers
        can finish whenever they finish.

        Failure handling: a shard op failing mid-exchange (injected fault,
        missed deadline, dead worker) no longer restarts the exchange from
        scratch.  Each in-flight shard remembers the bucket it consumed, so
        the payloads of failed *and still-pending* ops are captured and
        re-routed (:meth:`_resume_exchange`) and the exchange resumes where
        it was.  Worker crashes additionally lose shard scratch; only
        exchanges that provide ``reinit``/``reship_op`` hooks (the bound
        refinement, whose absolute min-combined estimates make a re-ship
        idempotent) resume across those — cascades ship deltas and re-raise
        to the kernel-level retry instead, which restarts from the reset op.
        """
        num_shards = self.plan.num_shards
        pending: List[Dict[int, int]] = [dict() for _ in range(num_shards)]
        inflight: Dict[int, "Future[object]"] = {}
        #: The bucket each in-flight op consumed (None = first-round args):
        #: this is what lets a failed or orphaned op's input be restored
        #: instead of lost.
        inflight_args: Dict[int, Optional[Dict[int, int]]] = {}
        submit = self._exec.submit
        if combine is None:
            combine = lambda old, new: old + new  # noqa: E731 - delta sum
        resumes = 0
        with tracer.span(
            "shard.exchange", op=op, mode=EXCHANGE_ASYNC, shards=num_shards
        ) as exchange_span:
            for shard_id in range(num_shards):
                inflight[shard_id] = submit(op, shard_id, first_args(shard_id))
                inflight_args[shard_id] = None
            self.ops_dispatched += num_shards
            self.rounds += 1
            waves = 0
            while inflight:
                done, _ = wait(
                    inflight.values(),
                    timeout=self._retry.op_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    self._kill_inflight(list(inflight))
                    continue
                waves += 1
                finished = [sid for sid, future in inflight.items() if future in done]
                failures: Dict[int, Tuple[BaseException, Optional[Dict[int, int]]]] = {}
                with tracer.span("shard.wave", op=op, completed=len(finished)):
                    for shard_id in finished:
                        future = inflight.pop(shard_id)
                        updates = inflight_args.pop(shard_id)
                        try:
                            out = extract(self._exec.resolve(future))
                        except _RETRYABLE_FAILURES as error:
                            self._note_shard_failure(shard_id, error)
                            failures[shard_id] = (error, updates)
                            continue
                        self._route(out, pending, combine)
                    if failures:
                        resumes += 1
                        self._resume_exchange(
                            op,
                            failures,
                            inflight,
                            inflight_args,
                            pending,
                            combine,
                            extract,
                            first_args,
                            reinit,
                            reship_op,
                            resumes,
                        )
                    dispatched = 0
                    for shard_id in range(num_shards):
                        if pending[shard_id] and shard_id not in inflight:
                            updates = pending[shard_id]
                            pending[shard_id] = {}
                            inflight[shard_id] = submit(op, shard_id, next_args(updates))
                            inflight_args[shard_id] = updates
                            dispatched += 1
                    if dispatched:
                        self.ops_dispatched += dispatched
                        self.rounds += 1
            self.exchange_waves += waves
            exchange_span.set(waves=waves)

    def _resume_exchange(
        self,
        op: str,
        failures: Dict[int, Tuple[BaseException, Optional[Dict[int, int]]]],
        inflight: Dict[int, "Future[object]"],
        inflight_args: Dict[int, Optional[Dict[int, int]]],
        pending: List[Dict[int, int]],
        combine: Callable[[int, int], int],
        extract,
        first_args,
        reinit,
        reship_op,
        resumes: int,
    ) -> None:
        """Salvage an async exchange after one or more shard ops failed.

        First every *other* in-flight future is drained: healthy completions
        carry boundary payloads that must be routed (losing them was the old
        restart-from-scratch bug), and futures riding a broken pool complete
        with the pool's exception and simply join the failure set — their
        consumed buckets captured rather than lost.  Then:

        * Pure op failures (injected :class:`FaultError`\\ s raise at op
          entry, before any scratch mutation): the consumed buckets are
          restored and the ops resubmitted — valid for *every* kernel,
          cascades included, precisely because nothing ran.
        * Worker crashes: every shard on a dead slot lost its scratch
          (in flight or not).  With ``reinit``/``reship_op`` hooks the slots
          are respawned, the crashed shards re-armed, live shards re-ship
          the current boundary estimates the reborn ghost tables need, and
          the crashed shards restart from their first round — idempotent
          under min-combination, hence still bit-identical.  Without hooks
          (delta-shipping cascades) the failure re-raises to the kernel-level
          retry, which restarts from the reset op.
        """
        for shard_id in list(inflight):
            future = inflight.pop(shard_id)
            updates = inflight_args.pop(shard_id)
            try:
                out = extract(self._resolve_with_deadline(shard_id, future))
            except _RETRYABLE_FAILURES as error:
                self._note_shard_failure(shard_id, error)
                failures[shard_id] = (error, updates)
                continue
            self._route(out, pending, combine)
        first_error = next(iter(failures.values()))[0]
        crashed: Set[int] = set()
        if self._exec.is_process and self._exec.broken:
            broken_slots = set(self._exec.broken)
            crashed = {
                shard_id
                for shard_id in range(self.plan.num_shards)
                if self._exec.slots[shard_id] in broken_slots
            }
        if resumes > self._retry.max_retries:
            raise first_error
        if crashed and (reinit is None or reship_op is None):
            raise first_error
        self.exchange_resumes += 1
        flight.default_recorder().record_event(
            "shard.exchange_resume",
            op=op,
            failures=len(failures),
            crashed=sorted(crashed),
        )
        logger.warning(
            "resuming %r exchange after %d shard failure(s) (%d shard(s) rebuilt)",
            op,
            len(failures),
            len(crashed),
        )
        if crashed:
            self._exec.recover()
            for shard_id in sorted(crashed):
                reinit(shard_id)
            live = [
                shard_id
                for shard_id in range(self.plan.num_shards)
                if shard_id not in crashed
            ]
            reships = [
                (source, self._exec.submit(reship_op, source, (target,)))
                for target in sorted(crashed)
                for source in live
            ]
            for source, future in reships:
                self._route(
                    self._resolve_with_deadline(source, future), pending, combine
                )
            self.ops_dispatched += len(reships)
        # Restore the payloads the failed ops never consumed; crashed shards
        # (and failed first rounds) restart from their first-round args, the
        # rest drain through the caller's normal dispatch pass.  A crashed
        # shard's stale payload is skipped: the re-ship above re-emitted the
        # senders' *current* estimates, which subsume it.
        needs_first: Set[int] = set(crashed)
        for shard_id, (error, updates) in failures.items():
            if updates is None:
                needs_first.add(shard_id)
            elif shard_id not in crashed:
                self._route({shard_id: updates}, pending, combine)
        for shard_id in sorted(needs_first):
            inflight[shard_id] = self._exec.submit(op, shard_id, first_args(shard_id))
            inflight_args[shard_id] = None
        if needs_first:
            self.ops_dispatched += len(needs_first)
            self.rounds += 1

    def _cascade(self, op: str, level_args: tuple) -> int:
        """Drive a local-cascade op to the global fixpoint; return removals."""
        if self.exchange == EXCHANGE_ASYNC:
            return self._cascade_async(op, level_args)
        return self._cascade_lockstep(op, level_args)

    def _cascade_async(self, op: str, level_args: tuple) -> int:
        removed_total = 0

        def extract(result: object) -> Buckets:
            nonlocal removed_total
            removed, out = result
            removed_total += removed
            return out

        self._exchange_until_fixpoint(
            op,
            first_args=lambda shard_id: level_args + ({}, True),
            next_args=lambda updates: level_args + (updates, False),
            extract=extract,
        )
        return removed_total

    def _cascade_lockstep(self, op: str, level_args: tuple) -> int:
        """The PR-4 barrier scheme: global rounds, each waiting on every shard.

        After the initial rescan round, shards with no pending boundary
        decrements are skipped outright — the op would find an empty queue
        and do nothing — which keeps each round's cost proportional to where
        the cascade actually is, not to the shard count.
        """
        num_shards = self.plan.num_shards
        pending: List[Dict[int, int]] = [dict() for _ in range(num_shards)]
        rescan = True
        removed_total = 0
        while True:
            args: List[Optional[tuple]] = [
                level_args + (pending[i], rescan) if rescan or pending[i] else None
                for i in range(num_shards)
            ]
            self.shard_rounds_skipped += sum(1 for entry in args if entry is None)
            results = self._run(op, args)
            rescan = False
            removed_any = False
            outputs: List[Buckets] = []
            for result in results:
                if result is None:
                    continue
                removed, out = result
                removed_total += removed
                if removed:
                    removed_any = True
                outputs.append(out)
            pending, _ = self._merge_buckets(outputs)
            if not removed_any:
                # No removals anywhere implies no boundary decrements either,
                # so everything produced earlier has already been applied.
                return removed_total

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def decompose(
        self, anchor_ids: Sequence[int] = ()
    ) -> Tuple[List[float], List[int]]:
        """Full anchored peel: ``(core values by id, removal order)``.

        Bit-identical to :func:`repro.cores.decomposition.compact_peel` on
        the same ordered snapshot.
        """
        anchor_list = sorted({int(a) for a in anchor_ids})
        n = self.plan.num_vertices
        if n == 0:
            return [], []
        with tracer.span(
            "shard.decompose",
            shards=self.plan.num_shards,
            executor=self.executor,
            anchors=len(anchor_list),
        ):
            return self._supervised(
                "decompose", lambda: self._decompose(anchor_list, n)
            )

    def _decompose(
        self, anchor_list: List[int], n: int
    ) -> Tuple[List[float], List[int]]:
        # Phase A: distributed core-bound refinement -> core numbers.
        num_shards = self.plan.num_shards
        reset_results = self._run("hindex_reset", shared=(anchor_list,))
        peel_hits = sum(1 for hit in reset_results if hit)
        self.shard_cache_hits += peel_hits
        self.shard_cache_misses += num_shards - peel_hits
        if self.exchange == EXCHANGE_ASYNC:

            def reinit(shard_id: int) -> None:
                # Re-arm a reborn shard's refinement scratch: the reset is
                # idempotent and self-contained, so running it mid-exchange
                # only touches the crashed shard.
                self._exec.resolve(
                    self._exec.submit("hindex_reset", shard_id, (anchor_list,))
                )

            self._exchange_until_fixpoint(
                "hindex_round",
                first_args=lambda shard_id: ({}, True),
                next_args=lambda updates: (updates, False),
                extract=lambda out: out,
                combine=min,
                reinit=reinit,
                reship_op="hindex_reship",
            )
        else:
            updates: List[Dict[int, int]] = [dict() for _ in range(num_shards)]
            first = True
            while True:
                # Round 1 must run everywhere; afterwards a shard with no
                # incoming updates has nothing to relax and is skipped.
                args: List[Optional[tuple]] = [
                    (updates[i], first) if first or updates[i] else None
                    for i in range(num_shards)
                ]
                self.shard_rounds_skipped += sum(1 for entry in args if entry is None)
                results = self._run("hindex_round", args)
                first = False
                updates, produced = self._merge_buckets(
                    [out for out in results if out is not None]
                )
                if not produced:
                    break

        core: List[float] = [0] * n
        for shard, part in zip(self.plan.shards, self._run("hindex_collect")):
            for li, gvid in enumerate(shard.owned):
                core[gvid] = part[li]
        for anchor in anchor_list:
            core[anchor] = math.inf

        # Phase B: shell-by-shell order reconstruction.  Shells are mutually
        # independent, so they are packed into one balanced batch per worker
        # (greedy LPT on member + same-shell-edge counts) and farmed out.
        frags_per_shard = []
        for frags, from_cache in self._run("shell_fragments"):
            frags_per_shard.append(frags)
            if from_cache:
                self.fragment_cache_hits += 1
            else:
                self.fragment_cache_misses += 1
        levels = sorted({c for frags in frags_per_shard for c in frags})
        shell_inputs = []
        for c in levels:
            fragments = [frags[c] for frags in frags_per_shard if c in frags]
            cost = sum(len(f[0]) + len(f[3]) for f in fragments)
            shell_inputs.append((cost, c, fragments))
        num_bins = max(1, self.num_workers)
        bins: List[List[tuple]] = [[] for _ in range(num_bins)]
        loads = [0] * num_bins
        for cost, c, fragments in sorted(shell_inputs, key=lambda item: -item[0]):
            lightest = min(range(num_bins), key=lambda b: loads[b])
            bins[lightest].append((c, fragments))
            loads[lightest] += cost
        self.rounds += 1
        with tracer.span("shard.round", op="shell_orders", shards=len([b for b in bins if b])):
            results = self._exec.run_tasks(
                [("shell_orders", (batch,)) for batch in bins if batch]
            )
        by_level: Dict[int, List[int]] = {}
        for part in results:
            for c, shell_order in part:
                by_level[c] = shell_order
        order: List[int] = []
        for c in levels:
            order.extend(by_level[c])
        order.extend(anchor_list)
        return core, order

    def k_core_ids(self, k: int, anchor_ids: Sequence[int] = ()) -> Set[int]:
        """The (anchored) k-core as a set of global ids (confluent cascade)."""
        if self.plan.num_vertices == 0:
            return set()
        anchor_list = sorted({int(a) for a in anchor_ids})

        def kernel() -> Set[int]:
            self._run("peel_reset", shared=(anchor_list,))
            self._cascade("peel_cascade", (k - 1,))
            survivors: Set[int] = set()
            for part in self._run("alive_collect"):
                survivors.update(part)
            return survivors

        with tracer.span("shard.k_core", k=k, anchors=len(anchor_list)):
            return self._supervised("k_core", kernel)

    def remaining_degree_ids(self, rank_ids: List[int]) -> Dict[int, int]:
        """``deg+`` for every id with ``rank_ids[id] >= 0`` (one round)."""

        def kernel() -> Dict[int, int]:
            merged: Dict[int, int] = {}
            for part in self._run("deg_plus", shared=(rank_ids,)):
                merged.update(part)
            return merged

        return self._supervised("deg_plus", kernel)

    def set_core_state(self, core: List[float], rank: Optional[List[int]]) -> None:
        """Broadcast the global core/rank arrays (anchored-index state).

        The broadcast is cached coordinator-side: it is the one piece of
        cross-kernel worker state, so recovery and degradation replay it to
        any shard whose worker-side copy was lost.
        """
        self._last_core_state = (core, rank)
        self._supervised(
            "set_core", lambda: self._run("set_core", shared=(core, rank))
        )

    def candidate_anchor_ids(self, k: int, order_pruning: bool) -> List[int]:
        """Theorem-3 candidates under the broadcast core/rank state."""

        def kernel() -> List[int]:
            out: List[int] = []
            for part in self._run("candidate_scan", shared=(k, order_pruning)):
                out.extend(part)
            return out

        return self._supervised("candidate_scan", kernel)

    def marginal_follower_ids(
        self, k: int, candidate_id: int, region_out: Optional[Set[int]] = None
    ) -> Tuple[Set[int], int]:
        """Region-restricted follower cascade; ``(follower ids, visited)``.

        The visited count — region size plus cascade removals — matches the
        dict/compact/numpy kernels exactly (both are order-independent).
        ``region_out`` receives the explored region ids when supplied.
        """
        with tracer.span("shard.marginal_followers", k=k) as mf_span:
            return self._supervised(
                "marginal_followers",
                lambda: self._marginal_follower_ids(
                    k, candidate_id, region_out, mf_span
                ),
            )

    def _marginal_follower_ids(
        self,
        k: int,
        candidate_id: int,
        region_out: Optional[Set[int]],
        mf_span: Any,
    ) -> Tuple[Set[int], int]:
        seeds: List[int] = []
        for part in self._run("region_init", shared=(k, candidate_id)):
            seeds.extend(part)
        region: Set[int] = set()
        frontier: List[int] = []
        for gvid in seeds:
            if gvid not in region:
                region.add(gvid)
                frontier.append(gvid)
        shard_of = self.plan.shard_of
        while frontier:
            buckets: List[List[int]] = [[] for _ in range(self.plan.num_shards)]
            for gvid in frontier:
                buckets[shard_of[gvid]].append(gvid)
                self.messages += 1
            parts = self._run("region_expand", [(bucket,) for bucket in buckets])
            frontier = []
            for part in parts:
                for gvid in part:
                    if gvid not in region:
                        region.add(gvid)
                        frontier.append(gvid)
        if region_out is not None:
            region_out.update(region)
        if not region:
            return set(), 0
        region_list = sorted(region)
        self._run("support_init", shared=(k, candidate_id, region_list))
        removed_total = self._cascade("support_cascade", ())
        survivors: Set[int] = set()
        for part in self._run("support_collect"):
            survivors.update(part)
        mf_span.set(region=len(region), gained=len(survivors))
        return survivors, len(region) + removed_total

    def full_shell_follower_ids(
        self, k: int, candidate_id: int
    ) -> Tuple[Set[int], int]:
        """Whole-shell follower cascade (OLAK baseline); same contract."""

        def kernel() -> Tuple[Set[int], int]:
            counts = self._run("support_init", shared=(k, candidate_id, None))
            shell_size = sum(counts)
            if shell_size == 0:
                return set(), 0
            removed_total = self._cascade("support_cascade", ())
            survivors: Set[int] = set()
            for part in self._run("support_collect"):
                survivors.update(part)
            return survivors, shell_size + removed_total

        with tracer.span("shard.full_shell_followers", k=k):
            return self._supervised("full_shell_followers", kernel)

    def stats(self) -> Dict[str, int]:
        """Observability counters, including the shard-local cache hits.

        ``shard_cache_hits`` / ``shard_cache_misses`` count round-1 peel
        reuses per shard per refresh, ``fragment_cache_hits`` /
        ``fragment_cache_misses`` the per-shard fragment reuses, and
        ``shard_rounds_skipped`` the per-shard op calls avoided because a
        shard had no incoming boundary traffic that round (lock-step mode;
        the async exchange never dispatches an idle shard in the first
        place).  ``exchange_waves`` counts completion waves of the async
        exchange and ``ops_dispatched`` its individual op submissions.
        ``cut_edges`` / ``cut_edge_ratio`` / ``balance`` echo the partition
        quality of the plan this coordinator runs on.

        Supervision counters: ``op_failures`` (shard ops that raised a
        retryable failure), ``op_retries`` (kernel-level retry attempts),
        ``exchange_resumes`` (async exchanges salvaged in place instead of
        restarted) and ``degradations`` (process→serial executor fallbacks).
        """
        counters = {name: self._metrics[name].value for name in _COUNTER_FIELDS}
        counters["cut_edges"] = self.plan.cut_edge_count
        counters["cut_edge_ratio"] = self.plan.cut_edge_ratio
        counters["balance"] = self.plan.balance
        return counters

    def snapshot(self) -> List[Dict[str, Any]]:
        """The same counters in the unified ``{name, type, value, labels}``
        schema shared with ``EngineStats`` and ``SolverStats`` (exporters,
        bench embedding)."""
        return self.registry.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardCoordinator(shards={self.plan.num_shards}, "
            f"executor={self.executor!r}, rounds={self.rounds}, "
            f"messages={self.messages}, "
            f"shard_cache_hits={self.shard_cache_hits})"
        )


def _make_counter_property(name: str) -> property:
    def fget(self: ShardCoordinator) -> int:
        return self._metrics[name].value

    def fset(self: ShardCoordinator, value: int) -> None:
        self._metrics[name].set(value)

    fget.__name__ = name
    return property(fget, fset, doc=f"Registry-backed view of ``shard.{name}``.")


for _name in _COUNTER_FIELDS:
    setattr(ShardCoordinator, _name, _make_counter_property(_name))
del _name
