"""Partitioned sharded execution: per-shard peeling with boundary exchange.

This package is the scale-out layer behind ``backend="sharded"``
(:mod:`repro.backends.sharded_backend`).  It splits an interned CSR snapshot
into per-shard subgraphs and re-expresses every cascade kernel of the library
as *local work + boundary exchange*:

* :mod:`repro.shard.partition` — pluggable partitioners (hash-by-id default,
  degree-balanced greedy, and a locality-aware community partitioner that
  minimises cut edges) producing picklable per-shard CSR states with
  explicit boundary-vertex and cut-edge tables plus measured partition
  quality (cut-edge count/ratio, balance).
* :mod:`repro.shard.coordinator` — the :class:`ShardCoordinator`, which runs
  per-shard peeling/cascade ops and routes boundary updates (residual
  degrees and follower support for cut vertices) until fixpoint — by
  default through an asynchronous futures-based exchange where stragglers
  only delay the shards that depend on them, or through the lock-step
  round scheme (``exchange="lockstep"``) kept for comparison — over either
  a serial in-process executor or a spawn-safe process-pool executor with
  one dedicated worker process per shard.
* :mod:`repro.shard.shm` — shared-memory packing of the static per-shard
  CSR arrays so process workers attach zero-copy views instead of
  unpickling whole states.

Every kernel is *bit-identical* to the dict/compact/numpy backends: deletion
cascades are confluent (the surviving set does not depend on removal
interleaving), core-bound refinement is a monotone relaxation with a unique
fixpoint, and the removal order is reconstructed shell by shell with the
same packed-heap cascade the other snapshot backends use.
"""

from repro.shard import shm
from repro.shard.coordinator import (
    EXCHANGE_ASYNC,
    EXCHANGE_LOCKSTEP,
    EXCHANGES,
    ShardCoordinator,
    shutdown_shard_pools,
)
from repro.shard.partition import (
    CommunityPartitioner,
    DegreeBalancedPartitioner,
    HashPartitioner,
    PARTITIONERS,
    ShardPlan,
    ShardState,
    get_partitioner,
    partition_compact_graph,
)
from repro.shard.shm import SharedShardHandle

__all__ = [
    "CommunityPartitioner",
    "DegreeBalancedPartitioner",
    "EXCHANGE_ASYNC",
    "EXCHANGE_LOCKSTEP",
    "EXCHANGES",
    "HashPartitioner",
    "PARTITIONERS",
    "ShardCoordinator",
    "SharedShardHandle",
    "ShardPlan",
    "ShardState",
    "get_partitioner",
    "partition_compact_graph",
    "shm",
    "shutdown_shard_pools",
]
