"""Partitioned sharded execution: per-shard peeling with boundary exchange.

This package is the scale-out layer behind ``backend="sharded"``
(:mod:`repro.backends.sharded_backend`).  It splits an interned CSR snapshot
into per-shard subgraphs and re-expresses every cascade kernel of the library
as rounds of *local work + boundary exchange*:

* :mod:`repro.shard.partition` — pluggable partitioners (hash-by-id default,
  degree-balanced greedy alternative) producing picklable per-shard CSR
  states with explicit boundary-vertex and cut-edge tables.
* :mod:`repro.shard.coordinator` — the :class:`ShardCoordinator`, which runs
  per-shard peeling/cascade waves and iterates a boundary-exchange step
  (updated residual degrees and follower support for cut vertices) until
  fixpoint, over either a serial in-process executor or a spawn-safe
  process-pool executor with one dedicated worker process per shard.

Every kernel is *bit-identical* to the dict/compact/numpy backends: deletion
cascades are confluent (the surviving set does not depend on removal
interleaving), core numbers are level-synchronised exactly like the numpy
wave peel, and the removal order is reconstructed shell by shell with the
same packed-heap cascade the other snapshot backends use.
"""

from repro.shard.coordinator import ShardCoordinator, shutdown_shard_pools
from repro.shard.partition import (
    DegreeBalancedPartitioner,
    HashPartitioner,
    PARTITIONERS,
    ShardPlan,
    ShardState,
    get_partitioner,
    partition_compact_graph,
)

__all__ = [
    "DegreeBalancedPartitioner",
    "HashPartitioner",
    "PARTITIONERS",
    "ShardCoordinator",
    "ShardPlan",
    "ShardState",
    "get_partitioner",
    "partition_compact_graph",
    "shutdown_shard_pools",
]
