"""Shared-memory packing for :class:`~repro.shard.partition.ShardState`.

The process executor of :mod:`repro.shard.coordinator` pins each shard to a
dedicated spawn worker.  Before this module, loading a shard meant pickling
the whole :class:`ShardState` — every CSR array, every ghost table — through
the pool's pipe and unpickling element by element on the other side.  Here
the static arrays are packed instead into **one**
:class:`multiprocessing.shared_memory.SharedMemory` block per shard:

* :meth:`ShardState.to_shared` (a thin wrapper over :func:`pack_state`)
  copies every static ``int`` array — ``owned``, ``indptr``, ``encoded``,
  ``degrees``, the four ghost tables and the CSR-flattened ghost reverse
  adjacency — into a single 8-byte-aligned block and returns a tiny picklable
  :class:`SharedShardHandle` (the block name plus field lengths).
* :func:`attach_state` (the engine behind :meth:`ShardState.from_shared`)
  maps the block **in place**: the big read-only arrays become zero-copy
  ``memoryview`` slices over the shared buffer, so a worker's load cost is an
  ``mmap`` plus two small dict builds, independent of the edge count.  The
  worker keeps the attachment alive for the coordinator's lifetime (the
  mutable cascade scratch the ops attach is per-process, exactly as before).

Lifetime is owned by the *creator* (the coordinator process): every block is
recorded in a module registry keyed by coordinator, and
:func:`unlink_blocks` — called from ``ShardCoordinator.close()``, its
``weakref.finalize`` hook and the module ``atexit`` hook — unlinks them even
if a worker crashed mid-exchange (the attachment in a dead worker cannot pin
a POSIX shm segment's *name*; the memory itself is reclaimed when the last
map disappears).  Workers deliberately attach *untracked* — attaching is not
owning, and letting the :mod:`multiprocessing.resource_tracker` claim an
attachment would unlink the segment when one worker exits, tearing shared
state out from under its siblings.  On CPython 3.13+ that is the ``track=False``
flag; earlier interpreters register every ``SharedMemory(name=...)`` with the
tracker unconditionally, so :func:`_attach_untracked` suppresses the
registration call for the duration of the attach instead — sending a
compensating ``unregister`` after the fact (the documented pre-3.13
workaround) races when several workers share one tracker process and attach
the same block, leaving spurious ``KeyError`` tracebacks in the tracker.
"""

from __future__ import annotations

import atexit
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Sequence, Tuple

#: Field order inside the block.  Every field is an ``int64`` array; the
#: handle stores one length per field and the block stores them back to back.
_FIELDS = (
    "owned",
    "indptr",
    "encoded",
    "degrees",
    "ghost_gvid",
    "ghost_owner",
    "ghost_deg",
    "ghost_rev_indptr",
    "ghost_rev_data",
)

_ITEM = 8  # bytes per int64 entry


class SharedShardHandle:
    """A picklable pointer to one shard's packed shared-memory block.

    Carries no graph data: only the block name, the per-field array lengths
    (so :func:`attach_state` can slice the buffer without a header parse) and
    the scalar shard metadata.
    """

    __slots__ = ("block_name", "shard_id", "num_shards", "lengths")

    def __init__(
        self,
        block_name: str,
        shard_id: int,
        num_shards: int,
        lengths: Tuple[int, ...],
    ) -> None:
        self.block_name = block_name
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.lengths = lengths

    def __getstate__(self) -> tuple:
        return (self.block_name, self.shard_id, self.num_shards, self.lengths)

    def __setstate__(self, state: tuple) -> None:
        self.block_name, self.shard_id, self.num_shards, self.lengths = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedShardHandle({self.block_name!r}, shard={self.shard_id}/"
            f"{self.num_shards}, ints={sum(self.lengths)})"
        )


class _CSRRows:
    """Read-only list-of-rows view over a CSR ``(indptr, data)`` pair.

    Presents the exact sequence interface the cascade ops use on
    ``ShardState.ghost_rev`` (``len``, iteration, ``rows[i]`` yielding an
    iterable of ints) without materialising per-row lists — each row is a
    zero-copy ``memoryview`` slice of the shared block.
    """

    __slots__ = ("_indptr", "_data")

    def __init__(self, indptr: Sequence[int], data: Sequence[int]) -> None:
        self._indptr = indptr
        self._data = data

    def __len__(self) -> int:
        return len(self._indptr) - 1

    def __getitem__(self, row: int) -> Sequence[int]:
        if row < 0:
            row += len(self)
        if not 0 <= row < len(self):
            raise IndexError(row)
        return self._data[self._indptr[row] : self._indptr[row + 1]]

    def __iter__(self):
        indptr = self._indptr
        data = self._data
        for row in range(len(self)):
            yield data[indptr[row] : indptr[row + 1]]


# ---------------------------------------------------------------------------
# Creator-side registry: every block this process created, keyed by owner
# (one coordinator = one key), unlinked on close/GC/atexit.
# ---------------------------------------------------------------------------
_BLOCKS: Dict[str, List[shared_memory.SharedMemory]] = {}
_BLOCKS_LOCK = threading.Lock()


def register_block(owner_key: str, block: shared_memory.SharedMemory) -> None:
    """Record a created block for :func:`unlink_blocks` cleanup."""
    with _BLOCKS_LOCK:
        _BLOCKS.setdefault(owner_key, []).append(block)


def unlink_blocks(owner_key: str) -> int:
    """Close and unlink every block created under ``owner_key``.

    Idempotent and crash-tolerant: a block whose name is already gone (e.g.
    an operator cleaned ``/dev/shm`` by hand) is skipped silently.  Returns
    the number of blocks unlinked.
    """
    with _BLOCKS_LOCK:
        blocks = _BLOCKS.pop(owner_key, [])
    unlinked = 0
    for block in blocks:
        try:
            block.close()
            block.unlink()
            unlinked += 1
        except FileNotFoundError:  # pragma: no cover - external cleanup won
            pass
    return unlinked


def live_block_names() -> List[str]:
    """Names of every not-yet-unlinked block this process created (tests)."""
    with _BLOCKS_LOCK:
        return [block.name for blocks in _BLOCKS.values() for block in blocks]


def _unlink_all() -> None:
    with _BLOCKS_LOCK:
        keys = list(_BLOCKS)
    for key in keys:
        unlink_blocks(key)


atexit.register(_unlink_all)


try:  # pragma: no cover - version probe
    import inspect

    _HAS_TRACK_KWARG = "track" in inspect.signature(
        shared_memory.SharedMemory.__init__
    ).parameters
except Exception:  # pragma: no cover - exotic interpreter
    _HAS_TRACK_KWARG = False

_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker registration.

    CPython < 3.13 registers every ``SharedMemory(name=...)`` attachment with
    the resource tracker, which then unlinks the segment when the attaching
    process exits — wrong for a worker that merely maps a block the
    coordinator owns.  3.13+ exposes ``track=False`` for exactly this; on
    older interpreters the registration call is suppressed for the duration
    of the attach (serialised by a lock, so a concurrent attach of a
    different block cannot slip through the patched window unregistered...
    which would be harmless anyway — untracked is the state we want).
    """
    if _HAS_TRACK_KWARG:  # pragma: no cover - 3.13+ only
        return shared_memory.SharedMemory(name=name, track=False)
    try:
        from multiprocessing import resource_tracker
    except Exception:  # pragma: no cover - exotic interpreter
        return shared_memory.SharedMemory(name=name)
    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip_shm_register(rname, rtype):  # pragma: no cover - passthrough
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shm_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def pack_state(state: "ShardState", owner_key: str) -> SharedShardHandle:
    """Pack ``state``'s static arrays into one shm block; register it."""
    ghost_rev_indptr: List[int] = [0]
    ghost_rev_data: List[int] = []
    for local_neighbours in state.ghost_rev:
        ghost_rev_data.extend(local_neighbours)
        ghost_rev_indptr.append(len(ghost_rev_data))
    arrays: Tuple[Sequence[int], ...] = (
        state.owned,
        state.indptr,
        state.encoded,
        state.degrees,
        state.ghost_gvid,
        state.ghost_owner,
        state.ghost_deg,
        ghost_rev_indptr,
        ghost_rev_data,
    )
    lengths = tuple(len(arr) for arr in arrays)
    total = sum(lengths)
    block = shared_memory.SharedMemory(create=True, size=max(total, 1) * _ITEM)
    view = memoryview(block.buf).cast("q")
    cursor = 0
    for arr in arrays:
        view[cursor : cursor + len(arr)] = memoryview(_as_int64(arr))
        cursor += len(arr)
    view.release()
    register_block(owner_key, block)
    return SharedShardHandle(
        block_name=block.name,
        shard_id=state.shard_id,
        num_shards=state.num_shards,
        lengths=lengths,
    )


def _as_int64(arr: Sequence[int]):
    import array

    return array.array("q", arr)


def attach_state(
    handle: SharedShardHandle,
) -> Tuple["ShardState", shared_memory.SharedMemory]:
    """Rebuild a :class:`ShardState` over a zero-copy view of the block.

    Returns ``(state, attachment)``; the caller owns the attachment and must
    keep it alive as long as the state is used (the worker keeps one per
    loaded shard for the coordinator's lifetime) and ``close()`` it when the
    state is dropped.  The attachment is untracked (:func:`_attach_untracked`)
    — the creator owns the segment's name, not the attacher.
    """
    from repro.shard.partition import ShardState
    from repro.resilience import faults

    faults.fire("shm.attach", shard=handle.shard_id)
    block = _attach_untracked(handle.block_name)
    view = memoryview(block.buf).cast("q")
    fields = {}
    cursor = 0
    for name, length in zip(_FIELDS, handle.lengths):
        fields[name] = view[cursor : cursor + length]
        cursor += length
    ghost_rev = _CSRRows(fields["ghost_rev_indptr"], fields["ghost_rev_data"])
    state = ShardState.__new__(ShardState)
    state.shard_id = handle.shard_id
    state.num_shards = handle.num_shards
    state.owned = fields["owned"]
    state.local_of = {gvid: local for local, gvid in enumerate(fields["owned"])}
    state.indptr = fields["indptr"]
    state.encoded = fields["encoded"]
    state.degrees = fields["degrees"]
    state.ghost_gvid = fields["ghost_gvid"]
    state.ghost_owner = fields["ghost_owner"]
    state.ghost_deg = fields["ghost_deg"]
    state.ghost_rev = ghost_rev
    state.ghost_of = {
        gvid: ghost for ghost, gvid in enumerate(fields["ghost_gvid"])
    }
    return state, block
