"""Command-line interface: run any paper experiment from the shell.

Installed as the ``avt-bench`` console script::

    avt-bench --list                      # show every experiment id
    avt-bench fig03                       # Figure 3 on the quick profile
    avt-bench fig05 --profile medium      # medium profile (all six datasets)
    avt-bench table4 --csv out.csv        # also dump the raw rows as CSV
    avt-bench summary --dataset gnutella  # one-problem comparison of all trackers
    avt-bench serve-sim --dataset gnutella  # online engine simulation
    avt-bench backends                    # registered execution backends
    avt-bench calibrate --out cal.json    # measured backend sweep for "auto"
    avt-bench trace critical-path t.jsonl # analyze a --trace-out span file
    avt-bench trace flame t.jsonl --out collapsed.txt   # flamegraph input
    avt-bench trace stragglers t.jsonl    # shard wave utilization report
    avt-bench trace tree a.jsonl --diff b.jsonl         # latency delta by span
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.avt import metrics
from repro.bench.experiments import EXPERIMENTS, get_experiment, resolve_profile
from repro.bench.reporting import format_table
from repro.bench.runner import default_trackers, run_tracker
from repro.bench.workloads import build_problem
from repro.errors import ReproError
from repro.graph.datasets import DATASET_NAMES, dataset_summary


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="avt-bench",
        description="Reproduce the tables and figures of the Anchored Vertex Tracking paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=(
            "experiment id (fig03..fig12, table4, ablation_*), 'summary', "
            "'datasets', 'backends', 'calibrate', 'serve-sim', or 'trace'"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--profile",
        default=None,
        choices=["quick", "medium", "full"],
        help="execution profile (default: AVT_BENCH_PROFILE or 'quick')",
    )
    parser.add_argument("--csv", type=Path, default=None, help="write the raw result rows to this CSV file")
    parser.add_argument("--dataset", default="gnutella", choices=DATASET_NAMES, help="dataset for 'summary'")
    parser.add_argument("--k", type=int, default=None, help="degree constraint for 'summary'")
    parser.add_argument("--budget", type=int, default=5, help="anchor budget for 'summary'")
    parser.add_argument("--snapshots", type=int, default=10, help="number of snapshots for 'summary'")
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale for 'summary'")
    serve = parser.add_argument_group("serve-sim options")
    serve.add_argument(
        "--queries-per-step",
        type=int,
        default=2,
        help="queries interleaved after each replayed delta (>= 2 exercises the cache)",
    )
    serve.add_argument("--batch-size", type=int, default=64, help="ingest auto-flush threshold")
    serve.add_argument("--cache-capacity", type=int, default=256, help="result cache capacity")
    serve.add_argument(
        "--cold", action="store_true", help="disable warm (IncAVT-refresh) query answering"
    )
    serve.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="write a checkpoint here mid-replay, restore it, and verify the answer matches",
    )
    serve.add_argument(
        "--backend",
        default="auto",
        help=(
            "execution backend for the engine: 'auto' or any registered "
            "name (see 'avt-bench backends')"
        ),
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --backend sharded (default: REPRO_SHARD_COUNT or 4)",
    )
    serve.add_argument(
        "--partitioner",
        default=None,
        help=(
            "partitioner for --backend sharded: 'hash', 'degree_balanced' or "
            "'community' (default: REPRO_SHARD_PARTITIONER or 'hash')"
        ),
    )
    serve.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help=(
            "enable hierarchical tracing for the run and stream spans to this "
            "JSON-lines file (see repro.obs)"
        ),
    )
    serve.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help=(
            "write the run's metrics registry snapshot here; '.prom'/'.txt' "
            "selects Prometheus text exposition, anything else JSON"
        ),
    )
    serve.add_argument(
        "--inject-faults",
        action="store_true",
        help=(
            "chaos leg (requires --backend sharded): arm a persistent "
            "shard-op fault for the replay and verify every query is still "
            "answered via degradation (exit 2 if the engine never degraded "
            "or any query failed)"
        ),
    )
    calibrate = parser.add_argument_group("calibrate options")
    calibrate.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "write the calibration table (JSON) here; load it later via "
            "load_calibration() or the REPRO_CALIBRATION environment variable"
        ),
    )
    calibrate.add_argument(
        "--max-vertices",
        type=int,
        default=None,
        help="cap every size band's sample graph at this many vertices (smoke sweeps)",
    )
    calibrate.add_argument(
        "--repetitions",
        type=int,
        default=3,
        help="timing repetitions per (band, workload, backend) cell; minimum is kept",
    )
    return parser


def _run_summary(args: argparse.Namespace) -> int:
    """Run every tracker on a single problem and print the comparison table."""
    problem = build_problem(
        args.dataset,
        k=args.k,
        budget=args.budget,
        num_snapshots=args.snapshots,
        scale=args.scale,
    )
    results = []
    for spec in default_trackers():
        result, _ = run_tracker(problem, spec)
        results.append(result)
    print(
        f"AVT comparison on {problem.name} "
        f"(k={problem.k}, l={problem.budget}, T={problem.num_snapshots}, scale={args.scale})"
    )
    print(format_table(metrics.summarise(results)))
    print()
    print(
        "IncAVT speed-up vs OLAK: "
        f"{metrics.speedup(results, baseline='OLAK', target='IncAVT'):.1f}x, "
        "vs Greedy: "
        f"{metrics.speedup(results, baseline='Greedy', target='IncAVT'):.1f}x"
    )
    return 0


def _resolve_cli_backend(args: argparse.Namespace):
    """Turn the serve-sim ``--backend``/``--shards``/``--partitioner`` flags
    into a policy."""
    from repro.backends import BACKEND_SHARDED, get_backend, registered_backends
    from repro.errors import ParameterError

    backend = args.backend
    if backend != "auto" and backend not in registered_backends():
        raise ParameterError(
            f"unknown backend {backend!r}; "
            f"expected 'auto' or one of {sorted(registered_backends())}"
        )
    overrides = {}
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    if getattr(args, "partitioner", None) is not None:
        overrides["partitioner"] = args.partitioner
    if overrides:
        if backend != BACKEND_SHARDED:
            flags = " / ".join(
                flag
                for flag, present in (
                    ("--shards", args.shards is not None),
                    ("--partitioner", getattr(args, "partitioner", None) is not None),
                )
                if present
            )
            raise ParameterError(f"{flags} requires --backend sharded")
        return get_backend(BACKEND_SHARDED).with_config(overrides)
    return backend


def _run_serve_sim(args: argparse.Namespace) -> int:
    """Replay a dataset's deltas through the streaming engine with interleaved queries.

    ``--trace-out`` enables hierarchical tracing for the duration of the run
    and streams every finished span to a JSON-lines file; ``--metrics-out``
    writes the engine's metrics-registry snapshot (plus the process-wide
    registry) after the replay, as Prometheus text or JSON by extension.
    """
    from repro.obs import JsonLinesSpanSink, global_registry, tracer, write_metrics

    sink = None
    previous_enabled = None
    if args.trace_out is not None:
        sink = JsonLinesSpanSink(args.trace_out)
        tracer.add_sink(sink)
        previous_enabled = tracer.set_enabled(True)
    chaos = None
    if args.inject_faults:
        # Arm a persistent shard-op fault: every sharded kernel call fails, so
        # the replay only succeeds through supervised degradation (sharded ->
        # serial -> compact).  Cleared in the finally so a crashed replay
        # cannot leave the process chaos-armed.
        from repro.resilience import FaultSpec, faults as chaos

        chaos.install_plan(FaultSpec("shard.op", "error", times=0))
    engine = None
    try:
        # When we own the sink, the JSONL file is the trace of record — drain
        # the in-process buffer as the replay progresses so long replays stay
        # bounded in memory instead of filling the 50k span buffer.
        code, engine = _serve_sim_replay(args, drain_spans=sink is not None)
    finally:
        if chaos is not None:
            chaos.clear_plan()
        if sink is not None:
            tracer.set_enabled(previous_enabled)
            tracer.remove_sink(sink)
            sink.close()
    if sink is not None:
        print(f"trace written to {args.trace_out} ({sink.spans_written} spans)")
    if args.metrics_out is not None and engine is not None:
        snapshot = engine.stats.registry.snapshot() + global_registry().snapshot()
        fmt = write_metrics(snapshot, args.metrics_out)
        print(f"metrics snapshot ({fmt}) written to {args.metrics_out}")
    return code


def _serve_sim_replay(args: argparse.Namespace, drain_spans: bool = False):
    """The serve-sim replay loop; returns ``(exit_code, engine)``."""
    from repro.engine import StreamingAVTEngine
    from repro.obs import tracer

    if args.inject_faults:
        from repro.backends import BACKEND_SHARDED
        from repro.errors import ParameterError

        if args.backend != BACKEND_SHARDED:
            raise ParameterError("--inject-faults requires --backend sharded")

    problem = build_problem(
        args.dataset,
        k=args.k,
        budget=args.budget,
        num_snapshots=args.snapshots,
        scale=args.scale,
    )
    evolving = problem.evolving_graph
    engine = StreamingAVTEngine(
        evolving.base,
        cache_capacity=args.cache_capacity,
        batch_size=args.batch_size,
        warm_queries=not args.cold,
        backend=_resolve_cli_backend(args),
    )
    queries_per_step = max(1, args.queries_per_step)
    print(
        f"serve-sim on {problem.name} (k={problem.k}, l={problem.budget}, "
        f"T={problem.num_snapshots}, scale={args.scale}, "
        f"backend={engine.backend}): replaying "
        f"{evolving.total_edge_changes()} edge events with {queries_per_step} "
        f"queries per step"
    )

    def checkpoint_and_verify(step: int, result) -> bool:
        engine.checkpoint(args.checkpoint)
        restored = StreamingAVTEngine.restore(args.checkpoint)
        check = restored.query(problem.k, problem.budget)
        matches = check.anchors == result.anchors and check.followers == result.followers
        print(
            f"checkpoint at t={step} -> {args.checkpoint} "
            f"(restore verified: {'ok' if matches else 'MISMATCH'})"
        )
        return matches

    result = engine.query(problem.k, problem.budget)
    print(f"t=0  {result.summary()}")
    checkpoint_step = max(1, len(evolving.deltas) // 2)
    checkpointed = False
    for step, delta in enumerate(evolving.deltas, start=1):
        engine.ingest(delta)
        for _ in range(queries_per_step):
            result = engine.query(problem.k, problem.budget)
        print(
            f"t={step}  {result.summary()} "
            f"[version={engine.graph_version}, cached={len(engine.cache)}]"
        )
        if drain_spans:
            tracer.drain()
        if args.checkpoint is not None and step == checkpoint_step:
            checkpointed = True
            if not checkpoint_and_verify(step, result):
                return 2, engine
    if args.checkpoint is not None and not checkpointed:
        # No deltas to replay (e.g. --snapshots 1): honour --checkpoint anyway.
        if not checkpoint_and_verify(0, result):
            return 2, engine

    print()
    print(engine.stats.summary())
    if evolving.deltas and queries_per_step >= 2 and engine.stats.cache_hits < 1:
        # Whenever the replay repeated queries per step at least the repeats
        # must hit; a single query per step (or an empty replay) makes no such
        # promise.
        print("error: expected at least one cache hit", file=sys.stderr)
        return 2, engine
    if args.inject_faults:
        health = engine.health()
        print(
            f"chaos: status={health['status']} backend={health['backend']} "
            f"degradations={engine.stats.degradations} "
            f"recovery_probes={engine.stats.recovery_probes} "
            f"recoveries={engine.stats.recoveries}"
        )
        if engine.stats.degradations < 1:
            # Reaching here means every query was answered; with the fault
            # armed that is only legitimate via the degradation path.
            print(
                "error: --inject-faults replay never degraded "
                "(fault plan did not reach the sharded backend)",
                file=sys.stderr,
            )
            return 2, engine
    return 0, engine


def _run_datasets() -> int:
    """Print summary statistics of every bundled dataset stand-in."""
    rows = [dataset_summary(name, num_snapshots=5, scale=0.5) for name in DATASET_NAMES]
    print(format_table(rows))
    return 0


def _run_backends() -> int:
    """Print every registered execution backend with availability and config."""
    from repro.backends import backend_info

    rows = []
    for info in backend_info():
        config = info["config"]
        rows.append(
            {
                "backend": info["name"],
                "available": "yes" if info["available"] else "no",
                "reason": info["reason"] or "-",
                "auto_priority": info["auto_priority"],
                "configuration": (
                    " ".join(f"{key}={value}" for key, value in sorted(config.items()))
                    if config
                    else "-"
                ),
            }
        )
    print(format_table(rows))
    print()
    print(
        "'auto' resolves by graph size and workload (see repro.backends.registry); "
        "the sharded backend reads REPRO_SHARD_COUNT / REPRO_SHARD_PARTITIONER / "
        "REPRO_SHARD_EXECUTOR / REPRO_SHARD_WORKERS / REPRO_SHARD_EXCHANGE / "
        "REPRO_SHARD_SHM."
    )
    print()
    print(_partition_stats_report())
    return 0


def _partition_stats_report(num_shards: int = 4) -> str:
    """Per-partitioner cut-edge/balance stats on a small clustered sample.

    Partitions one planted-community graph (the paper's running-example
    shape) with every registered partitioner so ``avt-bench backends`` shows
    what the ``--partitioner`` choice buys before anyone runs a workload.
    """
    from repro.graph.compact import CompactGraph
    from repro.graph.generators import planted_community_graph
    from repro.shard.partition import PARTITIONERS, partition_compact_graph

    graph = planted_community_graph(
        num_communities=num_shards,
        community_size=50,
        intra_edge_probability=0.2,
        inter_edges=60,
        seed=42,
    )
    cgraph = CompactGraph.from_graph(graph, ordered=True)
    rows = []
    for name in sorted(PARTITIONERS):
        plan = partition_compact_graph(cgraph, num_shards, name)
        rows.append(
            {
                "partitioner": name,
                "cut_edges": plan.cut_edge_count,
                "cut_ratio": f"{plan.cut_edge_ratio:.3f}",
                "balance": f"{plan.balance:.2f}",
                "shard_sizes": "/".join(
                    str(state.num_owned) for state in plan.shards
                ),
            }
        )
    header = (
        f"partition quality on a planted-community sample "
        f"(n={cgraph.num_vertices}, m={cgraph.num_edges}, "
        f"{num_shards} shards; lower cut_ratio = less boundary traffic):"
    )
    return header + "\n" + format_table(rows)


def _run_calibrate(args: argparse.Namespace) -> int:
    """Run a calibration sweep and print (and optionally persist) the winners.

    The resulting table is what ``backend="auto"`` consults for amortised
    workloads once installed — see :mod:`repro.backends.calibrate`.
    """
    from repro.backends import CalibrationSpec, backend_availability, run_calibration

    spec = CalibrationSpec(repetitions=max(1, args.repetitions))
    if args.max_vertices is not None:
        spec = spec.scaled(max(2, args.max_vertices))
    skipped = {name: reason for name, reason in backend_availability().items() if reason}
    for name, reason in sorted(skipped.items()):
        print(f"skipping backend '{name}': {reason}")
    print(
        f"calibrating {len(spec.bands)} size bands x {len(spec.workloads)} workloads "
        f"(best of {spec.repetitions} repetitions)..."
    )
    table = run_calibration(spec)
    rows = []
    for band in table.bands:
        timings = band["timings"]
        rows.append(
            {
                "band": band["name"],
                "vertices": band["sample_vertices"],
                "edges": band["sample_edges"],
                "winner": band["winner"] or "-",
                "total_seconds": " ".join(
                    f"{name}={sum(per.values()):.4f}" for name, per in sorted(timings.items())
                ),
            }
        )
    print(format_table(rows))
    if args.out is not None:
        table.save(args.out)
        print(f"calibration table written to {args.out}")
        print(f"activate it with REPRO_CALIBRATION={args.out} or load_calibration()")
    return 0


def _load_trace(path: Path):
    from repro.errors import ParameterError
    from repro.obs import read_spans_jsonl

    try:
        spans = read_spans_jsonl(path)
    except OSError as error:
        raise ParameterError(f"cannot read trace {path}: {error}") from error
    if not spans:
        raise ParameterError(f"trace {path} contains no spans")
    return spans


def _pick_trace_root(spans, root_name: Optional[str]):
    """The longest root span (optionally restricted by name) in a trace file."""
    from repro.errors import ParameterError
    from repro.obs import build_span_trees

    roots = build_span_trees(spans)
    if root_name is not None:
        roots = [root for root in roots if root.name == root_name]
        if not roots:
            raise ParameterError(f"no root span named {root_name!r} in the trace")
    return max(roots, key=lambda root: root.duration)


def _print_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_traces

    report = diff_traces(_load_trace(args.trace), _load_trace(args.diff))
    rows = [
        {
            "span": entry["name"],
            "self_a_ms": f"{entry['self_seconds_a'] * 1e3:.3f}",
            "self_b_ms": f"{entry['self_seconds_b'] * 1e3:.3f}",
            "delta_ms": f"{entry['delta_seconds'] * 1e3:+.3f}",
            "count_a": entry["count_a"],
            "count_b": entry["count_b"],
        }
        for entry in report["by_name"][: args.top]
    ]
    print(f"latency delta by span name: {args.trace} -> {args.diff}")
    print(format_table(rows))
    print(
        f"total self time {report['total_self_seconds_a'] * 1e3:.3f}ms -> "
        f"{report['total_self_seconds_b'] * 1e3:.3f}ms "
        f"({report['delta_seconds'] * 1e3:+.3f}ms)"
    )
    return 0


def _run_trace(argv: Sequence[str]) -> int:
    """``avt-bench trace`` — offline analytics over a ``--trace-out`` file."""
    from repro.obs import (
        critical_path,
        flame_stacks,
        render_collapsed,
        render_tree,
        straggler_report,
    )

    parser = argparse.ArgumentParser(
        prog="avt-bench trace",
        description=(
            "Analyze a span trace captured with --trace-out (JSON lines): "
            "span trees, critical paths, flamegraph stacks, shard straggler "
            "reports, and two-trace latency diffs."
        ),
    )
    parser.add_argument(
        "command",
        choices=["tree", "critical-path", "flame", "stragglers"],
        help="analysis to run over the trace",
    )
    parser.add_argument("trace", type=Path, help="JSON-lines span file")
    parser.add_argument(
        "--diff",
        type=Path,
        default=None,
        help=(
            "second trace: print the per-span-name self-time delta between "
            "the two traces instead of the single-trace report"
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="restrict tree/critical-path to roots with this span name",
    )
    parser.add_argument("--depth", type=int, default=None, help="tree: printed depth limit")
    parser.add_argument("--top", type=int, default=15, help="rows/roots to print")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="flame: write the collapsed stacks to this file instead of stdout",
    )
    args = parser.parse_args(argv)

    if args.diff is not None:
        return _print_trace_diff(args)
    spans = _load_trace(args.trace)

    if args.command == "tree":
        from repro.obs import build_span_trees

        roots = build_span_trees(spans)
        if args.root is not None:
            roots = [root for root in roots if root.name == args.root]
        roots = sorted(roots, key=lambda root: root.duration, reverse=True)[: args.top]
        print(
            f"{len(spans)} spans in {args.trace}; "
            f"showing the {len(roots)} longest trace(s):"
        )
        print(render_tree(roots, max_depth=args.depth))
        return 0

    if args.command == "critical-path":
        root = _pick_trace_root(spans, args.root)
        steps = critical_path(root)
        wall = root.duration
        covered = sum(step.seconds for step in steps)
        rows = [
            {
                "span": step.node.name,
                "on_path_ms": f"{step.seconds * 1e3:.3f}",
                "pct_of_wall": f"{step.seconds / wall * 100:.1f}%" if wall else "-",
            }
            for step in steps
        ]
        print(
            f"critical path through {root.name!r} "
            f"(trace {root.trace_id}, wall {wall * 1e3:.3f}ms):"
        )
        print(format_table(rows))
        pct = covered / wall * 100 if wall else 100.0
        print(
            f"critical path covers {covered * 1e3:.3f}ms of "
            f"{wall * 1e3:.3f}ms wall ({pct:.1f}%)"
        )
        return 0

    if args.command == "flame":
        collapsed = render_collapsed(flame_stacks(spans))
        if args.out is not None:
            args.out.write_text(collapsed + "\n", encoding="utf-8")
            print(
                f"{len(collapsed.splitlines())} collapsed stacks written to "
                f"{args.out} (feed to flamegraph.pl / speedscope / inferno)"
            )
        else:
            print(collapsed)
        return 0

    # stragglers
    report = straggler_report(spans)
    if not report["num_exchanges"]:
        print(
            "no shard.exchange spans in the trace — run the workload with "
            "--backend sharded (async exchange) to produce wave spans"
        )
        return 0
    rows = []
    for entry in report["exchanges"][: args.top]:
        worst = entry["stragglers"][0] if entry["stragglers"] else "-"
        busy = entry["shards"].get(worst, {}).get("busy_fraction", 0.0)
        rows.append(
            {
                "op": entry["op"],
                "wall_ms": f"{entry['wall_seconds'] * 1e3:.3f}",
                "waves": entry["waves"],
                "ops": entry["ops"],
                "resubmits": entry["resubmissions"],
                "skew": f"{entry['skew']:.2f}",
                "straggler": f"shard {worst} ({busy * 100:.0f}% busy)",
            }
        )
    print(format_table(rows))
    print(
        f"totals: {report['num_exchanges']} exchanges, "
        f"{report['total_waves']} waves, "
        f"{report['total_ops_dispatched']} ops dispatched "
        "(reconcile with the coordinator's exchange_waves / ops_dispatched counters)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``avt-bench`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        # The trace analyzer has its own positional grammar (command + file);
        # dispatch before the experiment parser sees it.
        try:
            return _run_trace(argv[1:])
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print("Available experiments:")
        for name in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<22} {doc}")
        print("  summary                Compare all trackers on one dataset (see --dataset).")
        print("  datasets               Show the bundled dataset stand-ins.")
        print("  backends               Show the registered execution backends.")
        print("  calibrate              Measure backends per size band for the 'auto' policy.")
        print("  serve-sim              Replay a dataset through the online streaming engine.")
        print("  trace                  Analyze a --trace-out span file (tree, critical-path,")
        print("                         flame, stragglers; --diff compares two traces).")
        return 0

    try:
        if args.experiment == "summary":
            return _run_summary(args)
        if args.experiment == "datasets":
            return _run_datasets()
        if args.experiment == "backends":
            return _run_backends()
        if args.experiment == "calibrate":
            return _run_calibrate(args)
        if args.experiment == "serve-sim":
            return _run_serve_sim(args)
        experiment = get_experiment(args.experiment)
        profile = resolve_profile(args.profile)
        print(f"Running {args.experiment} with profile '{profile.name}' (scale={profile.scale})...")
        table, report = experiment(profile)
        print(report)
        if args.csv is not None:
            args.csv.write_text(table.to_csv(), encoding="utf-8")
            print(f"\nraw rows written to {args.csv}")
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
