"""Operational counters for the streaming engine.

The engine distinguishes three ways a query can be answered — a **cache hit**
(no computation at all), a **warm solve** (the IncAVT swap/fill pass over the
carried-forward anchor set) and a **cold solve** (a static solver run from
scratch) — and the counters here record how often each path fired and how long
it took.  The acceptance tests lean on these counters to prove that a repeated
query on an unchanged graph version never invokes a solver.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict


@dataclass
class EngineStats:
    """Counters and latency accumulators for one :class:`StreamingAVTEngine`.

    Attributes
    ----------
    queries:
        Total ``query()`` calls answered.
    cache_hits / cache_misses:
        Result-cache outcomes; ``hits + misses == queries``.
    warm_solves:
        Misses answered by the incremental anchor refresh (no static solver).
    cold_solves:
        Misses answered by a from-scratch static solver run.
    deltas_applied:
        Number of coalesced batches flushed into the core maintainer.
    edges_inserted / edges_removed:
        Effective edge operations applied across all flushed batches.
    updates_ingested:
        Raw edge operations offered to the ingest buffer (before coalescing).
    updates_cancelled:
        Operations the buffer discarded as no-ops or opposing pairs.
    cache_promotions / cache_invalidations:
        Entries re-keyed to the new graph version (their ``k`` was provably
        unaffected by the delta) vs. entries evicted by selective invalidation.
    checkpoints_saved / checkpoints_restored:
        Checkpoint traffic, counted on the engine that performed the call.
    hit_seconds / warm_seconds / cold_seconds / update_seconds:
        Wall-clock accumulators per answer path and for flushes.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    warm_solves: int = 0
    cold_solves: int = 0
    deltas_applied: int = 0
    edges_inserted: int = 0
    edges_removed: int = 0
    updates_ingested: int = 0
    updates_cancelled: int = 0
    cache_promotions: int = 0
    cache_invalidations: int = 0
    checkpoints_saved: int = 0
    checkpoints_restored: int = 0
    hit_seconds: float = 0.0
    warm_seconds: float = 0.0
    cold_seconds: float = 0.0
    update_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of queries served straight from the result cache."""
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def solver_invocations(self) -> int:
        """Queries that ran any anchor computation (warm or cold)."""
        return self.warm_solves + self.cold_solves

    def mean_latency(self, path: str) -> float:
        """Mean seconds per query for ``path`` in {'hit', 'warm', 'cold'}."""
        counts = {"hit": self.cache_hits, "warm": self.warm_solves, "cold": self.cold_solves}
        seconds = {"hit": self.hit_seconds, "warm": self.warm_seconds, "cold": self.cold_seconds}
        if path not in counts:
            raise ValueError(f"unknown latency path {path!r}")
        return seconds[path] / counts[path] if counts[path] else 0.0

    @property
    def updates_per_second(self) -> float:
        """Effective edge updates applied per second of flush time."""
        applied = self.edges_inserted + self.edges_removed
        return applied / self.update_seconds if self.update_seconds else 0.0

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Return all raw counters as a plain dict (checkpoint / reporting)."""
        return asdict(self)

    @classmethod
    def from_snapshot(cls, state: Dict[str, float]) -> "EngineStats":
        """Rebuild stats from :meth:`snapshot` output, ignoring unknown keys."""
        known = set(cls.__dataclass_fields__)
        return cls(**{key: value for key, value in state.items() if key in known})

    def summary(self) -> str:
        """Multi-line human-readable report (used by the CLI and examples)."""
        lines = [
            f"queries={self.queries} hits={self.cache_hits} "
            f"(hit rate {self.hit_rate:.1%}) warm={self.warm_solves} cold={self.cold_solves}",
            f"updates: ingested={self.updates_ingested} "
            f"cancelled={self.updates_cancelled} applied(+)={self.edges_inserted} "
            f"applied(-)={self.edges_removed} batches={self.deltas_applied} "
            f"({self.updates_per_second:.0f} updates/s)",
            f"cache: promoted={self.cache_promotions} invalidated={self.cache_invalidations}",
            f"latency: hit={self.mean_latency('hit') * 1e3:.3f}ms "
            f"warm={self.mean_latency('warm') * 1e3:.3f}ms "
            f"cold={self.mean_latency('cold') * 1e3:.3f}ms",
        ]
        return "\n".join(lines)
