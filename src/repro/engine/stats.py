"""Operational counters for the streaming engine.

The engine distinguishes three ways a query can be answered — a **cache hit**
(no computation at all), a **warm solve** (the IncAVT swap/fill pass over the
carried-forward anchor set) and a **cold solve** (a static solver run from
scratch) — and the counters here record how often each path fired and how long
it took.  The acceptance tests lean on these counters to prove that a repeated
query on an unchanged graph version never invokes a solver.

Since the ``repro.obs`` subsystem landed, :class:`EngineStats` is a *view*
over a :class:`~repro.obs.metrics.MetricsRegistry` rather than parallel
bookkeeping: every attribute read/write goes straight to a registry counter,
per-path latencies additionally feed log-bucketed histograms (p50/p95/p99
derivable), and :meth:`snapshot` emits the unified
``{name, type, value, labels}`` schema shared with ``SolverStats`` and the
shard coordinator.  The legacy flat-dict snapshot format is still accepted by
:meth:`from_snapshot` so old checkpoints keep restoring.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

#: Integer event counters, in declaration order (also the legacy field order).
_COUNT_FIELDS = (
    "queries",
    "cache_hits",
    "cache_misses",
    "warm_solves",
    "cold_solves",
    "deltas_applied",
    "edges_inserted",
    "edges_removed",
    "updates_ingested",
    "updates_cancelled",
    "cache_promotions",
    "cache_invalidations",
    "checkpoints_saved",
    "checkpoints_restored",
    # Resilience: backend fallbacks forced by substrate failures, flush-time
    # probes of the failed backend while degraded, and successful switches
    # back.  from_snapshot ignores unknown keys, so checkpoints written
    # before these fields existed restore cleanly.
    "degradations",
    "recovery_probes",
    "recoveries",
)

#: Wall-clock accumulators (floats), one per answer path plus flushes.
_SECONDS_FIELDS = ("hit_seconds", "warm_seconds", "cold_seconds", "update_seconds")

FIELDS = _COUNT_FIELDS + _SECONDS_FIELDS

#: Latency paths with a dedicated histogram (``engine.latency.<path>``).
_LATENCY_PATHS = ("hit", "warm", "cold", "update")

_PREFIX = "engine."


class EngineStats:
    """Counters and latency accumulators for one :class:`StreamingAVTEngine`.

    Attributes
    ----------
    queries:
        Total ``query()`` calls answered.
    cache_hits / cache_misses:
        Result-cache outcomes; ``hits + misses == queries``.
    warm_solves:
        Misses answered by the incremental anchor refresh (no static solver).
    cold_solves:
        Misses answered by a from-scratch static solver run.
    deltas_applied:
        Number of coalesced batches flushed into the core maintainer.
    edges_inserted / edges_removed:
        Effective edge operations applied across all flushed batches.
    updates_ingested:
        Raw edge operations offered to the ingest buffer (before coalescing).
    updates_cancelled:
        Operations the buffer discarded as no-ops or opposing pairs.
    cache_promotions / cache_invalidations:
        Entries re-keyed to the new graph version (their ``k`` was provably
        unaffected by the delta) vs. entries evicted by selective invalidation.
    checkpoints_saved / checkpoints_restored:
        Checkpoint traffic, counted on the engine that performed the call.
    hit_seconds / warm_seconds / cold_seconds / update_seconds:
        Wall-clock accumulators per answer path and for flushes.

    All attributes are registry-backed: ``stats.queries += 1`` increments the
    ``engine.queries`` counter in :attr:`registry`.  Use
    :meth:`observe_latency` instead of raw ``*_seconds`` writes where possible
    — it also feeds the per-path latency histogram.
    """

    __slots__ = ("registry", "_metrics", "_latency")

    def __init__(self, registry: Optional[MetricsRegistry] = None, **values: float) -> None:
        unknown = set(values) - set(FIELDS)
        if unknown:
            raise TypeError(f"unexpected EngineStats field(s): {sorted(unknown)}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._metrics = {name: self.registry.counter(_PREFIX + name) for name in FIELDS}
        self._latency = {
            path: self.registry.histogram(f"{_PREFIX}latency.{path}") for path in _LATENCY_PATHS
        }
        for name, value in values.items():
            self._metrics[name].set(value)

    # ------------------------------------------------------------------
    # Instrumentation helpers
    # ------------------------------------------------------------------
    def observe_latency(
        self, path: str, seconds: float, trace_id: Optional[str] = None
    ) -> None:
        """Accumulate ``seconds`` on ``<path>_seconds`` and its histogram.

        ``trace_id`` (when tracing is on) is stored as the bucket's exemplar
        if this is the slowest recent observation for its latency bucket, so
        a p99 bucket links straight to an inspectable trace.
        """
        if path not in self._latency:
            raise ValueError(f"unknown latency path {path!r}")
        self._metrics[f"{path}_seconds"].inc(seconds)
        self._latency[path].observe(seconds, trace_id=trace_id)

    def latency_histogram(self, path: str):
        """The :class:`~repro.obs.metrics.Histogram` behind ``path``."""
        if path not in self._latency:
            raise ValueError(f"unknown latency path {path!r}")
        return self._latency[path]

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of queries served straight from the result cache."""
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def solver_invocations(self) -> int:
        """Queries that ran any anchor computation (warm or cold)."""
        return self.warm_solves + self.cold_solves

    def mean_latency(self, path: str) -> float:
        """Mean seconds per query for ``path`` in {'hit', 'warm', 'cold'}."""
        counts = {"hit": self.cache_hits, "warm": self.warm_solves, "cold": self.cold_solves}
        seconds = {"hit": self.hit_seconds, "warm": self.warm_seconds, "cold": self.cold_seconds}
        if path not in counts:
            raise ValueError(f"unknown latency path {path!r}")
        return seconds[path] / counts[path] if counts[path] else 0.0

    @property
    def updates_per_second(self) -> float:
        """Effective edge updates applied per second of flush time."""
        applied = self.edges_inserted + self.edges_removed
        return applied / self.update_seconds if self.update_seconds else 0.0

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def values(self) -> Dict[str, float]:
        """Raw field values as a flat dict (legacy snapshot shape)."""
        return {name: self._metrics[name].value for name in FIELDS}

    def snapshot(self) -> List[Dict[str, Any]]:
        """All metrics in the unified ``{name, type, value, labels}`` schema.

        Includes the per-path latency histograms alongside the flat counters;
        :meth:`from_snapshot` restores both (and still accepts the pre-obs
        flat-dict format from old checkpoints).
        """
        entries = [self._metrics[name].to_metric() for name in FIELDS]
        entries.extend(histogram.to_metric() for histogram in self._latency.values())
        return entries

    @classmethod
    def from_snapshot(
        cls,
        state: Union[Dict[str, float], Iterable[Dict[str, Any]]],
        registry: Optional[MetricsRegistry] = None,
    ) -> "EngineStats":
        """Rebuild stats from :meth:`snapshot` output, ignoring unknown keys.

        Accepts both the unified metric-entry list and the legacy
        ``{field: value}`` flat dict (checkpoint format 1 compatibility).
        """
        stats = cls(registry=registry)
        if isinstance(state, dict):
            for name, value in state.items():
                if name in stats._metrics:
                    stats._metrics[name].set(value)
            return stats
        for entry in state:
            name = entry.get("name", "")
            field = name[len(_PREFIX):] if name.startswith(_PREFIX) else name
            if field in stats._metrics:
                stats._metrics[field].restore(entry.get("value", 0))
            elif field.startswith("latency."):
                path = field[len("latency."):]
                if path in stats._latency:
                    stats._latency[path].restore(entry.get("value") or {})
        return stats

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EngineStats):
            return NotImplemented
        return self.values() == other.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={value!r}" for name, value in self.values().items() if value)
        return f"EngineStats({fields})"

    def summary(self) -> str:
        """Multi-line human-readable report (used by the CLI and examples)."""
        lines = [
            f"queries={self.queries} hits={self.cache_hits} "
            f"(hit rate {self.hit_rate:.1%}) warm={self.warm_solves} cold={self.cold_solves}",
            f"updates: ingested={self.updates_ingested} "
            f"cancelled={self.updates_cancelled} applied(+)={self.edges_inserted} "
            f"applied(-)={self.edges_removed} batches={self.deltas_applied} "
            f"({self.updates_per_second:.0f} updates/s)",
            f"cache: promoted={self.cache_promotions} invalidated={self.cache_invalidations}",
            f"latency: hit={self.mean_latency('hit') * 1e3:.3f}ms "
            f"warm={self.mean_latency('warm') * 1e3:.3f}ms "
            f"cold={self.mean_latency('cold') * 1e3:.3f}ms",
        ]
        return "\n".join(lines)


def _make_field_property(name: str) -> property:
    def fget(self: EngineStats) -> float:
        return self._metrics[name].value

    def fset(self: EngineStats, value: float) -> None:
        self._metrics[name].set(value)

    fget.__name__ = name
    return property(fget, fset, doc=f"Registry-backed view of ``engine.{name}``.")


for _name in FIELDS:
    setattr(EngineStats, _name, _make_field_property(_name))
del _name
