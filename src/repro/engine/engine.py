"""The long-lived streaming AVT query engine.

:class:`StreamingAVTEngine` is the online counterpart of the batch trackers:
instead of replaying a finished :class:`SnapshotSequence`, it owns a live
graph and serves interleaved **updates** (edge insertions/deletions) and
**queries** (anchored k-core requests) indefinitely.  The design leans on the
paper's central observation — maintain, don't recompute — at three levels:

1. **Ingest batching** (:class:`~repro.engine.ingest.IngestBuffer`): raw edge
   events are coalesced (opposing insert/delete pairs cancel) and applied as
   one :class:`EdgeDelta` through incremental core maintenance.
2. **Result caching** (:class:`~repro.engine.cache.ResultCache`): answers are
   cached per ``(graph_version, k, budget, solver)``.  A flush advances the
   version, but entries whose ``k`` is provably untouched by the delta (every
   touched vertex kept core number ``>= k``) are promoted to the new version
   rather than evicted, so queries against quiet regions keep hitting.
3. **Warm solving**: on a cache miss with a previous answer for the same
   ``(k, budget, solver)``, the engine refreshes the carried-forward anchor
   set via the IncAVT swap/fill pass restricted to the vertices the deltas
   actually touched (:meth:`IncAVTTracker.refresh_anchors`) instead of
   re-running the static solver.  Warm answers are the IncAVT heuristic —
   pass ``warm=False`` (or construct with ``warm_queries=False``) for exact
   from-scratch answers on every miss.

Checkpoint/restore (:mod:`repro.engine.checkpoint`) persists the whole engine
— graph, core numbers, version counter, warm states, cache contents, stats —
so a restarted server resumes without a single decomposition.
"""

from __future__ import annotations

import logging
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.anchored.followers import compute_followers
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.olak import OLAKAnchoredKCore
from repro.anchored.rcm import RCMAnchoredKCore
from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.avt.incremental import IncAVTTracker
from repro.cores.maintenance import CoreMaintainer, DeltaEffect
from repro.engine.cache import CacheKey, ResultCache
from repro.engine.ingest import IngestBuffer
from repro.engine.stats import EngineStats
from repro.backends import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    ExecutionBackend,
    active_calibration,
    get_backend,
    registered_backends,
)
from repro.errors import CheckpointError, ParameterError, ShardExecutionError
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph, Vertex
from repro.obs import tracer

logger = logging.getLogger("repro.engine")

SOLVERS: Dict[str, Callable[[Graph, int, int], Any]] = {
    "greedy": GreedyAnchoredKCore,
    "olak": OLAKAnchoredKCore,
    "rcm": RCMAnchoredKCore,
}

#: Algorithm label of heuristic warm answers; exact-mode queries refuse to
#: reuse cache entries carrying it.
WARM_ALGORITHM = "IncAVT-warm"


@dataclass
class _WarmState:
    """Carried-forward anchors for one ``(k, budget, solver)`` triple."""

    version: int
    anchors: Tuple[Vertex, ...]
    stale: Set[Vertex] = field(default_factory=set)


class StreamingAVTEngine:
    """Online anchored-k-core engine over a live, incrementally maintained graph.

    Parameters
    ----------
    graph:
        Initial graph (defaults to empty).  Copied unless ``copy_graph`` is
        false.
    cache_capacity:
        Maximum number of cached query answers (LRU beyond that).
    batch_size:
        Auto-flush threshold: once this many *net* operations are pending the
        buffer is applied eagerly.  ``None`` flushes only on demand (every
        query still flushes first so it never reads stale state).
    warm_queries:
        Default answer policy on cache misses: reuse the previous anchor set
        via the IncAVT update path (fast, heuristic) instead of re-running the
        static solver (slower, exact).  Overridable per query.
    default_solver:
        One of ``"greedy"``, ``"olak"``, ``"rcm"``.
    core:
        Trusted precomputed core numbers for ``graph`` (checkpoint restore);
        omit to compute them fresh.
    backend:
        Execution backend (a registered name — ``"auto"`` / ``"dict"`` /
        ``"compact"`` / ``"numpy"`` / ``"numba"`` — or an
        :class:`~repro.backends.ExecutionBackend` instance, see
        :mod:`repro.backends`) for core maintenance and the cold solvers.
        ``"auto"`` resolves against the graph handed to the constructor and
        is **re-resolved at flush time**: an engine that starts empty (or
        small) on the dict backend migrates its maintainer state to the
        snapshot backend once the ingested stream grows the graph past the
        auto threshold, so long-lived engines never stay stuck on the
        small-graph path.  When a measured calibration table is active
        (:mod:`repro.backends.calibrate`) flush-time re-resolution follows
        the table instead, migrating whenever the graph crosses into a size
        band with a different measured winner.
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        *,
        cache_capacity: int = 256,
        batch_size: Optional[int] = 64,
        warm_queries: bool = True,
        default_solver: str = "greedy",
        copy_graph: bool = True,
        core: Optional[Dict[Vertex, int]] = None,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ParameterError("batch_size must be >= 1 (or None to disable)")
        if default_solver not in SOLVERS:
            raise ParameterError(
                f"unknown solver {default_solver!r}; expected one of {sorted(SOLVERS)}"
            )
        initial_graph = graph if graph is not None else Graph()
        # The requested policy is kept for checkpoints and flush-time
        # re-resolution; ``_backend`` is the currently resolved object.
        self._backend_policy = backend
        self._backend = get_backend(backend, initial_graph.num_vertices)
        init_failure: Optional[ShardExecutionError] = None
        failed_backend: Optional[ExecutionBackend] = None
        try:
            self._maintainer = CoreMaintainer(
                initial_graph,
                copy_graph=copy_graph,
                core=core,
                backend=self._backend,
            )
        except ShardExecutionError as error:
            # The requested substrate failed while computing the initial core
            # numbers.  Construction must still succeed — build on the compact
            # fallback and record the degradation once stats exist below.
            init_failure = error
            failed_backend = self._backend
            self._backend = get_backend(BACKEND_COMPACT, initial_graph.num_vertices)
            self._maintainer = CoreMaintainer(
                initial_graph,
                copy_graph=copy_graph,
                core=core,
                backend=self._backend,
            )
        self._buffer = IngestBuffer(self._maintainer.graph)
        self._cache = ResultCache(cache_capacity)
        self._stats = EngineStats()
        self._version = 0
        self._batch_size = batch_size
        self._warm_queries = warm_queries
        self._default_solver = default_solver
        # Bounded like the result cache: warm states are cheap but a
        # long-lived server must not accumulate one per historical query shape.
        self._warm: "OrderedDict[Tuple[int, int, str], _WarmState]" = OrderedDict()
        self._warm_capacity = max(cache_capacity, 16)
        self._refresher = IncAVTTracker(backend=backend)
        #: Degradation state (see :meth:`health`): set when a backend failure
        #: forced a fallback to the compact backend; ``_degraded_from`` keeps
        #: the failed backend object so flush-time recovery probes can ask it
        #: whether its substrate is healthy again.
        self._degraded: Optional[Dict[str, Any]] = None
        self._degraded_from: Optional[ExecutionBackend] = None
        if init_failure is not None and failed_backend is not None:
            self._record_degradation("init", init_failure, failed_backend)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The live maintained graph (do not mutate directly — use ingest)."""
        return self._maintainer.graph

    @property
    def graph_version(self) -> int:
        """Monotone counter, bumped once per flushed batch that changed the graph."""
        return self._version

    @property
    def stats(self) -> EngineStats:
        """Operational counters (hit rate, latencies, update throughput)."""
        return self._stats

    @property
    def cache(self) -> ResultCache:
        """The versioned result cache (exposed for inspection and tests)."""
        return self._cache

    @property
    def backend(self) -> str:
        """Name of the currently resolved execution backend.

        Under the ``"auto"`` policy this can change over the engine's
        lifetime: flushes re-resolve it as the graph grows.
        """
        return self._backend.name

    @property
    def pending_updates(self) -> int:
        """Net operations buffered but not yet applied."""
        return self._buffer.pending_changes

    def core_numbers(self) -> Dict[Vertex, int]:
        """Copy of the maintained core numbers of the live graph."""
        return self._maintainer.core_numbers()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest_insert(self, u: Vertex, v: Vertex) -> None:
        """Buffer the insertion of edge ``(u, v)``."""
        self._buffered(lambda: self._buffer.insert(u, v))

    def ingest_remove(self, u: Vertex, v: Vertex) -> None:
        """Buffer the removal of edge ``(u, v)``."""
        self._buffered(lambda: self._buffer.remove(u, v))

    def ingest(self, delta: EdgeDelta) -> None:
        """Buffer a whole delta (e.g. one step of a replayed snapshot stream)."""
        self._buffered(lambda: self._buffer.extend(delta))

    def _buffered(self, action: Callable[[], None]) -> None:
        ingested = self._buffer.ingested
        cancelled = self._buffer.cancelled
        action()
        self._stats.updates_ingested += self._buffer.ingested - ingested
        self._stats.updates_cancelled += self._buffer.cancelled - cancelled
        if self._batch_size is not None and len(self._buffer) >= self._batch_size:
            self.flush()

    def flush(self) -> DeltaEffect:
        """Apply every buffered operation as one coalesced delta.

        Advances the graph version (when anything effectively changed),
        selectively invalidates the result cache and marks the warm anchor
        states stale around the touched region.  Returns the maintenance
        effect (empty when nothing was pending).
        """
        if self._buffer.is_empty():
            return DeltaEffect()
        with tracer.span("engine.flush") as flush_span:
            effect = self._flush_pending(flush_span)
        return effect

    def _flush_pending(self, flush_span) -> DeltaEffect:
        started = time.perf_counter()
        delta = self._buffer.flush()
        effect = self._maintainer.apply_delta(delta)
        # Re-resolve the backend policy against the post-delta graph size: an
        # engine that started below the auto threshold must not stay on the
        # dict backend forever once the stream grows the graph past it.
        # Without a calibration table only upgrades away from dict happen (an
        # explicit "dict" policy resolves to dict and is left alone), so a
        # graph hovering around the threshold cannot thrash migrations.  With
        # an active table (repro.backends.calibrate) the measured policy owns
        # the decision: the winner can change whenever the graph crosses a
        # size-band boundary, and band edges are coarse enough (4k/32k) that
        # per-flush oscillation cannot occur.
        if self._backend.name == BACKEND_DICT or active_calibration() is not None:
            resolved = get_backend(
                self._backend_policy, self._maintainer.graph.num_vertices
            )
            if resolved.name != self._backend.name and self._maintainer.switch_backend(
                resolved
            ):
                self._backend = resolved
                logger.info(
                    "backend re-resolved to %r at %d vertices (policy %r)",
                    resolved.name,
                    self._maintainer.graph.num_vertices,
                    self._backend_policy,
                )
        self._probe_recovery()
        self._stats.deltas_applied += 1
        self._stats.edges_inserted += len(delta.inserted)
        self._stats.edges_removed += len(delta.removed)
        touched = effect.touched
        if touched:
            old_version = self._version
            self._version += 1
            # An entry for constraint k survives iff every touched vertex kept
            # core >= k both before and after the delta: then no vertex outside
            # the k-core gained or lost anything, the k-core membership is
            # unchanged, and the anchored answer is byte-identical.  Old cores
            # come from the effect's first-seen snapshot, so this stays
            # O(|touched|) rather than O(n).
            pre_core = effect.pre_update_core
            safe_min = min(
                min(
                    pre_core.get(vertex, float("inf")),
                    self._maintainer.core(vertex),
                )
                for vertex in touched
            )
            promoted, invalidated = self._cache.promote(
                old_version, self._version, keep=lambda key: key.k <= safe_min
            )
            self._stats.cache_promotions += promoted
            self._stats.cache_invalidations += invalidated
            # A warm state whose stale region outgrows half the graph buys
            # nothing over a cold solve — drop it to bound memory in
            # long-lived engines.
            stale_limit = max(16, self._maintainer.graph.num_vertices // 2)
            doomed = []
            for warm_key, state in self._warm.items():
                state.stale |= touched
                if len(state.stale) > stale_limit:
                    doomed.append(warm_key)
            for warm_key in doomed:
                del self._warm[warm_key]
        self._stats.observe_latency(
            "update", time.perf_counter() - started, trace_id=tracer.current_trace_id()
        )
        flush_span.set(
            inserted=len(delta.inserted),
            removed=len(delta.removed),
            touched=len(touched),
            version=self._version,
        )
        logger.debug(
            "flush applied: +%d/-%d edges, %d vertices touched, version=%d",
            len(delta.inserted),
            len(delta.removed),
            len(touched),
            self._version,
        )
        return effect

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self,
        k: int,
        budget: int,
        *,
        solver: Optional[str] = None,
        warm: Optional[bool] = None,
    ) -> AnchoredKCoreResult:
        """Answer one anchored k-core request against the current graph.

        Pending updates are flushed first, so the answer always reflects every
        ingested event.  Resolution order: result cache (same graph version) →
        warm IncAVT refresh of the previous anchors (if enabled and available)
        → cold static solver.  The returned result is cached for the current
        version.
        """
        if k < 1:
            raise ParameterError("k must be >= 1")
        if budget < 0:
            raise ParameterError("budget must be non-negative")
        solver_name = solver if solver is not None else self._default_solver
        if solver_name not in SOLVERS:
            raise ParameterError(
                f"unknown solver {solver_name!r}; expected one of {sorted(SOLVERS)}"
            )
        use_warm = self._warm_queries if warm is None else warm

        with tracer.span(
            "engine.query", k=k, budget=budget, solver=solver_name
        ) as query_span:
            self.flush()
            started = time.perf_counter()
            self._stats.queries += 1
            key = CacheKey(self._version, k, budget, solver_name)
            cached = self._cache.get(key)
            if cached is not None and not use_warm and cached.algorithm == WARM_ALGORITHM:
                # The caller demands an exact answer but the entry is the warm
                # heuristic: fall through to a cold solve (which replaces it, so
                # the upgraded entry then serves both modes).
                cached = None
            if cached is not None:
                self._stats.cache_hits += 1
                self._stats.observe_latency(
                    "hit",
                    time.perf_counter() - started,
                    trace_id=tracer.current_trace_id(),
                )
                query_span.set(outcome="hit", version=self._version)
                return cached
            self._stats.cache_misses += 1

            warm_key = (k, budget, solver_name)
            state = self._warm.get(warm_key) if use_warm else None
            try:
                if state is not None:
                    result = self._answer_warm(k, budget, state, started)
                    query_span.set(outcome="warm", version=self._version)
                else:
                    result = self._answer_cold(k, budget, solver_name, started)
                    query_span.set(outcome="cold", version=self._version)
            except ShardExecutionError as error:
                # The sharded substrate failed beyond its own retry budget
                # (it already degraded process→serial internally and serial
                # failed too).  Degrade the engine to the compact backend and
                # answer the query there — queries must keep succeeding, only
                # slower.
                self._note_degradation("query", error)
                result = self._answer_cold(k, budget, solver_name, started)
                query_span.set(outcome="degraded", version=self._version)
            self._cache.put(key, result)
            self._warm[warm_key] = _WarmState(
                version=self._version, anchors=tuple(result.anchors)
            )
            self._warm.move_to_end(warm_key)
            while len(self._warm) > self._warm_capacity:
                self._warm.popitem(last=False)
            return result

    def _answer_warm(
        self, k: int, budget: int, state: _WarmState, started: float
    ) -> AnchoredKCoreResult:
        graph = self._maintainer.graph
        with tracer.span("engine.solve.warm", k=k, budget=budget) as warm_span:
            if state.version == self._version or not state.stale:
                # Graph unchanged since the anchors were chosen (the cache entry
                # merely fell to LRU pressure): the previous anchors still stand.
                anchors: List[Vertex] = [
                    anchor for anchor in state.anchors if graph.has_vertex(anchor)
                ][:budget]
                solver_stats = SolverStats()
                warm_span.set(refreshed=False)
            else:
                anchors, solver_stats = self._refresher.refresh_anchors(
                    self._maintainer, k, budget, state.anchors, state.stale
                )
                warm_span.set(refreshed=True, stale=len(state.stale))
            plain_core = self._maintainer.k_core_vertices(k)
            followers = compute_followers(graph, k, anchors, k_core_vertices=plain_core)
            solver_stats.runtime_seconds = time.perf_counter() - started
            warm_span.set(anchors=len(anchors), followers=len(followers))
        self._stats.warm_solves += 1
        self._stats.observe_latency(
            "warm", solver_stats.runtime_seconds, trace_id=tracer.current_trace_id()
        )
        return AnchoredKCoreResult(
            algorithm=WARM_ALGORITHM,
            k=k,
            budget=budget,
            anchors=tuple(anchors),
            followers=frozenset(followers),
            anchored_core_size=len(plain_core | set(anchors) | followers),
            stats=solver_stats,
        )

    def _answer_cold(
        self, k: int, budget: int, solver_name: str, started: float
    ) -> AnchoredKCoreResult:
        with tracer.span(
            "engine.solve.cold", k=k, budget=budget, solver=solver_name
        ) as cold_span:
            solver = SOLVERS[solver_name](
                self._maintainer.graph, k, budget, backend=self._backend
            )
            result = solver.select()
            cold_span.set(anchors=len(result.anchors), followers=result.num_followers)
        self._stats.cold_solves += 1
        self._stats.observe_latency(
            "cold", time.perf_counter() - started, trace_id=tracer.current_trace_id()
        )
        return result

    # ------------------------------------------------------------------
    # Degradation / recovery
    # ------------------------------------------------------------------
    def _note_degradation(self, where: str, error: BaseException) -> None:
        """Fall back to the compact backend after a backend failure.

        The failed backend object is kept so :meth:`_probe_recovery` can ask
        it (cheaply, at flush time) whether its substrate is healthy again;
        queries keep being answered on the compact fallback meanwhile.  The
        moment of degradation is flight-dumped with the surrounding spans —
        this is exactly the record an operator wants when paging on the
        ``engine.degradations`` counter.
        """
        failed = self._backend
        fallback = get_backend(BACKEND_COMPACT, self._maintainer.graph.num_vertices)
        self._maintainer.switch_backend(fallback)
        self._backend = fallback
        self._record_degradation(where, error, failed)

    def _record_degradation(
        self, where: str, error: BaseException, failed: ExecutionBackend
    ) -> None:
        """Book-keep a degradation after ``self._backend`` is the fallback."""
        from repro.obs.flight import default_recorder

        self._stats.degradations += 1
        logger.error(
            "engine degrading from backend %r to %r after %s failure: %s",
            failed.name,
            self._backend.name,
            where,
            error,
        )
        default_recorder().record_event(
            "engine.degraded", where=where, backend=failed.name, error=str(error)
        )
        default_recorder().dump(
            "engine-degraded", where=where, backend=failed.name, error=str(error)
        )
        self._refresher = IncAVTTracker(backend=self._backend)
        self._degraded = {
            "reason": str(error),
            "where": where,
            "from_backend": failed.name,
            "since_version": self._version,
        }
        self._degraded_from = failed

    def _probe_recovery(self) -> None:
        """While degraded, ask the failed backend whether it works again.

        Runs at flush time (not per query — probing spins up real substrate,
        e.g. a throwaway shard coordinator, so it rides the slower mutation
        path).  A truthful probe migrates the maintainer state back and
        clears the degradation; a failing or throwing probe keeps the engine
        on the fallback.
        """
        if self._degraded is None or self._degraded_from is None:
            return
        from repro.obs.flight import default_recorder

        self._stats.recovery_probes += 1
        try:
            healthy = bool(self._degraded_from.probe())
        except Exception as error:  # a probe must never take a flush down
            logger.info("recovery probe of %r failed: %s", self._degraded_from.name, error)
            healthy = False
        if not healthy:
            return
        if not self._maintainer.switch_backend(self._degraded_from):
            return
        self._backend = self._degraded_from
        self._refresher = IncAVTTracker(backend=self._backend)
        self._stats.recoveries += 1
        logger.warning(
            "engine recovered: backend %r healthy again after degradation at version %d",
            self._backend.name,
            self._degraded["since_version"],
        )
        default_recorder().record_event("engine.recovered", backend=self._backend.name)
        default_recorder().dump("engine-recovered", backend=self._backend.name)
        self._degraded = None
        self._degraded_from = None

    def health(self) -> Dict[str, Any]:
        """Liveness/degradation summary for operator endpoints.

        ``status`` is ``"ok"`` or ``"degraded"``; while degraded, the
        ``degraded`` dict carries the reason, the backend fallen back from
        and the graph version at the moment of degradation.  Recovery is
        automatic: every flush while degraded probes the failed backend
        (``recovery_probes``/``recoveries`` count the attempts and
        successes).
        """
        policy = (
            self._backend_policy
            if isinstance(self._backend_policy, str)
            else self._backend_policy.name
        )
        return {
            "status": "degraded" if self._degraded is not None else "ok",
            "backend": self._backend.name,
            "backend_policy": policy,
            "degraded": dict(self._degraded) if self._degraded is not None else None,
            "version": self._version,
            "pending_updates": self.pending_updates,
            "degradations": self._stats.degradations,
            "recovery_probes": self._stats.recovery_probes,
            "recoveries": self._stats.recoveries,
        }

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """Capture the full engine state as a plain dict.

        Pending buffered updates are flushed first, so the state describes a
        fully applied graph; restoring therefore never replays maintenance.
        """
        self.flush()
        backend_name = (
            self._backend_policy
            if isinstance(self._backend_policy, str)
            else self._backend_policy.name
        )
        if backend_name != BACKEND_AUTO and backend_name not in registered_backends():
            # Fail at checkpoint time, not restore time: a state naming a
            # backend the registry does not know can never be restored.
            raise CheckpointError(
                f"engine uses unregistered backend {backend_name!r}; "
                "register_backend() it before checkpointing so a restored "
                "engine can resolve it"
            )
        graph = self._maintainer.graph
        # Configurable backends (e.g. sharded: shard count, partitioner
        # policy, executor) persist their configuration next to the policy
        # name so the restored engine comes back equivalently configured.
        backend_config = dict(self._backend.config())
        return {
            "vertices": list(graph.vertices()),
            "edges": [tuple(edge) for edge in graph.edges()],
            "core": self._maintainer.core_numbers(),
            "version": self._version,
            "batch_size": self._batch_size,
            "warm_queries": self._warm_queries,
            "default_solver": self._default_solver,
            # The *policy*, not the resolved object: a restored engine
            # re-resolves against its (restored) graph size, and the state
            # stays JSON-serialisable.
            "backend": backend_name,
            "backend_config": backend_config,
            "warm": {
                warm_key: {
                    "version": state.version,
                    "anchors": list(state.anchors),
                    "stale": list(state.stale),
                }
                for warm_key, state in self._warm.items()
            },
            "cache": {
                "capacity": self._cache.capacity,
                "entries": [
                    (cache_key.as_tuple(), result) for cache_key, result in self._cache.items()
                ],
            },
            "stats": self._stats.snapshot(),
        }

    @staticmethod
    def _restorable_backend(
        policy: Any, config: Dict[str, Any], num_vertices: int
    ) -> Any:
        """Resolve a checkpoint's backend policy in the restoring process.

        Returns the policy itself when it resolves (configured through
        ``with_config`` when the checkpoint carried a configuration), or
        ``"auto"`` with a warning when the persisted backend is unknown or
        unavailable here — restoring on weaker hardware/installs must not
        brick a checkpoint whose state is backend-independent anyway.
        """
        if not isinstance(policy, str) or policy == BACKEND_AUTO:
            return policy
        try:
            resolved = get_backend(policy, num_vertices)
        except ParameterError as error:
            logger.warning(
                "checkpoint backend %r is not available in this process "
                "(%s); restoring with backend='auto'",
                policy,
                error,
            )
            warnings.warn(
                f"checkpoint backend {policy!r} is not available in this "
                f"process ({error}); restoring with backend='auto'",
                RuntimeWarning,
                stacklevel=3,
            )
            return BACKEND_AUTO
        if config:
            return resolved.with_config(config)
        return policy

    @classmethod
    def from_state(cls, state: Dict[str, Any], **overrides: Any) -> "StreamingAVTEngine":
        """Rebuild an engine from :meth:`to_state` output without recomputation.

        ``overrides`` replace construction-time settings (``cache_capacity``,
        ``batch_size``, ``warm_queries``, ``default_solver``).

        When the persisted backend policy is unavailable in the restoring
        process (e.g. a ``"numpy"`` checkpoint restored on an interpreter
        without numpy) the engine falls back to ``"auto"`` with a
        :class:`RuntimeWarning` instead of refusing to restore — the state
        itself is backend-independent.  An explicit ``backend=`` override is
        never second-guessed: if it cannot be resolved, the restore fails.
        """
        try:
            graph = Graph(edges=state["edges"], vertices=state["vertices"])
            if "backend" in overrides:
                backend_policy = overrides.pop("backend")
            else:
                backend_policy = cls._restorable_backend(
                    state.get("backend", BACKEND_AUTO),
                    state.get("backend_config") or {},
                    len(state["vertices"]),
                )
            engine = cls(
                graph,
                copy_graph=False,
                core=state["core"],
                cache_capacity=overrides.pop("cache_capacity", state["cache"]["capacity"]),
                batch_size=overrides.pop("batch_size", state["batch_size"]),
                warm_queries=overrides.pop("warm_queries", state["warm_queries"]),
                default_solver=overrides.pop("default_solver", state["default_solver"]),
                backend=backend_policy,
            )
            if overrides:
                raise ParameterError(f"unknown restore overrides: {sorted(overrides)}")
            engine._version = state["version"]
            for warm_key, payload in state["warm"].items():
                engine._warm[warm_key] = _WarmState(
                    version=payload["version"],
                    anchors=tuple(payload["anchors"]),
                    stale=set(payload["stale"]),
                )
            for key_tuple, result in state["cache"]["entries"]:
                engine._cache.put(CacheKey(*key_tuple), result)
            engine._stats = EngineStats.from_snapshot(state["stats"])
        except (KeyError, TypeError) as error:
            raise CheckpointError(f"malformed engine state: {error}") from error
        return engine

    def checkpoint(self, path: Any, keep: int = 1) -> None:
        """Persist the engine to ``path`` (see :mod:`repro.engine.checkpoint`).

        ``keep`` > 1 rotates previous checkpoints to ``<path>.1``… so
        :meth:`restore` can fall back when the newest file is corrupted.
        A failed save dumps the flight recorder (recent spans + metric
        deltas) before re-raising, so post-mortems of checkpoint failures in
        long-running engines have the surrounding context.
        """
        from repro.engine.checkpoint import save_checkpoint
        from repro.obs.flight import default_recorder

        try:
            save_checkpoint(self, path, keep=keep)
        except CheckpointError as error:
            default_recorder().dump(
                "checkpoint-save-failed", path=str(path), error=str(error)
            )
            raise

    @classmethod
    def restore(cls, path: Any, **overrides: Any) -> "StreamingAVTEngine":
        """Rebuild an engine from a checkpoint file written by :meth:`checkpoint`."""
        from repro.engine.checkpoint import load_checkpoint
        from repro.obs.flight import default_recorder

        try:
            return load_checkpoint(path, **overrides)
        except CheckpointError as error:
            default_recorder().dump(
                "checkpoint-restore-failed", path=str(path), error=str(error)
            )
            raise

    def flight_record(self) -> Dict[str, Any]:
        """The live flight record: recent spans, metric deltas, past dumps.

        Delegates to the process-wide always-on recorder
        (:func:`repro.obs.flight.default_recorder`); cheap to call from an
        operator endpoint or a crash handler.
        """
        from repro.obs.flight import default_recorder

        return default_recorder().record()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        graph = self._maintainer.graph
        return (
            f"StreamingAVTEngine(version={self._version}, n={graph.num_vertices}, "
            f"m={graph.num_edges}, cached={len(self._cache)}, "
            f"pending={self.pending_updates})"
        )
