"""Verified checkpoint persistence for the streaming engine.

A checkpoint captures everything a restarted server needs to resume without
recomputation: the live graph, the maintained core numbers, the graph-version
counter, the warm anchor states, the result-cache contents and the stats
counters.  Vertex identifiers are arbitrary hashables, which rules out JSON
without inventing a vertex codec — the payload stays :mod:`pickle`.  Only
load checkpoints you wrote yourself; this is server state, not an
interchange format.

Format 2 (written here) is *verified*: the file opens with an ASCII header
line naming the format and the manifest digest, followed by a JSON manifest
listing every section (name, byte length, SHA-256) and then the pickled
section blobs back to back::

    repro-engine-checkpoint 2 <manifest-bytes> <manifest-sha256>\\n
    {"format": 2, "sections": [{"name": "graph", ...}, ...]}
    <graph blob><core blob><engine blob><warm blob><cache blob><stats blob>

:func:`read_state` verifies the manifest against the header digest and every
section against its manifest digest *before* unpickling anything, so a
truncated or bit-flipped file surfaces as a
:class:`~repro.errors.CheckpointCorruptionError` naming the damaged section
— never as an arbitrary unpickling exception deep inside restore.  Format-1
files (a single pickled envelope) are still read transparently.

Rotation and fallback: :func:`save_checkpoint` with ``keep=N`` shifts the
previous file to ``<path>.1`` (and so on, keeping the newest ``N``);
:func:`load_checkpoint` falls back to the newest intact rotated sibling when
the primary is corrupted, dumping a flight record for the one it skipped.

Fault-injection sites (:mod:`repro.resilience.faults`): ``checkpoint.write``
(a ``fail`` action simulates a flush failure before the atomic rename) and
``checkpoint.bytes`` (a ``corrupt`` action flips one byte after the file is
written, optionally inside a named ``section=``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import CheckpointCorruptionError, CheckpointError, ParameterError
from repro.obs import flight, tracer
from repro.resilience import faults

logger = logging.getLogger("repro.engine.checkpoint")

PathLike = Union[str, Path]

CHECKPOINT_MAGIC = "repro-engine-checkpoint"
CHECKPOINT_FORMAT = 2
#: Newest format readable; format 1 (single pickled envelope) stays loadable.
_LEGACY_FORMAT = 1

_MAGIC_PREFIX = (CHECKPOINT_MAGIC + " ").encode("ascii")
_MAX_HEADER = 256

#: Section layout: every state key belongs to exactly one named section so a
#: digest mismatch can say *what* is damaged.  Keys not listed here land in
#: the ``engine`` section (forward compatibility: a newer writer's extra keys
#: ride along and ``from_snapshot``-style readers ignore what they don't
#: know).
_SECTION_KEYS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("graph", ("vertices", "edges")),
    ("core", ("core",)),
    ("warm", ("warm",)),
    ("cache", ("cache",)),
    ("stats", ("stats",)),
)
_ENGINE_SECTION = "engine"


def _split_sections(state: Dict[str, Any]) -> List[Tuple[str, Dict[str, Any]]]:
    """Partition a state dict into the named checkpoint sections."""
    remaining = dict(state)
    sections: List[Tuple[str, Dict[str, Any]]] = []
    for name, keys in _SECTION_KEYS:
        payload = {key: remaining.pop(key) for key in keys if key in remaining}
        sections.append((name, payload))
    sections.append((_ENGINE_SECTION, remaining))
    return sections


def _maybe_corrupt_bytes(
    tmp_path: Path, header_len: int, manifest_len: int, manifest_sections: List[Dict[str, Any]]
) -> None:
    """The ``checkpoint.bytes`` fault site: flip one byte of the fresh file.

    The site fires once per region (manifest first, then each section in
    order) so a spec can target a named ``section=``; the flipped byte sits
    mid-region, guaranteeing a digest mismatch on the next read.
    """
    regions: List[Tuple[str, int, int]] = [("manifest", header_len, manifest_len)]
    offset = header_len + manifest_len
    for entry in manifest_sections:
        regions.append((entry["name"], offset, entry["length"]))
        offset += entry["length"]
    for name, start, length in regions:
        spec = faults.fire("checkpoint.bytes", path=str(tmp_path), section=name)
        if spec is None or length == 0:
            continue
        position = start + length // 2
        with open(tmp_path, "r+b") as handle:
            handle.seek(position)
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ 0xFF]))
        logger.warning(
            "injected checkpoint corruption: flipped byte %d (section %r) of %s",
            position,
            name,
            tmp_path,
        )
        return


def write_state(state: Dict[str, Any], path: PathLike) -> None:
    """Serialise an engine state dict to ``path`` (atomically via a temp file).

    Every section is pickled separately and digested; the manifest and its
    own digest go first so readers can verify before deserialising.
    """
    path = Path(path)
    if faults.fire("checkpoint.write", path=str(path)) is not None:
        # An injected flush failure: surface the same error class a full
        # disk or dead NFS mount would, before any bytes move.
        raise CheckpointError(f"cannot write checkpoint to {path}: injected flush failure")
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        blobs: List[bytes] = []
        manifest_sections: List[Dict[str, Any]] = []
        for name, payload in _split_sections(state):
            blob = pickle.dumps(payload, protocol=4)
            blobs.append(blob)
            manifest_sections.append(
                {
                    "name": name,
                    "length": len(blob),
                    "sha256": hashlib.sha256(blob).hexdigest(),
                }
            )
        manifest = json.dumps(
            {"format": CHECKPOINT_FORMAT, "sections": manifest_sections},
            sort_keys=True,
        ).encode("ascii")
        header = (
            f"{CHECKPOINT_MAGIC} {CHECKPOINT_FORMAT} {len(manifest)} "
            f"{hashlib.sha256(manifest).hexdigest()}\n"
        ).encode("ascii")
        with open(tmp_path, "wb") as handle:
            handle.write(header)
            handle.write(manifest)
            for blob in blobs:
                handle.write(blob)
        _maybe_corrupt_bytes(tmp_path, len(header), len(manifest), manifest_sections)
        tmp_path.replace(path)
    except CheckpointError:
        raise
    except Exception as error:  # OSError, or pickling failures of exotic vertices
        raise CheckpointError(f"cannot write checkpoint to {path}: {error}") from error
    finally:
        if tmp_path.exists():
            tmp_path.unlink()


def _read_state_legacy(path: Path) -> Dict[str, Any]:
    """Read a format-1 checkpoint: one pickled envelope, no digests."""
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except Exception as error:  # pickle surfaces corruption as many exception types
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    if not isinstance(envelope, dict) or envelope.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not a repro engine checkpoint")
    if envelope.get("format") != _LEGACY_FORMAT:
        raise CheckpointError(
            f"checkpoint format {envelope.get('format')!r} is not supported "
            f"(expected {_LEGACY_FORMAT} or {CHECKPOINT_FORMAT})"
        )
    state = envelope.get("state")
    if not isinstance(state, dict):
        raise CheckpointError(f"checkpoint {path} carries no state payload")
    return state


def read_state(path: PathLike) -> Dict[str, Any]:
    """Read and digest-verify an engine state dict from ``path``.

    Raises :class:`CheckpointCorruptionError` (naming the damaged section)
    when any digest disagrees or the file is truncated; plain
    :class:`CheckpointError` for missing/foreign files.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    with handle:
        header = handle.readline(_MAX_HEADER)
        if not header.startswith(_MAGIC_PREFIX):
            # Not a format-2 header: either a legacy single-pickle checkpoint
            # or a foreign file — the legacy reader tells them apart.
            return _read_state_legacy(path)
        if not header.endswith(b"\n"):
            raise CheckpointCorruptionError(path, "header", "unterminated header line")
        parts = header.decode("ascii", "replace").split()
        if len(parts) != 4:
            raise CheckpointCorruptionError(
                path, "header", f"expected 4 header fields, got {len(parts)}"
            )
        if parts[1] != str(CHECKPOINT_FORMAT):
            raise CheckpointError(
                f"checkpoint format {parts[1]!r} is not supported "
                f"(expected {_LEGACY_FORMAT} or {CHECKPOINT_FORMAT})"
            )
        try:
            manifest_len = int(parts[2])
        except ValueError:
            raise CheckpointCorruptionError(
                path, "header", f"non-numeric manifest length {parts[2]!r}"
            ) from None
        manifest_bytes = handle.read(manifest_len)
        if len(manifest_bytes) != manifest_len:
            raise CheckpointCorruptionError(
                path,
                "manifest",
                f"truncated: expected {manifest_len} bytes, got {len(manifest_bytes)}",
            )
        digest = hashlib.sha256(manifest_bytes).hexdigest()
        if digest != parts[3]:
            raise CheckpointCorruptionError(
                path, "manifest", f"digest mismatch ({digest[:12]}… != {parts[3][:12]}…)"
            )
        try:
            manifest = json.loads(manifest_bytes)
            entries = manifest["sections"]
        except (ValueError, KeyError, TypeError) as error:
            raise CheckpointCorruptionError(
                path, "manifest", f"undecodable manifest: {error}"
            ) from error
        state: Dict[str, Any] = {}
        for entry in entries:
            name = entry.get("name", "?")
            length = entry["length"]
            blob = handle.read(length)
            if len(blob) != length:
                raise CheckpointCorruptionError(
                    path,
                    name,
                    f"truncated: expected {length} bytes, got {len(blob)}",
                )
            digest = hashlib.sha256(blob).hexdigest()
            if digest != entry["sha256"]:
                raise CheckpointCorruptionError(
                    path,
                    name,
                    f"digest mismatch ({digest[:12]}… != {entry['sha256'][:12]}…)",
                )
            try:
                payload = pickle.loads(blob)
            except Exception as error:  # digest passed but payload undecodable
                raise CheckpointCorruptionError(
                    path, name, f"undecodable payload: {error}"
                ) from error
            if not isinstance(payload, dict):
                raise CheckpointCorruptionError(
                    path, name, f"section payload is {type(payload).__name__}, not dict"
                )
            state.update(payload)
    if not state:
        raise CheckpointError(f"checkpoint {path} carries no state payload")
    return state


def rotated_paths(path: PathLike, keep: int) -> List[Path]:
    """The rotation chain for ``path``: ``[path, path.1, ..., path.<keep-1>]``."""
    path = Path(path)
    return [path] + [path.with_name(f"{path.name}.{i}") for i in range(1, keep)]


def _rotate(path: Path, keep: int) -> None:
    """Shift existing checkpoints down the chain, dropping the oldest."""
    chain = rotated_paths(path, keep)
    if chain[-1].exists():
        chain[-1].unlink()
    for index in range(len(chain) - 1, 0, -1):
        if chain[index - 1].exists():
            chain[index - 1].replace(chain[index])


def save_checkpoint(engine: Any, path: PathLike, keep: int = 1) -> None:
    """Persist ``engine`` (a :class:`StreamingAVTEngine`) to ``path``.

    With ``keep > 1`` the previous checkpoint survives as ``<path>.1`` (and
    so on, newest-first) — the rotation happens *before* the write, so a
    write failure never destroys the last good checkpoint, and
    :func:`load_checkpoint` can fall back down the chain.
    """
    if keep < 1:
        raise ParameterError("save_checkpoint keep must be >= 1")
    path = Path(path)
    with tracer.span("engine.checkpoint.save") as save_span:
        if keep > 1:
            _rotate(path, keep)
        write_state(engine.to_state(), path)
        save_span.set(path=str(path), keep=keep)
    engine.stats.checkpoints_saved += 1
    logger.info(
        "checkpoint saved to %s (version=%d, %d vertices)",
        path,
        engine.graph_version,
        engine.graph.num_vertices,
    )


def load_checkpoint(
    path: PathLike, fallback: bool = True, **engine_kwargs: Any
) -> Any:
    """Rebuild a :class:`StreamingAVTEngine` from a checkpoint file.

    ``engine_kwargs`` override construction-time settings that are not part
    of the persisted state (e.g. ``cache_capacity`` to resize on restore).

    With ``fallback`` (the default) a corrupted or unreadable primary falls
    back to the newest intact rotated sibling (``<path>.1``, ``<path>.2``,
    …), dumping a flight record naming each checkpoint skipped; the original
    error is re-raised only when every candidate fails.
    """
    from repro.engine.engine import StreamingAVTEngine

    primary = Path(path)
    candidates = [primary]
    if fallback:
        index = 1
        while True:
            sibling = primary.with_name(f"{primary.name}.{index}")
            if not sibling.exists():
                break
            candidates.append(sibling)
            index += 1
    first_error: Optional[CheckpointError] = None
    with tracer.span("engine.checkpoint.restore") as restore_span:
        for candidate in candidates:
            try:
                state = read_state(candidate)
                engine = StreamingAVTEngine.from_state(state, **engine_kwargs)
            except CheckpointError as error:
                if first_error is None:
                    first_error = error
                if len(candidates) > 1:
                    section = getattr(error, "section", None)
                    flight.default_recorder().dump(
                        "checkpoint-fallback",
                        path=str(candidate),
                        section=section,
                        error=str(error),
                    )
                    logger.error(
                        "checkpoint %s unusable (%s); trying next rotation",
                        candidate,
                        error,
                    )
                continue
            if candidate is not primary:
                logger.warning(
                    "restored from rotated checkpoint %s (primary %s was unusable)",
                    candidate,
                    primary,
                )
            restore_span.set(
                path=str(candidate),
                version=engine.graph_version,
                fallback=candidate is not primary,
            )
            engine.stats.checkpoints_restored += 1
            logger.info(
                "checkpoint restored from %s (version=%d, %d vertices, backend=%s)",
                candidate,
                engine.graph_version,
                engine.graph.num_vertices,
                engine.backend,
            )
            return engine
    assert first_error is not None
    raise first_error
