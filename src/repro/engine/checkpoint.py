"""Checkpoint persistence for the streaming engine.

A checkpoint captures everything a restarted server needs to resume without
recomputation: the live graph, the maintained core numbers, the graph-version
counter, the warm anchor states, the result-cache contents and the stats
counters.  The payload is a plain state dict (see
:meth:`StreamingAVTEngine.to_state`) wrapped in an envelope with a magic
marker and a format version, serialised with :mod:`pickle` — vertex
identifiers are arbitrary hashables, which rules out JSON without inventing a
vertex codec.  Only load checkpoints you wrote yourself; this is server
state, not an interchange format.
"""

from __future__ import annotations

import logging
import pickle
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import CheckpointError
from repro.obs import tracer

logger = logging.getLogger("repro.engine.checkpoint")

PathLike = Union[str, Path]

CHECKPOINT_MAGIC = "repro-engine-checkpoint"
CHECKPOINT_FORMAT = 1


def write_state(state: Dict[str, Any], path: PathLike) -> None:
    """Serialise an engine state dict to ``path`` (atomically via a temp file)."""
    path = Path(path)
    envelope = {
        "magic": CHECKPOINT_MAGIC,
        "format": CHECKPOINT_FORMAT,
        "state": state,
    }
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            pickle.dump(envelope, handle, protocol=4)
        tmp_path.replace(path)
    except Exception as error:  # OSError, or pickling failures of exotic vertices
        raise CheckpointError(f"cannot write checkpoint to {path}: {error}") from error
    finally:
        if tmp_path.exists():
            tmp_path.unlink()


def read_state(path: PathLike) -> Dict[str, Any]:
    """Read and validate an engine state dict from ``path``."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except Exception as error:  # pickle surfaces corruption as many exception types
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    if not isinstance(envelope, dict) or envelope.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not a repro engine checkpoint")
    if envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {envelope.get('format')!r} is not supported "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    state = envelope.get("state")
    if not isinstance(state, dict):
        raise CheckpointError(f"checkpoint {path} carries no state payload")
    return state


def save_checkpoint(engine: Any, path: PathLike) -> None:
    """Persist ``engine`` (a :class:`StreamingAVTEngine`) to ``path``."""
    with tracer.span("engine.checkpoint.save") as save_span:
        write_state(engine.to_state(), path)
        save_span.set(path=str(path))
    engine.stats.checkpoints_saved += 1
    logger.info(
        "checkpoint saved to %s (version=%d, %d vertices)",
        path,
        engine.graph_version,
        engine.graph.num_vertices,
    )


def load_checkpoint(path: PathLike, **engine_kwargs: Any) -> Any:
    """Rebuild a :class:`StreamingAVTEngine` from a checkpoint file.

    ``engine_kwargs`` override construction-time settings that are not part
    of the persisted state (e.g. ``cache_capacity`` to resize on restore).
    """
    from repro.engine.engine import StreamingAVTEngine

    with tracer.span("engine.checkpoint.restore") as restore_span:
        engine = StreamingAVTEngine.from_state(read_state(path), **engine_kwargs)
        restore_span.set(path=str(path), version=engine.graph_version)
    engine.stats.checkpoints_restored += 1
    logger.info(
        "checkpoint restored from %s (version=%d, %d vertices, backend=%s)",
        path,
        engine.graph_version,
        engine.graph.num_vertices,
        engine.backend,
    )
    return engine
