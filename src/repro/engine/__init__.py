"""Online streaming AVT serving: the long-lived engine and its parts.

Batch reproduction answers "what would the anchors have been at every
snapshot"; this subpackage answers live traffic.  The pieces compose as::

    edge events ──> IngestBuffer ──flush──> CoreMaintainer (incremental cores)
                                              │
    query(k, l) ──> ResultCache ──miss──> warm IncAVT refresh / cold solver
                                              │
    checkpoint() <── engine state ──> restore()

See :class:`StreamingAVTEngine` for the orchestration and
:mod:`repro.engine.engine` for the design notes.
"""

from repro.engine.cache import CacheKey, ResultCache
from repro.engine.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    read_state,
    save_checkpoint,
    write_state,
)
from repro.engine.engine import SOLVERS, StreamingAVTEngine
from repro.engine.ingest import IngestBuffer
from repro.engine.stats import EngineStats

__all__ = [
    "CacheKey",
    "ResultCache",
    "CHECKPOINT_FORMAT",
    "load_checkpoint",
    "read_state",
    "save_checkpoint",
    "write_state",
    "SOLVERS",
    "StreamingAVTEngine",
    "IngestBuffer",
    "EngineStats",
]
