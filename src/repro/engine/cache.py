"""Versioned LRU cache for anchored k-core query results.

Entries are keyed by ``(graph_version, k, budget, solver)``.  When a delta is
flushed the graph version advances, which would naively orphan every cached
entry — but the maintenance traversal tells us exactly *where* the graph
changed.  An anchored-k-core answer for degree constraint ``k`` only depends
on vertices whose core number is below ``k`` (the candidate/follower region)
and on the membership of the k-core itself; a delta whose touched vertices all
keep core numbers ``>= k`` before and after cannot alter either, so those
entries are *promoted* to the new version instead of evicted.  The engine
computes that threshold (the minimum old/new core number over the touched
set) and hands the cache a keep-predicate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.anchored.result import AnchoredKCoreResult
from repro.errors import ParameterError


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached query answer."""

    version: int
    k: int
    budget: int
    solver: str

    def as_tuple(self) -> Tuple[int, int, int, str]:
        """Plain-tuple form used by the checkpoint serialiser."""
        return (self.version, self.k, self.budget, self.solver)


class ResultCache:
    """LRU cache of :class:`AnchoredKCoreResult` with version promotion."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ParameterError("cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[CacheKey, AnchoredKCoreResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    # Basic LRU operations
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of retained entries."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[AnchoredKCoreResult]:
        """Return the cached result for ``key`` (refreshing recency) or None."""
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: CacheKey, result: AnchoredKCoreResult) -> None:
        """Store ``result`` under ``key``, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Version maintenance
    # ------------------------------------------------------------------
    def promote(
        self,
        old_version: int,
        new_version: int,
        keep: Callable[[CacheKey], bool],
    ) -> Tuple[int, int]:
        """Advance the cache across one graph-version bump.

        Entries at ``old_version`` satisfying ``keep`` are re-keyed to
        ``new_version`` (their answers provably survive the delta); everything
        else — including entries left over from even older versions — is
        dropped.  Relative LRU order of the survivors is preserved.  Returns
        ``(promoted, invalidated)`` counts.
        """
        promoted = 0
        invalidated = 0
        survivors: "OrderedDict[CacheKey, AnchoredKCoreResult]" = OrderedDict()
        for key, result in self._entries.items():
            if key.version == old_version and keep(key):
                survivors[
                    CacheKey(new_version, key.k, key.budget, key.solver)
                ] = result
                promoted += 1
            else:
                invalidated += 1
        self._entries = survivors
        self.promotions += promoted
        self.invalidations += invalidated
        return promoted, invalidated

    def invalidate(self, predicate: Callable[[CacheKey], bool]) -> int:
        """Evict every entry whose key satisfies ``predicate``; return count."""
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    # ------------------------------------------------------------------
    # Introspection / checkpointing
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[CacheKey, AnchoredKCoreResult]]:
        """Iterate entries from least- to most-recently used."""
        return iter(self._entries.items())

    def keys(self) -> Iterator[CacheKey]:
        """Iterate keys from least- to most-recently used."""
        return iter(self._entries)
