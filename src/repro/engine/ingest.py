"""Ingest buffer: batch and coalesce a live edge stream into deltas.

A production tracker does not pay a core-maintenance traversal per arriving
edge event.  The buffer absorbs raw insert/remove operations, keeps only the
*net* operation per edge (last writer wins, the same rule as
:meth:`EdgeDelta.merge`), and cancels pairs that provably cannot change the
live graph — an insert of an edge that is already present, a remove of an
absent one, or an insert→remove round trip on an edge the graph never had.
``flush()`` then hands one compact :class:`EdgeDelta` to the core maintainer.

Soundness of the cancellation rules rests on the engine's contract that the
graph only mutates through ``flush()``: between two flushes the graph the
buffer consults is exactly the graph the pending operations will be applied
to, so a no-op at buffering time is still a no-op at flush time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.graph.dynamic import EdgeDelta, _normalise_edge
from repro.graph.static import Graph, Vertex


class IngestBuffer:
    """Accumulates edge operations and coalesces them into one delta.

    Parameters
    ----------
    graph:
        Optional live graph to consult for exact no-op cancellation.  Without
        it the buffer still coalesces opposing pairs down to the final
        operation per edge (which is always sound — see
        :meth:`repro.graph.dynamic.EdgeDelta.merge`).
    """

    def __init__(self, graph: Optional[Graph] = None) -> None:
        self._graph = graph
        self._pending: Dict[Tuple[Vertex, Vertex], int] = {}
        self.ingested = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    # Buffering
    # ------------------------------------------------------------------
    def insert(self, u: Vertex, v: Vertex) -> None:
        """Buffer the insertion of edge ``(u, v)``."""
        self._offer(_normalise_edge((u, v)), 1)

    def remove(self, u: Vertex, v: Vertex) -> None:
        """Buffer the removal of edge ``(u, v)``."""
        self._offer(_normalise_edge((u, v)), -1)

    def extend(self, delta: EdgeDelta) -> None:
        """Buffer a whole delta (insertions first, matching ``delta.apply``)."""
        for u, v in delta.inserted:
            self.insert(u, v)
        for u, v in delta.removed:
            self.remove(u, v)

    def _offer(self, edge: Tuple[Vertex, Vertex], op: int) -> None:
        self.ingested += 1
        pending = self._pending.get(edge)
        if pending == -op:
            # Opposing pair: the net effect is "edge ends up as `op` says".
            # If the live graph already agrees, both operations cancel.
            if self._graph is not None and self._graph.has_edge(*edge) == (op > 0):
                del self._pending[edge]
                self.cancelled += 2
                return
            self._pending[edge] = op
            return
        if pending == op:
            self.cancelled += 1  # duplicate of an already-pending operation
            return
        if self._graph is not None and self._graph.has_edge(*edge) == (op > 0):
            self.cancelled += 1  # no-op against the live graph
            return
        self._pending[edge] = op

    # ------------------------------------------------------------------
    # Views and draining
    # ------------------------------------------------------------------
    @property
    def pending_changes(self) -> int:
        """Number of net operations currently buffered."""
        return len(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def is_empty(self) -> bool:
        """Return whether a flush would be a no-op."""
        return not self._pending

    def peek(self) -> EdgeDelta:
        """Return the coalesced delta without clearing the buffer."""
        return EdgeDelta.from_iterables(
            inserted=(edge for edge, op in self._pending.items() if op > 0),
            removed=(edge for edge, op in self._pending.items() if op < 0),
        )

    def flush(self) -> EdgeDelta:
        """Return the coalesced delta and reset the buffer."""
        delta = self.peek()
        self._pending.clear()
        return delta
