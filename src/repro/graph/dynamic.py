"""Evolving graphs: snapshot sequences and edge deltas.

The paper models an evolving network as a sequence of snapshot graphs
``G = {G_t}_{t=1..T}`` that share a vertex set, with edge insertions ``E+``
and deletions ``E-`` between consecutive snapshots.  Two representations are
provided:

* :class:`SnapshotSequence` — a materialised list of :class:`~repro.graph.static.Graph`
  snapshots (convenient for loaders and small experiments); and
* :class:`EvolvingGraph` — a base graph plus a list of :class:`EdgeDelta`
  objects, which is the representation the incremental algorithm consumes.

Both can be converted into each other losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SnapshotError
from repro.graph.static import Edge, Graph, Vertex
from repro.ordering import edge_tie_break_key, tie_break_key


def _normalise_edge(edge: Edge) -> Tuple[Vertex, Vertex]:
    """Return the edge as a canonically ordered tuple so deltas compare cleanly."""
    u, v = edge
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        # Mixed / unorderable vertex types: fall back to the shared tie-break
        # ordering, which is stable within a single process and sufficient for
        # set semantics.
        return (u, v) if tie_break_key(u) <= tie_break_key(v) else (v, u)


@dataclass(frozen=True)
class EdgeDelta:
    """The change set between two consecutive snapshots.

    Attributes
    ----------
    inserted:
        Edges present in ``G_t`` but not in ``G_{t-1}`` (the paper's ``E+``).
    removed:
        Edges present in ``G_{t-1}`` but not in ``G_t`` (the paper's ``E-``).
    """

    inserted: Tuple[Tuple[Vertex, Vertex], ...] = ()
    removed: Tuple[Tuple[Vertex, Vertex], ...] = ()

    @classmethod
    def from_iterables(
        cls,
        inserted: Iterable[Edge] = (),
        removed: Iterable[Edge] = (),
    ) -> "EdgeDelta":
        """Build a delta from arbitrary edge iterables (edges are canonicalised)."""
        ins = tuple(sorted({_normalise_edge(e) for e in inserted}, key=edge_tie_break_key))
        rem = tuple(sorted({_normalise_edge(e) for e in removed}, key=edge_tie_break_key))
        return cls(inserted=ins, removed=rem)

    @classmethod
    def between(cls, before: Graph, after: Graph) -> "EdgeDelta":
        """Compute the delta that turns ``before`` into ``after``."""
        before_edges = before.edge_set()
        after_edges = after.edge_set()
        inserted = [tuple(edge) for edge in after_edges - before_edges]
        removed = [tuple(edge) for edge in before_edges - after_edges]
        return cls.from_iterables(inserted=inserted, removed=removed)

    @classmethod
    def merge(cls, *deltas: "EdgeDelta", base: Optional[Graph] = None) -> "EdgeDelta":
        """Coalesce consecutive deltas into one, cancelling opposing pairs.

        Within each delta insertions apply before removals (the order
        :meth:`apply` uses), and across deltas the *last* operation on an edge
        decides its final state.  That rule is sound regardless of the base
        graph: an edge whose last operation is an insertion ends up present
        (re-inserting a present edge is a no-op) and one whose last operation
        is a removal ends up absent (removing an absent edge is a no-op), so
        applying the merged delta is equivalent to applying the sequence.

        When ``base`` is given, operations that cannot change it are dropped
        entirely — an insert→delete pair on an edge absent from ``base`` (or a
        delete→insert pair on a present one) cancels to nothing instead of
        surviving as a harmless no-op entry.  This is what the streaming
        engine's ingest buffer relies on to keep its batches minimal.
        """
        net: Dict[Tuple[Vertex, Vertex], int] = {}
        for delta in deltas:
            for edge in delta.inserted:
                net[_normalise_edge(edge)] = 1
            for edge in delta.removed:
                net[_normalise_edge(edge)] = -1
        if base is not None:
            net = {
                edge: state
                for edge, state in net.items()
                if base.has_edge(*edge) != (state > 0)
            }
        return cls.from_iterables(
            inserted=(edge for edge, state in net.items() if state > 0),
            removed=(edge for edge, state in net.items() if state < 0),
        )

    @property
    def num_changes(self) -> int:
        """Total number of edge insertions plus deletions."""
        return len(self.inserted) + len(self.removed)

    def is_empty(self) -> bool:
        """Return whether the delta performs no change."""
        return not self.inserted and not self.removed

    def apply(self, graph: Graph) -> None:
        """Apply this delta to ``graph`` in place (insertions first, then removals).

        Insertions of already-present edges and removals of absent edges are
        ignored, mirroring how the paper builds snapshots from noisy temporal
        data.
        """
        for u, v in self.inserted:
            graph.add_edge(u, v)
        for u, v in self.removed:
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)

    def reversed(self) -> "EdgeDelta":
        """Return the delta that undoes this one."""
        return EdgeDelta(inserted=self.removed, removed=self.inserted)


class SnapshotSequence:
    """A materialised sequence of graph snapshots sharing one vertex universe."""

    def __init__(self, snapshots: Sequence[Graph]) -> None:
        if not snapshots:
            raise SnapshotError("a snapshot sequence needs at least one snapshot")
        self._snapshots: List[Graph] = list(snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> Graph:
        try:
            return self._snapshots[index]
        except IndexError:
            raise SnapshotError(
                f"snapshot index {index} out of range for {len(self._snapshots)} snapshots"
            ) from None

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots ``T``."""
        return len(self._snapshots)

    def vertex_universe(self) -> Set[Vertex]:
        """Union of the vertex sets of every snapshot."""
        universe: Set[Vertex] = set()
        for snapshot in self._snapshots:
            universe.update(snapshot.vertices())
        return universe

    def deltas(self) -> List[EdgeDelta]:
        """Return the ``T - 1`` deltas between consecutive snapshots."""
        return [
            EdgeDelta.between(self._snapshots[t - 1], self._snapshots[t])
            for t in range(1, len(self._snapshots))
        ]

    def to_evolving_graph(self) -> "EvolvingGraph":
        """Convert to the delta-based representation."""
        return EvolvingGraph(base=self._snapshots[0].copy(), deltas=self.deltas())

    def truncated(self, num_snapshots: int) -> "SnapshotSequence":
        """Return a new sequence keeping only the first ``num_snapshots`` snapshots."""
        if num_snapshots < 1 or num_snapshots > len(self._snapshots):
            raise SnapshotError(
                f"cannot truncate {len(self._snapshots)} snapshots to {num_snapshots}"
            )
        return SnapshotSequence(self._snapshots[:num_snapshots])

    def total_edge_changes(self) -> int:
        """Total number of edge insertions and deletions across the sequence."""
        return sum(delta.num_changes for delta in self.deltas())


@dataclass
class EvolvingGraph:
    """Delta-based evolving graph: a base snapshot plus per-step edge deltas.

    ``snapshots()`` replays the deltas to materialise every snapshot; the
    incremental tracker instead consumes the deltas directly so that it never
    rebuilds a graph from scratch.
    """

    base: Graph
    deltas: List[EdgeDelta] = field(default_factory=list)

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots ``T`` (the base counts as snapshot 1)."""
        return len(self.deltas) + 1

    def snapshots(self) -> Iterator[Graph]:
        """Yield every snapshot as an independent :class:`Graph` copy."""
        current = self.base.copy()
        yield current.copy()
        for delta in self.deltas:
            delta.apply(current)
            yield current.copy()

    def snapshot_at(self, index: int) -> Graph:
        """Materialise the snapshot with 0-based ``index``."""
        if index < 0 or index >= self.num_snapshots:
            raise SnapshotError(
                f"snapshot index {index} out of range for {self.num_snapshots} snapshots"
            )
        current = self.base.copy()
        for delta in self.deltas[:index]:
            delta.apply(current)
        return current

    def to_snapshot_sequence(self) -> SnapshotSequence:
        """Materialise every snapshot into a :class:`SnapshotSequence`."""
        return SnapshotSequence(list(self.snapshots()))

    def truncated(self, num_snapshots: int) -> "EvolvingGraph":
        """Return an evolving graph keeping only the first ``num_snapshots`` snapshots."""
        if num_snapshots < 1 or num_snapshots > self.num_snapshots:
            raise SnapshotError(
                f"cannot truncate {self.num_snapshots} snapshots to {num_snapshots}"
            )
        return EvolvingGraph(base=self.base.copy(), deltas=list(self.deltas[: num_snapshots - 1]))

    def total_edge_changes(self) -> int:
        """Total number of edge insertions and deletions across all deltas."""
        return sum(delta.num_changes for delta in self.deltas)
