"""Random graph and snapshot-evolution generators.

The paper evaluates on six SNAP datasets.  Three of them (email-Enron,
Gnutella, Deezer) are static graphs that the authors perturb into 30 synthetic
snapshots by "randomly remove 100-250 edges ... and randomly add 100-250 new
edges" per step; the other three (eu-core, mathoverflow, CollegeMsg) are
temporal edge streams split into ``T`` time windows.  This module provides
seeded, dependency-free generators for both regimes:

* static topology generators (Erdős–Rényi, Barabási–Albert, planted
  communities) used by :mod:`repro.graph.datasets` to build dataset stand-ins;
* :func:`perturb_snapshots` implementing the paper's remove-then-add snapshot
  procedure; and
* :func:`temporal_edge_stream` plus :func:`split_stream_into_snapshots` to
  emulate the temporal datasets, including the paper's inactivity window
  ``W`` after which an edge disappears.

All generators take an explicit ``seed`` (or a :class:`random.Random`) so that
experiments are reproducible run-to-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ParameterError
from repro.graph.dynamic import EdgeDelta, EvolvingGraph, SnapshotSequence
from repro.graph.static import Graph, Vertex
from repro.ordering import edge_tie_break_key, tie_break_key


def _as_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from an int seed, an existing RNG, or ``None``."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ---------------------------------------------------------------------------
# Static topology generators
# ---------------------------------------------------------------------------
def erdos_renyi_graph(num_vertices: int, num_edges: int, seed: int | random.Random | None = None) -> Graph:
    """Return a G(n, m) random graph with exactly ``num_edges`` distinct edges.

    Raises :class:`ParameterError` if more edges are requested than the simple
    graph can hold.
    """
    if num_vertices < 0:
        raise ParameterError("num_vertices must be non-negative")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges < 0 or num_edges > max_edges:
        raise ParameterError(
            f"num_edges={num_edges} outside [0, {max_edges}] for n={num_vertices}"
        )
    rng = _as_rng(seed)
    graph = Graph(vertices=range(num_vertices))
    edges: Set[Tuple[int, int]] = set()
    # Dense fallback: enumerate all pairs when the request is close to complete.
    if max_edges and num_edges > max_edges // 2:
        all_pairs = [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)]
        rng.shuffle(all_pairs)
        for u, v in all_pairs[:num_edges]:
            graph.add_edge(u, v)
        return graph
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in edges:
            continue
        edges.add(edge)
        graph.add_edge(*edge)
    return graph


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int | random.Random | None = None,
) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``edges_per_vertex`` distinct existing vertices
    chosen proportionally to degree.  The result has a heavy-tailed degree
    distribution, matching the communication/social datasets in the paper.
    """
    if edges_per_vertex < 1:
        raise ParameterError("edges_per_vertex must be >= 1")
    if num_vertices <= edges_per_vertex:
        raise ParameterError("num_vertices must exceed edges_per_vertex")
    rng = _as_rng(seed)
    graph = Graph(vertices=range(num_vertices))
    # Seed clique over the first m+1 vertices so every early vertex has degree >= m.
    repeated: List[int] = []
    for u in range(edges_per_vertex + 1):
        for v in range(u + 1, edges_per_vertex + 1):
            graph.add_edge(u, v)
            repeated.extend((u, v))
    for new_vertex in range(edges_per_vertex + 1, num_vertices):
        targets: Set[int] = set()
        while len(targets) < edges_per_vertex:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(new_vertex, target)
            repeated.extend((new_vertex, target))
    return graph


def planted_community_graph(
    num_communities: int,
    community_size: int,
    intra_edge_probability: float,
    inter_edges: int,
    seed: int | random.Random | None = None,
) -> Graph:
    """Return a planted-partition graph: dense communities, sparse bridges.

    This mimics the "reading hobby community" structure of the paper's running
    example, where anchoring a few boundary users pulls whole near-communities
    into the k-core.
    """
    if not 0.0 <= intra_edge_probability <= 1.0:
        raise ParameterError("intra_edge_probability must be within [0, 1]")
    if num_communities < 1 or community_size < 1:
        raise ParameterError("num_communities and community_size must be >= 1")
    rng = _as_rng(seed)
    total = num_communities * community_size
    graph = Graph(vertices=range(total))
    for community in range(num_communities):
        start = community * community_size
        members = range(start, start + community_size)
        for u in members:
            for v in range(u + 1, start + community_size):
                if rng.random() < intra_edge_probability:
                    graph.add_edge(u, v)
    for _ in range(inter_edges):
        first_community = rng.randrange(num_communities)
        second_community = rng.randrange(num_communities)
        if first_community == second_community:
            continue
        u = first_community * community_size + rng.randrange(community_size)
        v = second_community * community_size + rng.randrange(community_size)
        if u != v:
            graph.add_edge(u, v)
    return graph


def powerlaw_cluster_graph(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int | random.Random | None = None,
) -> Graph:
    """Return a Holme–Kim style power-law graph with tunable clustering.

    Like :func:`barabasi_albert_graph` but after each preferential attachment
    an extra triangle-closing edge is added with ``triangle_probability``,
    which raises the core numbers and better matches dense social datasets.
    """
    if not 0.0 <= triangle_probability <= 1.0:
        raise ParameterError("triangle_probability must be within [0, 1]")
    if edges_per_vertex < 1:
        raise ParameterError("edges_per_vertex must be >= 1")
    if num_vertices <= edges_per_vertex:
        raise ParameterError("num_vertices must exceed edges_per_vertex")
    rng = _as_rng(seed)
    graph = Graph(vertices=range(num_vertices))
    repeated: List[int] = []
    for u in range(edges_per_vertex + 1):
        for v in range(u + 1, edges_per_vertex + 1):
            graph.add_edge(u, v)
            repeated.extend((u, v))
    for new_vertex in range(edges_per_vertex + 1, num_vertices):
        added = 0
        last_target: Optional[int] = None
        guard = 0
        while added < edges_per_vertex and guard < 100 * edges_per_vertex:
            guard += 1
            close_triangle = (
                last_target is not None
                and rng.random() < triangle_probability
                and graph.degree(last_target) > 0
            )
            if close_triangle:
                target = rng.choice(sorted(graph.neighbors(last_target), key=tie_break_key))
            else:
                target = rng.choice(repeated)
            if target == new_vertex or graph.has_edge(new_vertex, target):
                continue
            graph.add_edge(new_vertex, target)
            repeated.extend((new_vertex, target))
            last_target = target
            added += 1
    return graph


def chung_lu_graph(
    num_vertices: int,
    num_edges: int,
    skew: float = 1.2,
    seed: int | random.Random | None = None,
) -> Graph:
    """Return a Chung–Lu style random graph with a heavy-tailed degree sequence.

    Each vertex receives a Zipf-like weight ``(rank + 1) ** -skew``; edges are
    sampled with probability proportional to the product of endpoint weights
    until ``num_edges`` distinct edges exist.  Unlike preferential attachment,
    this produces a *graded* core structure (shells populated at every level up
    to the degeneracy) — the shape real communication and social networks such
    as email-Enron exhibit, and the shape the anchored k-core problem needs for
    anchors to have followers at a range of ``k`` values.
    """
    if num_vertices < 2:
        raise ParameterError("num_vertices must be >= 2")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges < 0 or num_edges > max_edges:
        raise ParameterError(
            f"num_edges={num_edges} outside [0, {max_edges}] for n={num_vertices}"
        )
    if skew < 0:
        raise ParameterError("skew must be non-negative")
    rng = _as_rng(seed)
    weights = [(rank + 1) ** -skew for rank in range(num_vertices)]
    total_weight = sum(weights)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total_weight
        cumulative.append(running)

    def sample_vertex() -> int:
        target = rng.random()
        low, high = 0, num_vertices - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low

    graph = Graph(vertices=range(num_vertices))
    guard = 0
    while graph.num_edges < num_edges and guard < 200 * num_edges + 1000:
        guard += 1
        u = sample_vertex()
        v = sample_vertex()
        if u == v:
            continue
        graph.add_edge(u, v)
    return graph


# ---------------------------------------------------------------------------
# Snapshot evolution (the paper's synthetic procedure)
# ---------------------------------------------------------------------------
def perturb_snapshots(
    base: Graph,
    num_snapshots: int,
    removals_per_step: Tuple[int, int] = (100, 250),
    insertions_per_step: Tuple[int, int] = (100, 250),
    seed: int | random.Random | None = None,
) -> EvolvingGraph:
    """Generate an evolving graph by the paper's perturbation procedure.

    Starting from ``base`` (snapshot ``T1``), each step removes a uniformly
    random count of existing edges within ``removals_per_step`` and then adds
    the same style of count of new random edges within ``insertions_per_step``
    (Section 6.1 of the paper).  The vertex set never changes, so consecutive
    snapshots evolve smoothly — which is exactly the property IncAVT exploits.
    """
    if num_snapshots < 1:
        raise ParameterError("num_snapshots must be >= 1")
    lo_rem, hi_rem = removals_per_step
    lo_ins, hi_ins = insertions_per_step
    if lo_rem < 0 or hi_rem < lo_rem or lo_ins < 0 or hi_ins < lo_ins:
        raise ParameterError("per-step removal/insertion ranges must be non-negative and ordered")
    rng = _as_rng(seed)
    vertices = sorted(base.vertices(), key=tie_break_key)
    current = base.copy()
    deltas: List[EdgeDelta] = []
    for _ in range(num_snapshots - 1):
        existing = sorted(current.edges(), key=edge_tie_break_key)
        num_removals = min(rng.randint(lo_rem, hi_rem), len(existing))
        removed = rng.sample(existing, num_removals) if num_removals else []
        removed_set = {frozenset(edge) for edge in removed}

        num_insertions = rng.randint(lo_ins, hi_ins)
        inserted: List[Tuple[Vertex, Vertex]] = []
        inserted_set: Set[frozenset] = set()
        guard = 0
        while len(inserted) < num_insertions and guard < 50 * max(num_insertions, 1):
            guard += 1
            u = rng.choice(vertices)
            v = rng.choice(vertices)
            if u == v:
                continue
            key = frozenset((u, v))
            if key in inserted_set:
                continue
            if current.has_edge(u, v) and key not in removed_set:
                continue
            inserted.append((u, v))
            inserted_set.add(key)
        delta = EdgeDelta.from_iterables(inserted=inserted, removed=removed)
        delta.apply(current)
        deltas.append(delta)
    return EvolvingGraph(base=base.copy(), deltas=deltas)


# ---------------------------------------------------------------------------
# Temporal edge streams (eu-core / mathoverflow / CollegeMsg style)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TemporalEdge:
    """A timestamped undirected interaction between two vertices."""

    u: Vertex
    v: Vertex
    timestamp: float


def temporal_edge_stream(
    num_vertices: int,
    num_events: int,
    duration: float,
    activity_skew: float = 1.5,
    seed: int | random.Random | None = None,
) -> List[TemporalEdge]:
    """Generate a synthetic temporal interaction stream.

    Vertex activity follows a Zipf-like distribution with exponent
    ``activity_skew`` so a small set of hub users generates most interactions,
    matching the e-mail and messaging datasets used in the paper.  Timestamps
    are uniform over ``[0, duration)`` and the stream is returned sorted.
    """
    if num_vertices < 2:
        raise ParameterError("num_vertices must be >= 2")
    if num_events < 0:
        raise ParameterError("num_events must be >= 0")
    if duration <= 0:
        raise ParameterError("duration must be positive")
    rng = _as_rng(seed)
    weights = [1.0 / (rank + 1) ** activity_skew for rank in range(num_vertices)]
    total_weight = sum(weights)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total_weight
        cumulative.append(running)

    def sample_vertex() -> int:
        target = rng.random()
        low, high = 0, num_vertices - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low

    events: List[TemporalEdge] = []
    while len(events) < num_events:
        u = sample_vertex()
        v = sample_vertex()
        if u == v:
            continue
        events.append(TemporalEdge(u=u, v=v, timestamp=rng.uniform(0.0, duration)))
    events.sort(key=lambda event: event.timestamp)
    return events


def split_stream_into_snapshots(
    events: Sequence[TemporalEdge],
    num_snapshots: int,
    inactivity_window: Optional[float] = None,
    vertices: Optional[Iterable[Vertex]] = None,
) -> SnapshotSequence:
    """Split a temporal edge stream into ``num_snapshots`` cumulative snapshots.

    Following Section 6.1, snapshot ``G_t`` contains every edge that appeared
    in window ``t`` or earlier, except that an edge disappears once it has been
    inactive for longer than ``inactivity_window`` time units (the paper's
    ``W``, e.g. 365 days for mathoverflow).  When ``inactivity_window`` is
    ``None`` edges never expire and snapshots only grow.
    """
    if num_snapshots < 1:
        raise ParameterError("num_snapshots must be >= 1")
    if not events and vertices is None:
        raise ParameterError("cannot split an empty stream without an explicit vertex set")

    start = events[0].timestamp if events else 0.0
    end = events[-1].timestamp if events else 1.0
    span = max(end - start, 1e-12)
    window_length = span / num_snapshots

    universe: Set[Vertex] = set(vertices) if vertices is not None else set()
    for event in events:
        universe.add(event.u)
        universe.add(event.v)

    last_active: dict = {}
    snapshots: List[Graph] = []
    event_index = 0
    for window in range(1, num_snapshots + 1):
        window_end = start + window * window_length
        if window == num_snapshots:
            window_end = end + 1e-9
        while event_index < len(events) and events[event_index].timestamp <= window_end:
            event = events[event_index]
            key = frozenset((event.u, event.v))
            last_active[key] = max(last_active.get(key, event.timestamp), event.timestamp)
            event_index += 1
        graph = Graph(vertices=universe)
        for key, timestamp in last_active.items():
            if inactivity_window is not None and window_end - timestamp > inactivity_window:
                continue
            u, v = tuple(key)
            graph.add_edge(u, v)
        snapshots.append(graph)
    return SnapshotSequence(snapshots)
