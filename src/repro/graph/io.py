"""Readers and writers for SNAP-style edge lists and temporal edge lists.

The paper evaluates on datasets from the Stanford Network Analysis Project.
SNAP distributes static graphs as whitespace-separated edge lists (``u v`` per
line, ``#`` comments) and temporal graphs as ``u v timestamp`` lines.  These
functions let a user of this library drop in the real datasets; the bundled
experiments use the synthetic stand-ins from :mod:`repro.graph.datasets`
because the originals cannot be shipped offline.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import DatasetError
from repro.graph.generators import TemporalEdge, split_stream_into_snapshots
from repro.graph.dynamic import SnapshotSequence
from repro.graph.static import Graph
from repro.ordering import edge_tie_break_key

PathLike = Union[str, Path]


def _open_maybe_gzip(path: PathLike) -> TextIO:
    """Open a text file, transparently decompressing ``.gz`` files."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "rt", encoding="utf-8")


def _parse_lines(handle: TextIO) -> Iterator[List[str]]:
    """Yield whitespace-split fields of non-empty, non-comment lines."""
    for line_number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        yield line.split()


def read_edge_list(path: PathLike, directed_as_undirected: bool = True) -> Graph:
    """Read a SNAP static edge list into a :class:`Graph`.

    Lines are ``u v``; vertex ids are parsed as integers when possible and kept
    as strings otherwise.  Directed inputs (e.g. Gnutella) are symmetrised when
    ``directed_as_undirected`` is true, matching the paper's undirected model.
    """
    graph = Graph()
    with _open_maybe_gzip(path) as handle:
        for fields in _parse_lines(handle):
            if len(fields) < 2:
                raise DatasetError(f"malformed edge line in {path}: {fields!r}")
            u, v = _coerce(fields[0]), _coerce(fields[1])
            if u == v:
                continue
            graph.add_edge(u, v)
            if not directed_as_undirected:
                # Undirected storage already covers both directions; nothing extra.
                pass
    return graph


def read_temporal_edge_list(path: PathLike) -> List[TemporalEdge]:
    """Read a SNAP temporal edge list (``u v timestamp``) into a sorted stream."""
    events: List[TemporalEdge] = []
    with _open_maybe_gzip(path) as handle:
        for fields in _parse_lines(handle):
            if len(fields) < 3:
                raise DatasetError(f"malformed temporal edge line in {path}: {fields!r}")
            u, v = _coerce(fields[0]), _coerce(fields[1])
            if u == v:
                continue
            try:
                timestamp = float(fields[2])
            except ValueError as exc:
                raise DatasetError(f"bad timestamp in {path}: {fields[2]!r}") from exc
            events.append(TemporalEdge(u=u, v=v, timestamp=timestamp))
    events.sort(key=lambda event: event.timestamp)
    return events


def read_temporal_snapshots(
    path: PathLike,
    num_snapshots: int,
    inactivity_window: Optional[float] = None,
) -> SnapshotSequence:
    """Read a temporal edge list and split it into ``num_snapshots`` snapshots.

    This composes :func:`read_temporal_edge_list` with the windowing procedure
    of Section 6.1 (see :func:`repro.graph.generators.split_stream_into_snapshots`).
    """
    events = read_temporal_edge_list(path)
    if not events:
        raise DatasetError(f"temporal dataset {path} contains no events")
    return split_stream_into_snapshots(
        events, num_snapshots=num_snapshots, inactivity_window=inactivity_window
    )


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` as a SNAP-style edge list (one ``u v`` pair per line)."""
    path = Path(path)
    with open(path, "wt", encoding="utf-8") as handle:
        handle.write(f"# Undirected graph: {graph.num_vertices} nodes, {graph.num_edges} edges\n")
        for u, v in sorted(graph.edges(), key=edge_tie_break_key):
            handle.write(f"{u} {v}\n")


def write_temporal_edge_list(events: Iterable[TemporalEdge], path: PathLike) -> None:
    """Write a temporal edge stream as ``u v timestamp`` lines."""
    path = Path(path)
    with open(path, "wt", encoding="utf-8") as handle:
        for event in events:
            handle.write(f"{event.u} {event.v} {event.timestamp}\n")


def _coerce(token: str):
    """Parse a vertex token as int when possible, otherwise keep the string."""
    try:
        return int(token)
    except ValueError:
        return token
