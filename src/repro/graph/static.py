"""Undirected simple graph backed by adjacency sets.

The paper's algorithms operate on undirected, unweighted, simple graphs whose
vertex identifiers are arbitrary hashable objects (the experiments use
integers).  ``networkx`` is deliberately not used inside the library: the core
maintenance and anchored-core algorithms need tight control over adjacency
mutation and the ability to copy cheaply, and an adjacency-set ``dict`` is the
fastest pure-Python representation for both.  ``networkx`` is only used in the
test-suite as an independent oracle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.errors import EdgeNotFoundError, SelfLoopError, VertexNotFoundError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Graph:
    """An undirected simple graph.

    Vertices may exist with zero degree (the paper models users that joined
    the platform but currently have no active ties).  Parallel edges and
    self-loops are rejected.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs inserted at construction time.
    vertices:
        Optional iterable of vertices inserted (possibly isolated) at
        construction time.
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(
        self,
        edges: Iterable[Edge] | None = None,
        vertices: Iterable[Vertex] | None = None,
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        if vertices is not None:
            for vertex in vertices:
                self.add_vertex(vertex)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of edges, ignoring duplicates."""
        return cls(edges=edges)

    def copy(self) -> "Graph":
        """Return an independent deep copy of the adjacency structure."""
        clone = Graph()
        clone._adj = {vertex: set(neighbours) for vertex, neighbours in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Insert ``vertex`` if it is not already present."""
        if vertex not in self._adj:
            self._adj[vertex] = set()

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Insert every vertex of ``vertices`` (duplicates are ignored)."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert the undirected edge ``(u, v)``.

        Missing endpoints are created.  Returns ``True`` if the edge was new
        and ``False`` if it already existed (the graph is left unchanged).
        Raises :class:`SelfLoopError` when ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Insert every edge of ``edges``; return the number actually added."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises :class:`EdgeNotFoundError` when the edge is absent; the
        endpoints themselves are kept (possibly now isolated).
        """
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_edges(self, edges: Iterable[Edge]) -> int:
        """Remove every edge of ``edges`` that exists; return how many were removed."""
        removed = 0
        for u, v in edges:
            if self.has_edge(u, v):
                self.remove_edge(u, v)
                removed += 1
        return removed

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and every incident edge.

        Raises :class:`VertexNotFoundError` when the vertex is absent.
        """
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        for neighbour in self._adj[vertex]:
            self._adj[neighbour].discard(vertex)
        self._num_edges -= len(self._adj[vertex])
        del self._adj[vertex]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_vertex(self, vertex: Vertex) -> bool:
        """Return whether ``vertex`` is in the graph."""
        return vertex in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether the undirected edge ``(u, v)`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return the neighbour set of ``vertex`` (a live view — do not mutate)."""
        try:
            return self._adj[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return the number of neighbours of ``vertex``."""
        return len(self.neighbors(vertex))

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges, each reported once as ``(u, v)``."""
        seen: Set[Vertex] = set()
        for u, neighbours in self._adj.items():
            for v in neighbours:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def edge_set(self) -> Set[FrozenSet[Vertex]]:
        """Return the edges as a set of two-element frozensets."""
        return {frozenset((u, v)) for u, v in self.edges()}

    @property
    def num_vertices(self) -> int:
        """Number of vertices, including isolated ones."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def average_degree(self) -> float:
        """Return ``2m / n`` (0.0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def degree_map(self) -> Dict[Vertex, int]:
        """Return a fresh ``{vertex: degree}`` dictionary."""
        return {vertex: len(neighbours) for vertex, neighbours in self._adj.items()}

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced on the vertices in ``keep``."""
        keep_set = set(keep)
        sub = Graph(vertices=(v for v in keep_set if v in self._adj))
        for u in keep_set:
            if u not in self._adj:
                continue
            for v in self._adj[u]:
                if v in keep_set:
                    sub.add_edge(u, v)
        return sub

    def connected_components(self) -> List[Set[Vertex]]:
        """Return the connected components as a list of vertex sets."""
        components: List[Set[Vertex]] = []
        unseen = set(self._adj)
        while unseen:
            root = next(iter(unseen))
            component = {root}
            frontier = [root]
            unseen.discard(root)
            while frontier:
                current = frontier.pop()
                for neighbour in self._adj[current]:
                    if neighbour in unseen:
                        unseen.discard(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
