"""Graph substrate: static graphs, snapshot sequences, generators, datasets, IO.

Two execution backends live here: the hashable-vertex adjacency-set
:class:`Graph` (the mutable public representation) and the compact
integer-ID layer of :mod:`repro.graph.compact` (interning plus flat CSR
arrays) that the hot kernels run on for large graphs.
"""

from repro.graph.static import Graph
from repro.graph.dynamic import EdgeDelta, EvolvingGraph, SnapshotSequence
from repro.graph.compact import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKENDS,
    COMPACT_THRESHOLD,
    CompactGraph,
    DynamicCompactAdjacency,
    VertexInterner,
    resolve_backend,
)

__all__ = [
    "Graph",
    "EdgeDelta",
    "EvolvingGraph",
    "SnapshotSequence",
    "BACKEND_AUTO",
    "BACKEND_COMPACT",
    "BACKEND_DICT",
    "BACKENDS",
    "COMPACT_THRESHOLD",
    "CompactGraph",
    "DynamicCompactAdjacency",
    "VertexInterner",
    "resolve_backend",
]
