"""Graph substrate: static graphs, snapshot sequences, generators, datasets, IO."""

from repro.graph.static import Graph
from repro.graph.dynamic import EdgeDelta, EvolvingGraph, SnapshotSequence

__all__ = [
    "Graph",
    "EdgeDelta",
    "EvolvingGraph",
    "SnapshotSequence",
]
