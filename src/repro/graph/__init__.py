"""Graph substrate: static graphs, snapshot sequences, generators, datasets, IO.

The hashable-vertex adjacency-set :class:`Graph` is the mutable public
representation; :mod:`repro.graph.compact` provides the interning plus flat
CSR structures that the compact and numpy execution backends
(:mod:`repro.backends`) are built on.  The backend constants and the
resolution policy moved to :mod:`repro.backends`; they are re-exported here
for backwards compatibility.
"""

from repro.graph.static import Graph
from repro.graph.dynamic import EdgeDelta, EvolvingGraph, SnapshotSequence
from repro.graph.compact import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMPY,
    BACKENDS,
    COMPACT_THRESHOLD,
    CompactGraph,
    DynamicCompactAdjacency,
    VertexInterner,
    resolve_backend,
)

__all__ = [
    "Graph",
    "EdgeDelta",
    "EvolvingGraph",
    "SnapshotSequence",
    "BACKEND_AUTO",
    "BACKEND_COMPACT",
    "BACKEND_DICT",
    "BACKEND_NUMPY",
    "BACKENDS",
    "COMPACT_THRESHOLD",
    "CompactGraph",
    "DynamicCompactAdjacency",
    "VertexInterner",
    "resolve_backend",
]
