"""Compact integer-ID graph backend: interning plus flat-array adjacency.

The public API of the library works with arbitrary hashable vertex
identifiers held in an adjacency-set ``dict`` (:class:`~repro.graph.static.Graph`).
That representation is ideal for mutation and for small graphs, but every hot
kernel — peeling decomposition, the K-order index, the shell-local follower
cascade, incremental core maintenance — pays hashing and pointer-chasing
costs on every vertex touch.  This module provides the dense execution layer
those kernels run on instead:

* :class:`VertexInterner` maps hashable vertex ids to dense ``0..n-1``
  integers (and back).  Interning is append-only: an id, once assigned, is
  stable for the interner's lifetime.
* :class:`CompactGraph` is a frozen CSR-style snapshot — ``indptr`` /
  ``indices`` flat arrays of ints — built from a :class:`Graph` in one pass.
  With ``ordered=True`` (the default) vertices are interned in
  :func:`repro.ordering.tie_break_key` order, so the integer id of a vertex
  *is* its deterministic tie-break rank; the peeling kernels exploit this to
  reproduce bit-identical removal orders with single-int heap entries.
* :class:`DynamicCompactAdjacency` is the mutable sibling (list of int sets)
  used by :class:`repro.cores.maintenance.CoreMaintainer` to run the
  insertion/deletion traversals over ints while the graph evolves.

Backend selection
-----------------
Selection no longer lives here: :mod:`repro.backends` owns the
:class:`~repro.backends.ExecutionBackend` protocol, the registry and the
``"auto"`` resolution policy (see :mod:`repro.backends.registry` for the
policy).  This module provides the *data structures* the compact, numpy and
numba backends are built on.  The historical names (:data:`BACKEND_AUTO`,
:data:`BACKEND_DICT`, :data:`BACKEND_COMPACT`, :data:`BACKENDS`,
:data:`COMPACT_THRESHOLD`, :func:`resolve_backend`) are re-exported for
backwards compatibility.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

# Backwards-compatible re-exports: the constants and the resolution policy
# moved to repro.backends (PR 3); existing imports keep working.
from repro.backends import (  # noqa: F401
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMBA,
    BACKEND_NUMPY,
    BACKEND_SHARDED,
    BACKENDS,
    COMPACT_THRESHOLD,
    resolve_backend,
)
from repro.errors import VertexNotFoundError
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key


class VertexInterner:
    """Bidirectional mapping between hashable vertex ids and dense integers.

    Ids are assigned in first-seen order, starting at 0, and never change or
    disappear — consumers may therefore index flat arrays by id for the
    interner's whole lifetime.
    """

    __slots__ = ("_ids", "_vertices")

    def __init__(self, vertices: Optional[Iterable[Vertex]] = None) -> None:
        self._ids: Dict[Vertex, int] = {}
        self._vertices: List[Vertex] = []
        if vertices is not None:
            for vertex in vertices:
                self.intern(vertex)

    def intern(self, vertex: Vertex) -> int:
        """Return the id of ``vertex``, assigning the next dense id if new."""
        vid = self._ids.get(vertex)
        if vid is None:
            vid = len(self._vertices)
            self._ids[vertex] = vid
            self._vertices.append(vertex)
        return vid

    def id_of(self, vertex: Vertex) -> int:
        """Return the id of an already-interned vertex.

        Raises :class:`~repro.errors.VertexNotFoundError` for unknown vertices.
        """
        try:
            return self._ids[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def get_id(self, vertex: Vertex, default: int = -1) -> int:
        """Return the id of ``vertex`` or ``default`` when not interned."""
        return self._ids.get(vertex, default)

    def vertex_of(self, vid: int) -> Vertex:
        """Return the vertex carrying integer id ``vid``."""
        return self._vertices[vid]

    @property
    def vertices(self) -> List[Vertex]:
        """The interned vertices, indexed by id (live list — do not mutate)."""
        return self._vertices

    def translate(self, vids: Iterable[int]) -> set:
        """Return ``vids`` as a set of the original hashable vertices."""
        vertices = self._vertices
        return {vertices[vid] for vid in vids}

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._ids

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VertexInterner(n={len(self._vertices)})"


class CompactGraph:
    """Frozen CSR snapshot of a :class:`~repro.graph.static.Graph`.

    ``indices[indptr[i]:indptr[i + 1]]`` holds the neighbour ids of vertex
    ``i``; ``degrees[i]`` is that row's length.  The structure is a snapshot:
    mutating the source graph afterwards does not update it.

    With ``ordered=True`` vertices are interned in deterministic
    :func:`~repro.ordering.tie_break_key` order, making the integer id double
    as the tie-break rank the peeling kernels need.  ``ordered=False`` skips
    the sort (one ``repr`` call per vertex) and is appropriate for kernels
    whose results are order-independent sets, e.g. the k-core cascade.
    """

    __slots__ = ("interner", "indptr", "indices", "degrees", "ordered", "num_edges")

    def __init__(
        self,
        interner: VertexInterner,
        indptr: List[int],
        indices: List[int],
        ordered: bool,
        num_edges: int,
    ) -> None:
        self.interner = interner
        self.indptr = indptr
        self.indices = indices
        self.ordered = ordered
        self.num_edges = num_edges
        self.degrees = [
            indptr[i + 1] - indptr[i] for i in range(len(interner))
        ]

    @classmethod
    def from_graph(cls, graph: Graph, ordered: bool = True) -> "CompactGraph":
        """Build a CSR snapshot of ``graph`` (one adjacency pass)."""
        if ordered:
            vertex_order = sorted(graph.vertices(), key=tie_break_key)
        else:
            vertex_order = list(graph.vertices())
        interner = VertexInterner(vertex_order)
        ids = interner._ids
        indptr: List[int] = [0]
        indices: List[int] = []
        append = indices.append
        for vertex in vertex_order:
            for neighbour in graph.neighbors(vertex):
                append(ids[neighbour])
            indptr.append(len(indices))
        return cls(
            interner,
            indptr,
            indices,
            ordered=ordered,
            num_edges=graph.num_edges,
        )

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the snapshot."""
        return len(self.interner)

    def neighbor_ids(self, vid: int) -> List[int]:
        """Return the neighbour ids of ``vid`` (a fresh list)."""
        return self.indices[self.indptr[vid] : self.indptr[vid + 1]]

    def __len__(self) -> int:
        return len(self.interner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"ordered={self.ordered})"
        )


class DynamicCompactAdjacency:
    """Mutable integer-ID adjacency: one set of neighbour ids per vertex.

    The incremental maintenance kernels traverse this structure instead of the
    hashable-vertex graph: neighbour iteration yields small ints, and the core
    numbers live in a flat list indexed by id.  Vertices are append-only
    (edge removal keeps endpoints), matching :class:`CoreMaintainer`'s
    contract.
    """

    __slots__ = ("interner", "adj")

    def __init__(self, interner: Optional[VertexInterner] = None) -> None:
        self.interner = interner if interner is not None else VertexInterner()
        self.adj: List[set] = [set() for _ in range(len(self.interner))]

    @classmethod
    def from_graph(cls, graph: Graph) -> "DynamicCompactAdjacency":
        """Mirror the adjacency of ``graph`` (ids in graph iteration order)."""
        mirror = cls(VertexInterner(graph.vertices()))
        ids = mirror.interner._ids
        adj = mirror.adj
        for vertex in graph.vertices():
            row = adj[ids[vertex]]
            for neighbour in graph.neighbors(vertex):
                row.add(ids[neighbour])
        return mirror

    def ensure_vertex(self, vertex: Vertex) -> int:
        """Intern ``vertex`` (creating an empty adjacency row) and return its id."""
        vid = self.interner.intern(vertex)
        while len(self.adj) <= vid:
            self.adj.append(set())
        return vid

    def add_edge_ids(self, u_id: int, v_id: int) -> None:
        """Record the undirected edge between two existing ids."""
        self.adj[u_id].add(v_id)
        self.adj[v_id].add(u_id)

    def remove_edge_ids(self, u_id: int, v_id: int) -> None:
        """Drop the undirected edge between two existing ids (if present)."""
        self.adj[u_id].discard(v_id)
        self.adj[v_id].discard(u_id)

    def __len__(self) -> int:
        return len(self.adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicCompactAdjacency(n={len(self.adj)})"
