"""Synthetic stand-ins for the six SNAP datasets used in the paper.

The evaluation section runs on email-Enron, Gnutella, Deezer (static graphs
perturbed into 30 snapshots) and eu-core, mathoverflow, CollegeMsg (temporal
edge streams split into snapshots).  The originals cannot be redistributed or
downloaded offline, so each dataset has a deterministic synthetic stand-in
whose *shape* matches the original:

===============  =======================  ==========  ============  =================
name             paper type               paper n     paper avg deg generator here
===============  =======================  ==========  ============  =================
email-Enron      communication            36,692      10.0          power-law cluster
Gnutella         P2P overlay              62,586      4.7           sparse Erdős–Rényi
Deezer           social network           41,773      6.0           Barabási–Albert
eu-core          temporal e-mail          986         25.3 (dense)  temporal stream, skewed
mathoverflow     temporal Q&A             13,840      5.9           temporal stream
CollegeMsg       temporal messaging       1,899       10.7          temporal stream, dense
===============  =======================  ==========  ============  =================

The stand-ins are scaled down (hundreds to a few thousand vertices) so the
pure-Python harness finishes in minutes; vertex counts, average degrees,
skewness and the snapshot-evolution procedure follow the table above
proportionally.  The substitution is documented in ``DESIGN.md``; real SNAP
files can be loaded with :mod:`repro.graph.io` and passed through the same
experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import DatasetError
from repro.graph.dynamic import EvolvingGraph, SnapshotSequence
from repro.graph.generators import (
    chung_lu_graph,
    perturb_snapshots,
    split_stream_into_snapshots,
    temporal_edge_stream,
)
from repro.graph.static import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic dataset stand-in.

    Attributes
    ----------
    name:
        Canonical dataset key (e.g. ``"email_enron"``).
    kind:
        ``"static"`` for perturbation-based snapshot sequences, ``"temporal"``
        for window-split temporal streams.
    num_vertices:
        Scaled-down vertex count of the stand-in.
    description:
        Human-readable provenance line, used in reports.
    default_k:
        The core-number default the paper uses for this dataset (3 or 10).
    k_values:
        The k grid the paper sweeps for this dataset.
    """

    name: str
    kind: str
    num_vertices: int
    description: str
    default_k: int
    k_values: Tuple[int, ...]


_SPECS: Dict[str, DatasetSpec] = {
    "email_enron": DatasetSpec(
        name="email_enron",
        kind="static",
        num_vertices=1500,
        description="power-law communication graph (stand-in for SNAP email-Enron)",
        default_k=10,
        k_values=(5, 10, 15, 20),
    ),
    # NOTE: k grids are scaled together with the graphs — see DESIGN.md.  The
    # dense datasets keep the paper's high-k grid; the temporal stand-ins use a
    # grid that matches their (smaller) degeneracy.
    "gnutella": DatasetSpec(
        name="gnutella",
        kind="static",
        num_vertices=2000,
        description="sparse peer-to-peer overlay (stand-in for SNAP p2p-Gnutella)",
        default_k=3,
        k_values=(2, 3, 4),
    ),
    "deezer": DatasetSpec(
        name="deezer",
        kind="static",
        num_vertices=1800,
        description="preferential-attachment social graph (stand-in for SNAP Deezer)",
        default_k=3,
        k_values=(2, 3, 4, 5),
    ),
    "eu_core": DatasetSpec(
        name="eu_core",
        kind="temporal",
        num_vertices=400,
        description="dense temporal e-mail graph (stand-in for SNAP email-Eu-core)",
        default_k=8,
        k_values=(5, 8, 10, 12),
    ),
    "mathoverflow": DatasetSpec(
        name="mathoverflow",
        kind="temporal",
        num_vertices=1200,
        description="temporal question-and-answer graph (stand-in for SNAP sx-mathoverflow)",
        default_k=3,
        k_values=(2, 3, 4, 5),
    ),
    "college_msg": DatasetSpec(
        name="college_msg",
        kind="temporal",
        num_vertices=500,
        description="temporal private-messaging graph (stand-in for SNAP CollegeMsg)",
        default_k=5,
        k_values=(3, 5, 7, 9),
    ),
}

#: Names of all bundled dataset stand-ins, in the order the paper lists them.
DATASET_NAMES: Tuple[str, ...] = (
    "email_enron",
    "gnutella",
    "deezer",
    "eu_core",
    "mathoverflow",
    "college_msg",
)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name``.

    Raises :class:`DatasetError` for unknown names.
    """
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") from None


def _base_graph(spec: DatasetSpec, seed: int, scale: float) -> Graph:
    """Build the static base topology for a perturbation-based dataset.

    The Chung–Lu generator is used for all three because real communication /
    social graphs have heavy-tailed degrees with a *graded* core structure
    (every shell populated up to the degeneracy), which is what makes anchoring
    meaningful at a range of ``k`` values.  The skew and density parameters are
    tuned per dataset to approximate the originals' average degree.
    """
    num_vertices = max(50, int(spec.num_vertices * scale))
    if spec.name == "email_enron":
        # Average degree ~10, strongly skewed hubs (communication graph).
        return chung_lu_graph(
            num_vertices=num_vertices, num_edges=num_vertices * 5, skew=1.35, seed=seed
        )
    if spec.name == "gnutella":
        # Average degree ~4.7, mild skew (peer-to-peer overlay).
        return chung_lu_graph(
            num_vertices=num_vertices,
            num_edges=int(num_vertices * 2.4),
            skew=0.9,
            seed=seed,
        )
    if spec.name == "deezer":
        # Average degree ~6, moderate skew (friendship graph).
        return chung_lu_graph(
            num_vertices=num_vertices, num_edges=num_vertices * 3, skew=1.15, seed=seed
        )
    raise DatasetError(f"dataset {spec.name!r} is not a static dataset")


def _temporal_snapshots(
    spec: DatasetSpec, num_snapshots: int, seed: int, scale: float
) -> SnapshotSequence:
    """Build the snapshot sequence for a temporal dataset stand-in."""
    num_vertices = max(40, int(spec.num_vertices * scale))
    if spec.name == "eu_core":
        events = temporal_edge_stream(
            num_vertices=num_vertices,
            num_events=num_vertices * 40,
            duration=803.0,
            activity_skew=1.2,
            seed=seed,
        )
        window = 365.0
    elif spec.name == "mathoverflow":
        events = temporal_edge_stream(
            num_vertices=num_vertices,
            num_events=num_vertices * 36,
            duration=2350.0,
            activity_skew=1.5,
            seed=seed,
        )
        window = 365.0
    elif spec.name == "college_msg":
        events = temporal_edge_stream(
            num_vertices=num_vertices,
            num_events=num_vertices * 25,
            duration=193.0,
            activity_skew=1.4,
            seed=seed,
        )
        window = 90.0
    else:
        raise DatasetError(f"dataset {spec.name!r} is not a temporal dataset")
    return split_stream_into_snapshots(
        events, num_snapshots=num_snapshots, inactivity_window=window
    )


def load_dataset(
    name: str,
    num_snapshots: int = 30,
    seed: int = 7,
    scale: float = 1.0,
    edge_churn: Optional[Tuple[int, int]] = None,
) -> EvolvingGraph:
    """Load a synthetic dataset stand-in as an :class:`EvolvingGraph`.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    num_snapshots:
        The number of snapshots ``T`` (the paper uses 30).
    seed:
        Deterministic generator seed.
    scale:
        Multiplier on the stand-in vertex count; benchmarks use ``scale < 1``
        for quick runs and ``scale = 1`` for the recorded experiments.
    edge_churn:
        Per-step ``(low, high)`` edge removal/insertion counts for the static
        datasets.  Defaults to the paper's 100–250 range scaled by the ratio of
        stand-in to original edge count.
    """
    spec = dataset_spec(name)
    if spec.kind == "static":
        base = _base_graph(spec, seed=seed, scale=scale)
        if edge_churn is None:
            # Paper: 100-250 edge changes out of ~125k-185k edges (~0.1-0.2%).
            # Keep the same relative churn so snapshots remain "smooth".
            low = max(3, base.num_edges // 1000)
            high = max(low + 2, base.num_edges // 400)
            edge_churn = (low, high)
        return perturb_snapshots(
            base,
            num_snapshots=num_snapshots,
            removals_per_step=edge_churn,
            insertions_per_step=edge_churn,
            seed=seed + 1,
        )
    sequence = _temporal_snapshots(spec, num_snapshots=num_snapshots, seed=seed, scale=scale)
    return sequence.to_evolving_graph()


def load_snapshot_sequence(
    name: str,
    num_snapshots: int = 30,
    seed: int = 7,
    scale: float = 1.0,
) -> SnapshotSequence:
    """Load a dataset stand-in as a materialised :class:`SnapshotSequence`."""
    return load_dataset(
        name, num_snapshots=num_snapshots, seed=seed, scale=scale
    ).to_snapshot_sequence()


def toy_example_graph() -> Graph:
    """Return a 17-user "reading hobby community" modelled on the paper's Figure 1 (t = 1).

    Vertex ids are 1..17 matching ``u1``..``u17``.  The graph is constructed so
    that the worked examples of the paper hold exactly:

    * the 3-core is ``{8, 9, 12, 13, 16}`` (Example 2);
    * anchoring ``{7, 10}`` brings followers ``{2, 3, 5, 6, 11}`` into the
      anchored 3-core, growing it from 5 to 12 members (Example 3); and
    * anchoring ``15`` alone yields the single follower ``{14}`` (Example 6).
    """
    edges = [
        # dense 3-core block: u8, u9, u12, u13, u16
        (8, 9), (8, 12), (8, 13), (9, 12), (9, 16), (12, 13), (12, 16), (13, 16),
        # u14 and u15: 2-core members next to the core (Example 6)
        (14, 9), (14, 16), (14, 15), (15, 16), (15, 17),
        # left-hand community around u2, u3, u5, u6, u11 hanging off the core
        (2, 3), (2, 11), (2, 7), (2, 1), (2, 13),
        (3, 5), (3, 7), (3, 9),
        (5, 6), (5, 10), (6, 11), (6, 10), (11, 16),
        # periphery
        (1, 4), (1, 17),
    ]
    graph = Graph(vertices=range(1, 18))
    graph.add_edges(edges)
    return graph


def toy_example_evolving_graph() -> EvolvingGraph:
    """Return a two-snapshot evolving graph in the spirit of Figure 1.

    Snapshot 2 applies the change described in Example 1: the relationship
    ``(u2, u5)`` is established and ``(u2, u11)`` is broken.  Losing the edge to
    ``u2`` means ``u11`` can no longer be rescued, so the best anchor set and
    its follower structure change between the two timestamps — the effect the
    AVT problem is about.
    """
    from repro.graph.dynamic import EdgeDelta

    base = toy_example_graph()
    delta = EdgeDelta.from_iterables(inserted=[(2, 5)], removed=[(2, 11)])
    return EvolvingGraph(base=base, deltas=[delta])


def dataset_summary(name: str, num_snapshots: int = 30, seed: int = 7, scale: float = 1.0) -> Dict[str, object]:
    """Return summary statistics of a dataset stand-in (for reports and README)."""
    spec = dataset_spec(name)
    evolving = load_dataset(name, num_snapshots=num_snapshots, seed=seed, scale=scale)
    first = evolving.base
    return {
        "name": spec.name,
        "kind": spec.kind,
        "description": spec.description,
        "num_vertices": first.num_vertices,
        "num_edges_first_snapshot": first.num_edges,
        "average_degree": round(first.average_degree(), 2),
        "num_snapshots": evolving.num_snapshots,
        "total_edge_changes": evolving.total_edge_changes(),
        "default_k": spec.default_k,
        "k_values": spec.k_values,
    }
