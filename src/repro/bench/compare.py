"""Enforce recorded benchmark floors (`python -m repro.bench.compare`).

Every ``BENCH_*.json`` record may carry a ``floors`` block mapping a ratio
name to ``{"value": measured, "floor": minimum, "enforced": bool}`` — the
benchmark writes the measured number and whether the run was large enough
for the floor to be meaningful (smoke-sized runs record ``enforced: false``).
This module is the single reader of that block: the benchmark pytest wrappers
assert through :func:`floor_failures`, and the CI bench-smoke step runs the
CLI over the emitted artifacts, so a recorded speedup ratio regressing below
its enforced floor fails both locally and in CI with the same message.

CLI::

    python -m repro.bench.compare benchmarks/results/BENCH_*.json

Exit status 1 when any enforced floor is violated; files without a
``floors`` block are reported as skipped (older records stay readable).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Sequence


def floor_failures(record: Mapping[str, object]) -> List[str]:
    """Return one message per enforced floor the record violates.

    ``record`` is a benchmark payload (or a full ``BENCH_*.json`` document)
    with a ``floors`` block; records without one trivially pass.
    """
    failures: List[str] = []
    floors = record.get("floors", {})
    if not isinstance(floors, Mapping):
        return [f"malformed floors block: {floors!r}"]
    for name, spec in floors.items():
        if not isinstance(spec, Mapping) or "value" not in spec or "floor" not in spec:
            failures.append(f"{name}: malformed floor spec {spec!r}")
            continue
        if not spec.get("enforced", False):
            continue
        value = float(spec["value"])  # type: ignore[arg-type]
        floor = float(spec["floor"])  # type: ignore[arg-type]
        if value < floor:
            failures.append(
                f"{name}: measured {value:.3f} regressed below enforced floor {floor:.3f}"
            )
    return failures


def describe_floors(record: Mapping[str, object]) -> List[str]:
    """One human-readable line per floor in the record (enforced or not)."""
    lines: List[str] = []
    floors = record.get("floors", {})
    if not isinstance(floors, Mapping):
        return lines
    for name, spec in floors.items():
        if not isinstance(spec, Mapping):
            continue
        status = "enforced" if spec.get("enforced") else "recorded only"
        lines.append(
            f"{name}: value={spec.get('value')} floor={spec.get('floor')} ({status})"
        )
    return lines


def check_files(paths: Sequence[str]) -> Dict[str, List[str]]:
    """Check every path; return ``{path: failure messages}`` (empty = pass)."""
    results: Dict[str, List[str]] = {}
    for raw in paths:
        path = Path(raw)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            results[str(path)] = [f"unreadable record: {error}"]
            continue
        results[str(path)] = floor_failures(record)
    return results


def main(argv: Sequence[str]) -> int:
    if not argv:
        print("usage: python -m repro.bench.compare BENCH_*.json", file=sys.stderr)
        return 2
    exit_code = 0
    for raw in argv:
        path = Path(raw)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            print(f"FAIL {path}\n  unreadable record: {error}")
            exit_code = 1
            continue
        failures = floor_failures(record)
        described = describe_floors(record)
        if failures:
            exit_code = 1
            print(f"FAIL {path}")
            for failure in failures:
                print(f"  {failure}")
        elif described:
            print(f"ok   {path}")
            for line in described:
                print(f"  {line}")
        else:
            print(f"skip {path} (no floors block)")
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main(sys.argv[1:]))
