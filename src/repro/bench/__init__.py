"""Experiment harness: workloads, sweep runner, per-figure experiments, reporting.

Floor enforcement for the ``BENCH_*.json`` perf records lives in
:mod:`repro.bench.compare` (kept out of this namespace so
``python -m repro.bench.compare`` runs without a double-import warning).
"""

from repro.bench.experiments import EXPERIMENTS, BenchProfile, get_experiment, resolve_profile
from repro.bench.runner import ExperimentTable, TrackerSpec, default_trackers, run_sweep
from repro.bench.workloads import build_problem

__all__ = [
    "EXPERIMENTS",
    "BenchProfile",
    "get_experiment",
    "resolve_profile",
    "ExperimentTable",
    "TrackerSpec",
    "default_trackers",
    "run_sweep",
    "build_problem",
]
