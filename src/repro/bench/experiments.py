"""One experiment definition per table and figure of the paper's evaluation.

Each experiment function takes a :class:`BenchProfile` (which controls dataset
scale, snapshot count and parameter grids) and returns an
:class:`~repro.bench.runner.ExperimentTable` plus a plain-text report that
mirrors the corresponding paper figure: the same datasets, the same varied
parameter, one series per algorithm.

Profiles
--------
``quick``
    Two datasets at reduced scale; finishes in a couple of minutes and is the
    default for ``pytest benchmarks/``.
``medium``
    All six dataset stand-ins at half scale — the configuration recorded in
    ``EXPERIMENTS.md``.
``full``
    All six stand-ins at full stand-in scale with the paper's parameter grids
    (T = 30, l up to 20); expect an hour or more of pure-Python runtime.

The active profile is chosen with the ``AVT_BENCH_PROFILE`` environment
variable (see :func:`resolve_profile`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.anchored.bruteforce import BruteForceAnchoredKCore
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.olak import OLAKAnchoredKCore
from repro.anchored.rcm import RCMAnchoredKCore
from repro.avt.incremental import IncAVTTracker
from repro.avt.problem import AVTProblem
from repro.avt.trackers import GreedyTracker
from repro.bench.reporting import (
    format_followers_series,
    format_series,
    format_speedup_summary,
    format_table,
)
from repro.bench.runner import ExperimentTable, TrackerSpec, default_trackers, run_sweep, run_tracker
from repro.bench.workloads import build_problem, dataset_k_values
from repro.errors import ParameterError
from repro.graph.datasets import DATASET_NAMES
from repro.ordering import tie_break_key


@dataclass(frozen=True)
class BenchProfile:
    """Execution profile for the experiment harness."""

    name: str
    datasets: Tuple[str, ...]
    scale: float
    num_snapshots: int
    budget: int
    k_values_per_dataset: int
    snapshot_grid: Tuple[int, ...]
    budget_grid: Tuple[int, ...]
    case_study_dataset: str = "eu_core"
    case_study_k: int = 3
    case_study_budget: int = 2
    seed: int = 7


_PROFILES: Dict[str, BenchProfile] = {
    "quick": BenchProfile(
        name="quick",
        datasets=("gnutella", "eu_core"),
        scale=0.35,
        num_snapshots=6,
        budget=4,
        k_values_per_dataset=2,
        snapshot_grid=(2, 4, 6),
        budget_grid=(2, 4),
    ),
    "medium": BenchProfile(
        name="medium",
        datasets=DATASET_NAMES,
        scale=0.5,
        num_snapshots=10,
        budget=5,
        k_values_per_dataset=3,
        snapshot_grid=(2, 4, 6, 8, 10),
        budget_grid=(5, 10, 15),
    ),
    "full": BenchProfile(
        name="full",
        datasets=DATASET_NAMES,
        scale=1.0,
        num_snapshots=30,
        budget=10,
        k_values_per_dataset=4,
        snapshot_grid=(2, 6, 10, 14, 18, 22, 26, 30),
        budget_grid=(5, 10, 15, 20),
    ),
}

#: Per-process cache of shared sweeps so figure pairs (e.g. time-vs-k and
#: visited-vs-k) that derive from the same runs do not recompute them.
_SWEEP_CACHE: Dict[Tuple[str, str], ExperimentTable] = {}


def resolve_profile(name: Optional[str] = None) -> BenchProfile:
    """Return the requested profile (default from ``AVT_BENCH_PROFILE``).

    The ``AVT_BENCH_SCALE`` environment variable, when set, overrides the
    profile's dataset scale — handy for dialling runtime up or down without
    defining a new profile.
    """
    if name is None:
        name = os.environ.get("AVT_BENCH_PROFILE", "quick")
    try:
        profile = _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ParameterError(f"unknown bench profile {name!r}; known profiles: {known}") from None
    scale_override = os.environ.get("AVT_BENCH_SCALE")
    if scale_override:
        profile = replace(profile, scale=float(scale_override))
    return profile


def clear_sweep_cache() -> None:
    """Drop all cached sweeps (used by tests)."""
    _SWEEP_CACHE.clear()


# ---------------------------------------------------------------------------
# Shared sweeps
# ---------------------------------------------------------------------------
def _problems_for_k_sweep(profile: BenchProfile) -> List[AVTProblem]:
    problems: List[AVTProblem] = []
    for dataset in profile.datasets:
        for k in dataset_k_values(dataset)[: profile.k_values_per_dataset]:
            problems.append(
                build_problem(
                    dataset,
                    k=k,
                    budget=profile.budget,
                    num_snapshots=profile.num_snapshots,
                    scale=profile.scale,
                    seed=profile.seed,
                )
            )
    return problems


def _sweep_vary_k(profile: BenchProfile) -> ExperimentTable:
    """Run all trackers over every (dataset, k) cell (shared by Figures 3, 4, 11)."""
    key = (profile.name, f"vary_k_scale{profile.scale}")
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = run_sweep(_problems_for_k_sweep(profile))
    return _SWEEP_CACHE[key]


def _sweep_vary_T(profile: BenchProfile) -> ExperimentTable:
    """Track the full horizon once, then report cumulative metrics per T prefix.

    All trackers process snapshots sequentially, so the cumulative time /
    visited / follower counts after the first ``T`` snapshots of a single long
    run are exactly what independent runs with horizon ``T`` would report —
    at a fraction of the compute (shared by Figures 5, 6, 9).
    """
    key = (profile.name, f"vary_T_scale{profile.scale}")
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    table = ExperimentTable()
    horizon = max(profile.snapshot_grid)
    for dataset in profile.datasets:
        problem = build_problem(
            dataset,
            budget=profile.budget,
            num_snapshots=horizon,
            scale=profile.scale,
            seed=profile.seed,
        )
        for spec in default_trackers():
            result, _ = run_tracker(problem, spec)
            snapshots = result.snapshots
            for T in profile.snapshot_grid:
                prefix = snapshots[:T]
                table.append(
                    {
                        "dataset": dataset,
                        "algorithm": result.algorithm,
                        "k": problem.k,
                        "l": problem.budget,
                        "T": T,
                        "time_s": round(
                            sum(s.result.stats.runtime_seconds for s in prefix), 6
                        ),
                        "visited": sum(s.result.stats.visited_vertices for s in prefix),
                        "candidates": sum(
                            s.result.stats.candidates_evaluated for s in prefix
                        ),
                        "followers": sum(s.num_followers for s in prefix),
                        "followers_series": [s.num_followers for s in prefix],
                    }
                )
    _SWEEP_CACHE[key] = table
    return table


def _sweep_vary_l(profile: BenchProfile) -> ExperimentTable:
    """Run all trackers for every anchor budget in the grid (Figures 7, 8, 10)."""
    key = (profile.name, f"vary_l_scale{profile.scale}")
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    problems: List[AVTProblem] = []
    for dataset in profile.datasets:
        for budget in profile.budget_grid:
            problems.append(
                build_problem(
                    dataset,
                    budget=budget,
                    num_snapshots=profile.num_snapshots,
                    scale=profile.scale,
                    seed=profile.seed,
                )
            )
    _SWEEP_CACHE[key] = run_sweep(problems)
    return _SWEEP_CACHE[key]


# ---------------------------------------------------------------------------
# Figures 3-11
# ---------------------------------------------------------------------------
def experiment_fig03_time_vs_k(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 3: running time of OLAK / Greedy / IncAVT / RCM when k varies."""
    table = _sweep_vary_k(profile)
    report = format_series(table, x="k", y="time_s", title="Figure 3 — time (s) vs k")
    report += "\n\n" + format_speedup_summary(table, baseline="OLAK", metric="time_s")
    return table, report


def experiment_fig04_visited_vs_k(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 4: visited candidate vertices when k varies (OLAK, Greedy, IncAVT)."""
    table = _sweep_vary_k(profile)
    report = format_series(
        table, x="k", y="visited", title="Figure 4 — visited candidate vertices vs k"
    )
    return table, report


def experiment_fig05_time_vs_T(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 5: cumulative running time as the number of snapshots T grows."""
    table = _sweep_vary_T(profile)
    report = format_series(table, x="T", y="time_s", title="Figure 5 — time (s) vs T")
    report += "\n\n" + format_speedup_summary(table, baseline="OLAK", metric="time_s")
    return table, report


def experiment_fig06_visited_vs_T(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 6: cumulative visited candidate vertices as T grows."""
    table = _sweep_vary_T(profile)
    report = format_series(
        table, x="T", y="visited", title="Figure 6 — visited candidate vertices vs T"
    )
    return table, report


def experiment_fig07_time_vs_l(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 7: running time when the anchor budget l varies."""
    table = _sweep_vary_l(profile)
    report = format_series(table, x="l", y="time_s", title="Figure 7 — time (s) vs l")
    report += "\n\n" + format_speedup_summary(table, baseline="OLAK", metric="time_s")
    return table, report


def experiment_fig08_visited_vs_l(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 8: visited candidate vertices when the anchor budget l varies."""
    table = _sweep_vary_l(profile)
    report = format_series(
        table, x="l", y="visited", title="Figure 8 — visited candidate vertices vs l"
    )
    return table, report


def experiment_fig09_followers_vs_T(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 9: cumulative follower count as T grows (effectiveness)."""
    table = _sweep_vary_T(profile)
    report = format_series(
        table, x="T", y="followers", title="Figure 9 — total followers vs T"
    )
    return table, report


def experiment_fig10_followers_vs_l(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 10: total followers when the anchor budget l varies."""
    table = _sweep_vary_l(profile)
    report = format_series(
        table, x="l", y="followers", title="Figure 10 — total followers vs l"
    )
    return table, report


def experiment_fig11_followers_vs_k(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 11: total followers when k varies."""
    table = _sweep_vary_k(profile)
    report = format_series(
        table, x="k", y="followers", title="Figure 11 — total followers vs k"
    )
    return table, report


# ---------------------------------------------------------------------------
# Case study (Figure 12, Table 4)
# ---------------------------------------------------------------------------
def _case_study_problem(profile: BenchProfile) -> AVTProblem:
    return build_problem(
        profile.case_study_dataset,
        k=profile.case_study_k,
        budget=profile.case_study_budget,
        num_snapshots=profile.num_snapshots,
        scale=profile.scale,
        seed=profile.seed,
    )


def experiment_fig12_case_study(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Figure 12: followers per snapshot vs the brute-force optimum (eu-core, l=2, k=3)."""
    problem = _case_study_problem(profile)
    table = run_sweep([problem], trackers=default_trackers(include_brute_force=True))
    report = format_followers_series(
        table, title="Figure 12 — followers per snapshot (case study, l=2, k=3)"
    )
    return table, report


def experiment_table4_anchor_selection(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Table 4: anchors and followers selected at the first snapshot by every solver."""
    problem = _case_study_problem(profile)
    first_snapshot = problem.evolving_graph.base
    k, budget = problem.k, problem.budget
    solvers = [
        BruteForceAnchoredKCore(first_snapshot, k, budget),
        OLAKAnchoredKCore(first_snapshot, k, budget),
        GreedyAnchoredKCore(first_snapshot, k, budget),
        RCMAnchoredKCore(first_snapshot, k, budget),
    ]
    table = ExperimentTable()
    for solver in solvers:
        outcome = solver.select()
        table.append(
            {
                "dataset": problem.name,
                "algorithm": outcome.algorithm,
                "k": k,
                "l": budget,
                "anchors": sorted(outcome.anchors, key=tie_break_key),
                "followers": sorted(outcome.followers, key=tie_break_key),
                "num_followers": outcome.num_followers,
                "time_s": round(outcome.stats.runtime_seconds, 6),
            }
        )
    # IncAVT coincides with Greedy at the first snapshot (it bootstraps from it);
    # record it explicitly so the table has the same five rows as the paper.
    greedy_row = table.filter(algorithm="Greedy").rows()[0]
    incavt_row = dict(greedy_row)
    incavt_row["algorithm"] = "IncAVT"
    table.append(incavt_row)
    report = "Table 4 — selected anchored vertices and followers (first snapshot)\n"
    report += format_table(
        table.rows(),
        columns=["algorithm", "anchors", "followers", "num_followers", "time_s"],
    )
    return table, report


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------
def experiment_ablation_pruning(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Ablation: Theorem-3 candidate pruning and shell-local follower computation.

    Compares the full Greedy tracker against a variant with order pruning
    disabled and against the OLAK adaptation (no pruning, whole-shell scans).
    """
    dataset = profile.datasets[0]
    problem = build_problem(
        dataset,
        budget=profile.budget,
        num_snapshots=min(profile.num_snapshots, 6),
        scale=profile.scale,
        seed=profile.seed,
    )
    trackers = [
        TrackerSpec("Greedy(pruned)", lambda: GreedyTracker(order_pruning=True)),
        TrackerSpec("Greedy(unpruned)", lambda: GreedyTracker(order_pruning=False)),
    ]
    table = run_sweep([problem], trackers=trackers)
    report = "Ablation — Theorem-3 pruning\n" + format_table(
        table.rows(),
        columns=["dataset", "algorithm", "k", "l", "T", "time_s", "visited", "candidates", "followers"],
    )
    return table, report


def experiment_ablation_maintenance(profile: BenchProfile) -> Tuple[ExperimentTable, str]:
    """Ablation: incremental core maintenance vs per-snapshot restarts inside IncAVT."""
    dataset = profile.datasets[0]
    problem = build_problem(
        dataset,
        budget=profile.budget,
        num_snapshots=min(profile.num_snapshots, 6),
        scale=profile.scale,
        seed=profile.seed,
    )
    trackers = [
        TrackerSpec("IncAVT(incremental)", IncAVTTracker),
        TrackerSpec(
            "IncAVT(rebuild)", lambda: IncAVTTracker(restart_churn_ratio=0.0)
        ),
    ]
    table = run_sweep([problem], trackers=trackers)
    report = "Ablation — incremental maintenance vs per-snapshot rebuild\n" + format_table(
        table.rows(),
        columns=["dataset", "algorithm", "k", "l", "T", "time_s", "visited", "followers"],
    )
    return table, report


#: Registry of every reproducible experiment, keyed by the identifier used by
#: the CLI and the benchmark modules.
EXPERIMENTS: Dict[str, Callable[[BenchProfile], Tuple[ExperimentTable, str]]] = {
    "fig03": experiment_fig03_time_vs_k,
    "fig04": experiment_fig04_visited_vs_k,
    "fig05": experiment_fig05_time_vs_T,
    "fig06": experiment_fig06_visited_vs_T,
    "fig07": experiment_fig07_time_vs_l,
    "fig08": experiment_fig08_visited_vs_l,
    "fig09": experiment_fig09_followers_vs_T,
    "fig10": experiment_fig10_followers_vs_l,
    "fig11": experiment_fig11_followers_vs_k,
    "fig12": experiment_fig12_case_study,
    "table4": experiment_table4_anchor_selection,
    "ablation_pruning": experiment_ablation_pruning,
    "ablation_maintenance": experiment_ablation_maintenance,
}


def get_experiment(name: str) -> Callable[[BenchProfile], Tuple[ExperimentTable, str]]:
    """Return the experiment function registered under ``name``."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ParameterError(f"unknown experiment {name!r}; known experiments: {known}") from None
