"""Plain-text rendering of experiment results (figures and tables as text).

The paper's figures are log-scale line charts with one line per algorithm.
Since this repository has no plotting dependency, each figure is rendered as
the underlying series — one block per dataset, one line per algorithm, one
``x=y`` pair per parameter value — plus an ASCII table of the raw rows.  The
same renderers feed the CLI, the benchmark harness printouts, and
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.bench.runner import ExperimentTable


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [str(row.get(column, "")) for column in columns]
        rendered_rows.append(rendered)
        for column, value in zip(columns, rendered):
            widths[column] = max(widths[column], len(value))
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(value.ljust(widths[column]) for column, value in zip(columns, rendered))
        for rendered in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def format_series(
    table: ExperimentTable,
    x: str,
    y: str,
    dataset_column: str = "dataset",
    group: str = "algorithm",
    title: str = "",
) -> str:
    """Render one paper figure as text: one block per dataset, one line per algorithm."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for dataset in table.distinct(dataset_column):
        lines.append(f"[{dataset}]")
        sub_table = table.filter(**{dataset_column: dataset})
        for algorithm, points in sub_table.series(x=x, y=y, group=group).items():
            rendered_points = "  ".join(f"{px}={_format_value(py)}" for px, py in points)
            lines.append(f"  {str(algorithm):<12} {rendered_points}")
    return "\n".join(lines)


def format_followers_series(table: ExperimentTable, title: str = "") -> str:
    """Render per-snapshot follower series (Figures 9 and 12 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for dataset in table.distinct("dataset"):
        lines.append(f"[{dataset}]")
        for row in table.filter(dataset=dataset).rows():
            series = row.get("followers_series", [])
            rendered = " ".join(str(value) for value in series)
            lines.append(f"  {str(row.get('algorithm')):<12} {rendered}")
    return "\n".join(lines)


def format_speedup_summary(
    table: ExperimentTable, baseline: str = "OLAK", metric: str = "time_s"
) -> str:
    """Summarise each algorithm's advantage over ``baseline`` per dataset."""
    lines: List[str] = ["speed-up vs " + baseline + f" ({metric})"]
    for dataset in table.distinct("dataset"):
        sub_table = table.filter(dataset=dataset)
        baseline_rows = sub_table.filter(algorithm=baseline).rows()
        if not baseline_rows:
            continue
        baseline_total = sum(float(row.get(metric, 0) or 0) for row in baseline_rows)
        lines.append(f"[{dataset}] baseline total {metric}={_format_value(baseline_total)}")
        for algorithm in sub_table.distinct("algorithm"):
            if algorithm == baseline:
                continue
            total = sum(
                float(row.get(metric, 0) or 0)
                for row in sub_table.filter(algorithm=algorithm).rows()
            )
            ratio = baseline_total / total if total else float("inf")
            lines.append(f"  {str(algorithm):<12} {_format_value(total)} ({ratio:.1f}x)")
    return "\n".join(lines)


def _format_value(value: object) -> str:
    """Compactly format numbers (3 significant decimals for floats)."""
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# Machine-readable benchmark records (perf trajectory across PRs)
# ---------------------------------------------------------------------------
def bench_environment() -> Dict[str, object]:
    """Return the provenance stamp attached to every benchmark JSON record.

    Captures the git SHA (``"unknown"`` outside a checkout), a UTC timestamp
    and the Python version, so ``BENCH_*.json`` files from different PRs can
    be compared as a time series.
    """
    import platform
    import subprocess
    from datetime import datetime, timezone
    from pathlib import Path

    try:
        sha = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
                # Resolve against the checkout this module lives in, not the
                # process cwd — the record must stamp the code under test.
                cwd=Path(__file__).resolve().parents[3],
            ).stdout.strip()
        )
    except Exception:
        sha = "unknown"
    return {
        "git_sha": sha,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def write_bench_json(
    path,
    name: str,
    payload: Mapping[str, object],
    *,
    backend: str = "auto",
    num_shards: int = 1,
    num_workers: int = 1,
    metrics=None,
) -> None:
    """Write one benchmark record as pretty-printed JSON with provenance.

    ``payload`` holds the benchmark-specific numbers (timings, hit rates,
    speedups); the record wraps it with the benchmark ``name``,
    :func:`bench_environment`, an ``execution`` block recording the backend
    name, shard count and worker count the run used (single-process defaults
    when the caller does not say), and a ``metrics`` block — the unified
    metrics-registry snapshot of the run (see :mod:`repro.obs`).  ``metrics``
    may be a :class:`~repro.obs.MetricsRegistry`, an already-materialised
    snapshot list, or ``None`` to capture the process-wide registry, so
    records from differently configured runs can be compared as a time
    series down to individual counters.
    """
    import json
    from pathlib import Path

    from repro.obs import MetricsRegistry, global_registry

    if metrics is None:
        metrics = global_registry()
    if isinstance(metrics, MetricsRegistry):
        metrics = metrics.snapshot()
    record = {
        "benchmark": name,
        "environment": bench_environment(),
        "execution": {
            "backend": backend,
            "num_shards": num_shards,
            "num_workers": num_workers,
        },
        **dict(payload),
        "metrics": list(metrics),
    }
    Path(path).write_text(json.dumps(record, indent=2, sort_keys=False) + "\n", encoding="utf-8")
