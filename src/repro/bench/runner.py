"""Sweep runner: execute trackers over workloads and collect tidy result rows.

Every run produces one row per (dataset, algorithm, parameter point) holding
the three quantities the paper's figures plot — running time, visited
candidate vertices and follower counts — plus the per-snapshot follower
series.  Rows are plain dictionaries collected into an
:class:`ExperimentTable`, which offers the grouping/pivoting the per-figure
benchmark scripts need and a CSV export for offline plotting.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.avt.incremental import IncAVTTracker
from repro.avt.problem import AVTProblem, AVTResult
from repro.avt.trackers import BruteForceTracker, GreedyTracker, OLAKTracker, RCMTracker
from repro.errors import ParameterError

TrackerFactory = Callable[[], object]


@dataclass(frozen=True)
class TrackerSpec:
    """A named tracker factory used by sweeps."""

    name: str
    factory: TrackerFactory

    def build(self):
        """Instantiate a fresh tracker."""
        return self.factory()


def default_trackers(include_brute_force: bool = False) -> List[TrackerSpec]:
    """Return the tracker line-up of the paper's evaluation.

    OLAK, Greedy, IncAVT and RCM always; brute force only on request (it is
    only feasible for the case study's tiny budget).
    """
    trackers = [
        TrackerSpec("OLAK", OLAKTracker),
        TrackerSpec("Greedy", GreedyTracker),
        TrackerSpec("IncAVT", IncAVTTracker),
        TrackerSpec("RCM", RCMTracker),
    ]
    if include_brute_force:
        trackers.append(TrackerSpec("Brute-force", BruteForceTracker))
    return trackers


def run_tracker(problem: AVTProblem, spec: TrackerSpec) -> Tuple[AVTResult, Dict[str, object]]:
    """Run one tracker on one problem and return (result, tidy row)."""
    tracker = spec.build()
    wall_start = time.perf_counter()
    result = tracker.track(problem)
    wall_seconds = time.perf_counter() - wall_start
    row: Dict[str, object] = {
        "dataset": problem.name,
        # The spec name labels the row so ablation variants of the same tracker
        # (e.g. "Greedy(unpruned)") stay distinguishable in the tables.
        "algorithm": spec.name,
        "k": problem.k,
        "l": problem.budget,
        "T": len(result.snapshots),
        "time_s": round(result.total_runtime_seconds, 6),
        "wall_s": round(wall_seconds, 6),
        "visited": result.total_visited_vertices,
        "candidates": result.total_candidates_evaluated,
        "followers": result.total_followers,
        "followers_series": list(result.followers_per_snapshot),
        "anchors_final": list(result.anchor_sets[-1]) if result.anchor_sets else [],
    }
    return result, row


class ExperimentTable:
    """A tidy collection of sweep rows with light pivoting helpers."""

    def __init__(self, rows: Optional[Iterable[Mapping[str, object]]] = None) -> None:
        self._rows: List[Dict[str, object]] = [dict(row) for row in rows] if rows else []

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def append(self, row: Mapping[str, object]) -> None:
        """Add one result row."""
        self._rows.append(dict(row))

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Add several result rows."""
        for row in rows:
            self.append(row)

    def rows(self) -> List[Dict[str, object]]:
        """Return a copy of all rows."""
        return [dict(row) for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self.rows())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(self, **criteria: object) -> "ExperimentTable":
        """Return the sub-table whose rows match every ``column=value`` pair."""
        matching = [
            row
            for row in self._rows
            if all(row.get(column) == value for column, value in criteria.items())
        ]
        return ExperimentTable(matching)

    def column(self, name: str) -> List[object]:
        """Return one column as a list (missing values become ``None``)."""
        return [row.get(name) for row in self._rows]

    def distinct(self, name: str) -> List[object]:
        """Return the distinct values of a column, in first-appearance order."""
        seen: List[object] = []
        for row in self._rows:
            value = row.get(name)
            if value not in seen:
                seen.append(value)
        return seen

    def series(
        self, x: str, y: str, group: str = "algorithm"
    ) -> Dict[object, List[Tuple[object, object]]]:
        """Return ``{group value: [(x, y), ...]}`` — one series per algorithm.

        This is the exact structure of a paper figure panel: the x axis is the
        varied parameter, the y axis the measured quantity, one line per
        algorithm.
        """
        grouped: Dict[object, List[Tuple[object, object]]] = {}
        for row in self._rows:
            grouped.setdefault(row.get(group), []).append((row.get(x), row.get(y)))
        return grouped

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise all rows to CSV (list values are JSON-ish joined)."""
        if not self._rows:
            return ""
        fieldnames: List[str] = []
        for row in self._rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        for row in self._rows:
            serialisable = {
                key: ";".join(str(item) for item in value) if isinstance(value, list) else value
                for key, value in row.items()
            }
            writer.writerow(serialisable)
        return buffer.getvalue()


def run_sweep(
    problems: Sequence[AVTProblem],
    trackers: Optional[Sequence[TrackerSpec]] = None,
    extra_columns: Optional[Mapping[str, object]] = None,
) -> ExperimentTable:
    """Run every tracker on every problem and collect the rows.

    ``extra_columns`` (e.g. the name of the varied parameter) are merged into
    every row, which keeps downstream pivoting trivial.
    """
    if trackers is None:
        trackers = default_trackers()
    if not problems:
        raise ParameterError("run_sweep needs at least one problem")
    table = ExperimentTable()
    for problem in problems:
        for spec in trackers:
            _, row = run_tracker(problem, spec)
            if extra_columns:
                row.update(extra_columns)
            table.append(row)
    return table
