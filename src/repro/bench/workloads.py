"""Workload construction for the experiment harness.

A *workload* is an :class:`~repro.avt.problem.AVTProblem` built from one of the
dataset stand-ins with a concrete ``(k, l, T, scale, seed)`` configuration.
Loading a dataset stand-in and materialising its deltas is the most expensive
part of small sweeps, so problems are cached per configuration.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.avt.problem import AVTProblem
from repro.errors import ParameterError
from repro.graph.datasets import dataset_spec, load_dataset


@lru_cache(maxsize=64)
def _cached_evolving_graph(name: str, num_snapshots: int, seed: int, scale: float):
    """Load (and cache) the evolving graph for one dataset configuration."""
    return load_dataset(name, num_snapshots=num_snapshots, seed=seed, scale=scale)


def build_problem(
    dataset: str,
    k: Optional[int] = None,
    budget: int = 10,
    num_snapshots: int = 30,
    scale: float = 1.0,
    seed: int = 7,
) -> AVTProblem:
    """Build the AVT problem for one experiment cell.

    ``k`` defaults to the dataset's default from its :class:`DatasetSpec`.
    The underlying evolving graph is cached, so sweeping ``k`` or ``l`` over
    the same dataset re-uses the same snapshots — exactly how the paper fixes
    the other parameters at their defaults while varying one.
    """
    if scale <= 0:
        raise ParameterError("scale must be positive")
    spec = dataset_spec(dataset)
    if k is None:
        k = spec.default_k
    evolving = _cached_evolving_graph(dataset, num_snapshots, seed, scale)
    return AVTProblem(evolving_graph=evolving, k=k, budget=budget, name=dataset)


def dataset_k_values(dataset: str) -> Tuple[int, ...]:
    """Return the k grid the paper sweeps for ``dataset`` (scaled, see DESIGN.md)."""
    return dataset_spec(dataset).k_values


def clear_workload_cache() -> None:
    """Drop all cached evolving graphs (used by tests to bound memory)."""
    _cached_evolving_graph.cache_clear()
