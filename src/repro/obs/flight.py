"""Always-on flight recorder: a bounded ring of recent spans + metric deltas.

Production incidents rarely happen while tracing is enabled.  The flight
recorder closes that gap cheaply: it is installed as a sink on the default
tracer at import, so whenever tracing *is* on it retains the last
``capacity`` finished spans in a ``deque(maxlen=...)`` ring; while tracing is
disabled the sink simply never fires, so the always-on recorder costs nothing
on the hot path (the disabled-tracing fast path is unchanged) and the ring
keeps whatever it last saw — a crash shortly after tracing is toggled off
still dumps the final spans.

A *dump* freezes the ring plus the metric deltas since the previous dump
(counters/gauges and histogram count/sum from the global registry) together
with a reason and context.  Dumps happen automatically on:

* span error tags (any sinked span whose attrs carry ``error``),
* ``BrokenProcessPool`` retirement in the shard coordinator, and
* engine checkpoint save/restore failures,

and manually via :meth:`FlightRecorder.dump`.  The engine exposes the live
record through ``engine.flight_record()``.  Set ``REPRO_FLIGHT_DIR`` to also
write each dump as a JSON file.

Injected faults and resilience decisions (:mod:`repro.resilience`) land in
the ring as synthetic span-shaped events via :meth:`FlightRecorder.record_event`
— independent of the tracing flag, so a chaos run's dump always shows *which*
faults fired before the failure being diagnosed.
"""

from __future__ import annotations

import json
import logging
import os
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs import tracer as tracer_module
from repro.obs.metrics import Histogram, global_registry

__all__ = ["FlightRecorder", "default_recorder"]

logger = logging.getLogger("repro.obs")

#: Spans retained in the default recorder's ring.
DEFAULT_CAPACITY = 2048
#: Dumps retained in memory (oldest evicted first).
DEFAULT_MAX_DUMPS = 8

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _flatten_registry() -> Dict[MetricKey, float]:
    """Numeric view of the global registry for delta computation.

    Histograms contribute ``<name>.count`` and ``<name>.sum`` entries so a
    dump shows "47 more observations, 1.3s more latency" without carrying
    full bucket maps.
    """
    flat: Dict[MetricKey, float] = {}
    for metric in global_registry().metrics():
        labels = tuple(sorted(metric.labels.items()))
        if isinstance(metric, Histogram):
            flat[(f"{metric.name}.count", labels)] = float(metric.count)
            flat[(f"{metric.name}.sum", labels)] = float(metric.sum)
        else:
            flat[(metric.name, labels)] = float(metric.value)
    return flat


class FlightRecorder:
    """Bounded ring of recent spans with metric-delta dumps.

    Registered as a tracer sink (callable); every finished span lands in the
    ring, spans tagged with an ``error`` attr trigger an automatic dump.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        max_dumps: int = DEFAULT_MAX_DUMPS,
        dump_dir: Optional[str] = None,
        auto_dump_on_error: bool = True,
    ) -> None:
        self.capacity = capacity
        self.auto_dump_on_error = auto_dump_on_error
        self.dump_dir = dump_dir if dump_dir is not None else os.environ.get("REPRO_FLIGHT_DIR") or None
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._dumps: Deque[Dict[str, Any]] = deque(maxlen=max_dumps)
        self._baseline = _flatten_registry()
        self._dump_seq = 0
        self._installed_on: Optional[tracer_module.Tracer] = None

    # -- sink protocol -------------------------------------------------
    def __call__(self, span_dict: Dict[str, Any]) -> None:
        self._ring.append(span_dict)
        if self.auto_dump_on_error:
            attrs = span_dict.get("attrs") or {}
            error = attrs.get("error")
            if error:
                self.dump(
                    f"span-error:{span_dict.get('name', '?')}",
                    error=error,
                    span_id=span_dict.get("span_id"),
                    trace_id=span_dict.get("trace_id"),
                )

    def install(self, tracer: Optional[tracer_module.Tracer] = None) -> "FlightRecorder":
        """Attach as a sink (idempotent); defaults to the default tracer."""
        target = tracer if tracer is not None else tracer_module.default_tracer()
        if self._installed_on is not target:
            self.uninstall()
            target.add_sink(self)
            self._installed_on = target
        return self

    def uninstall(self) -> None:
        if self._installed_on is not None:
            self._installed_on.remove_sink(self)
            self._installed_on = None

    def record_event(self, name: str, **attrs: Any) -> Dict[str, Any]:
        """Append a synthetic span-shaped event to the ring, tracing or not.

        Injected faults and degradation decisions must be visible in a
        post-mortem dump even when tracing was off at the time — a real span
        would never have reached the sink.  The event mimics the span dict
        shape (``name`` + ``attrs`` + timestamps) so the dump analyzers and
        the JSON exporters treat it uniformly; ``event=True`` marks it as
        zero-duration bookkeeping rather than a measured interval.
        """
        now = time.time()
        event = {
            "name": name,
            "attrs": {"event": True, **attrs},
            "start": now,
            "end": now,
            "pid": os.getpid(),
        }
        self._ring.append(event)
        return event

    # -- record / dump -------------------------------------------------
    def metric_deltas(self) -> List[Dict[str, Any]]:
        """Metric changes since construction / the last dump, sorted by name."""
        current = _flatten_registry()
        deltas: List[Dict[str, Any]] = []
        for key in sorted(set(current) | set(self._baseline)):
            delta = current.get(key, 0.0) - self._baseline.get(key, 0.0)
            if delta:
                name, labels = key
                deltas.append({"name": name, "labels": dict(labels), "delta": delta})
        return deltas

    def record(self) -> Dict[str, Any]:
        """The live flight record: ring contents, metric deltas, past dumps."""
        return {
            "captured_at": time.time(),
            "capacity": self.capacity,
            "spans": list(self._ring),
            "metric_deltas": self.metric_deltas(),
            "dumps": list(self._dumps),
        }

    def dump(self, reason: str, **context: Any) -> Dict[str, Any]:
        """Freeze the ring + metric deltas; rolls the delta baseline."""
        self._dump_seq += 1
        payload = {
            "reason": reason,
            "context": context,
            "seq": self._dump_seq,
            "pid": os.getpid(),
            "captured_at": time.time(),
            "spans": list(self._ring),
            "metric_deltas": self.metric_deltas(),
        }
        self._baseline = _flatten_registry()
        self._dumps.append(payload)
        logger.warning(
            "flight record dumped (reason=%s): %d spans, %d metric deltas",
            reason,
            len(payload["spans"]),
            len(payload["metric_deltas"]),
        )
        if self.dump_dir:
            try:
                os.makedirs(self.dump_dir, exist_ok=True)
                path = os.path.join(
                    self.dump_dir, f"flight-{os.getpid()}-{self._dump_seq}.json"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, default=repr)
                logger.warning("flight record written to %s", path)
            except OSError as error:  # never let diagnostics take the process down
                logger.error("failed to write flight record: %s", error)
        return payload

    @property
    def dumps(self) -> List[Dict[str, Any]]:
        return list(self._dumps)

    def clear(self) -> None:
        """Empty the ring and dumps and re-baseline the metric deltas."""
        self._ring.clear()
        self._dumps.clear()
        self._baseline = _flatten_registry()

    def __len__(self) -> int:
        return len(self._ring)


#: The always-on recorder, installed on the default tracer at import.
_DEFAULT = FlightRecorder().install()


def default_recorder() -> FlightRecorder:
    return _DEFAULT
