"""Thread-based wall-clock sampling profiler attributed to open spans.

:class:`SamplingProfiler` runs a daemon thread that snapshots
``sys._current_frames()`` at a configurable rate and attributes each sample
twice:

* **code-level** — the Python call stack (``file.py:function`` frames,
  outermost first), the classic flamegraph input; and
* **span-level** — the sampled thread's open span-name stack, read from the
  tracer's per-thread stacks (:func:`repro.obs.tracer.thread_span_stacks`),
  so samples land on ``engine.query;solver.greedy`` rather than on anonymous
  frames.  Threads with no open span are attributed to ``<untraced>``.

Wall-clock sampling (not CPU sampling): a thread blocked in a lock, a future
wait or shared-memory I/O is sampled exactly like a computing thread, which
is the right default for diagnosing stragglers and waits.  Overhead is one
``sys._current_frames()`` call plus a few dict updates per tick — enforced
at ≤5% on the obs-overhead replay by a ``BENCH_trace.json`` floor.

Usage::

    from repro.obs.profile import SamplingProfiler

    with SamplingProfiler(hz=100) as profiler:
        run_workload()
    print(profiler.collapsed("span"))    # flamegraph-ready
    top = profiler.code_profile()[:10]   # hottest code stacks
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ParameterError
from repro.obs import tracer as tracer_module
from repro.obs.metrics import global_registry

__all__ = ["SamplingProfiler", "UNTRACED"]

#: Span-level attribution for threads with no open span.
UNTRACED: Tuple[str, ...] = ("<untraced>",)

#: Stack frames deeper than this are truncated (runaway recursion guard).
_MAX_FRAMES = 128


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


class _LabelCache(dict):
    """``code object -> "file.py:func"`` cache; labels are immutable per code
    object, so memoising them takes the string formatting off the sample
    path (the cache is bounded by the number of live code objects)."""

    def __missing__(self, code: Any) -> str:
        label = f"{os.path.basename(code.co_filename)}:{code.co_name}"
        self[code] = label
        return label


class SamplingProfiler:
    """Wall-clock sampling profiler with span attribution.

    Parameters
    ----------
    hz:
        Samples per second (default 100; 1–2000 accepted — beyond that the
        tick loop itself becomes the workload).
    include_profiler_thread:
        Sample the profiler's own thread too (default off; only useful when
        debugging the profiler).
    """

    def __init__(self, hz: float = 100.0, *, include_profiler_thread: bool = False) -> None:
        if not 1.0 <= hz <= 2000.0:
            raise ParameterError(f"profiler hz must be in [1, 2000], got {hz!r}")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self.include_profiler_thread = include_profiler_thread
        self.samples = 0
        self.overruns = 0
        self.duration_seconds = 0.0
        #: Cumulative time spent inside :meth:`_sample` — the GIL-holding
        #: work that actually stalls the profiled threads.  The ratio
        #: ``sampling_seconds / duration_seconds`` is the enforced overhead
        #: estimate (end-to-end wall deltas drown in scheduler noise).
        self.sampling_seconds = 0.0
        self._code_counts: Dict[Tuple[str, ...], int] = {}
        self._span_counts: Dict[Tuple[str, ...], int] = {}
        self._labels = _LabelCache()
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise ParameterError("profiler is already running")
        self._stop_event.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.duration_seconds = time.perf_counter() - self._started_at
        registry = global_registry()
        registry.gauge("obs.profiler.samples").set(self.samples)
        registry.gauge("obs.profiler.overruns").set(self.overruns)
        registry.gauge("obs.profiler.hz").set(self.hz)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> bool:
        self.stop()
        return False

    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the profiled window spent doing sampling work."""
        if self.duration_seconds <= 0.0:
            return 0.0
        return self.sampling_seconds / self.duration_seconds

    # -- sampling loop -------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        # Absolute-deadline scheduling: a slow sample delays the next tick
        # rather than silently lowering the rate; ticks that can't be met are
        # counted as overruns instead of bunching up.
        next_tick = time.perf_counter() + self.interval
        while not self._stop_event.is_set():
            delay = next_tick - time.perf_counter()
            if delay > 0:
                if self._stop_event.wait(delay):
                    break
            sample_started = time.perf_counter()
            self._sample(own_ident)
            self.sampling_seconds += time.perf_counter() - sample_started
            next_tick += self.interval
            behind = time.perf_counter() - next_tick
            if behind > 0:
                missed = int(behind / self.interval) + 1
                self.overruns += missed
                next_tick += missed * self.interval

    def _sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        span_stacks = tracer_module.thread_span_stacks()
        labels = self._labels
        for ident, frame in frames.items():
            if ident == own_ident and not self.include_profiler_thread:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < _MAX_FRAMES:
                stack.append(labels[frame.f_code])
                frame = frame.f_back
                depth += 1
            stack.reverse()  # outermost first
            code_key = tuple(stack)
            self._code_counts[code_key] = self._code_counts.get(code_key, 0) + 1
            span_names = span_stacks.get(ident)
            span_key = tuple(span_names) if span_names else UNTRACED
            self._span_counts[span_key] = self._span_counts.get(span_key, 0) + 1
            self.samples += 1

    # -- results -------------------------------------------------------
    def _profile(self, counts: Dict[Tuple[str, ...], int]) -> List[Dict[str, Any]]:
        if self.samples:
            seconds_per_sample = self.duration_seconds / self.samples if self.duration_seconds else self.interval
        else:
            seconds_per_sample = self.interval
        entries = [
            {
                "stack": list(stack),
                "samples": count,
                "seconds": count * seconds_per_sample,
                "fraction": count / self.samples if self.samples else 0.0,
            }
            for stack, count in counts.items()
        ]
        entries.sort(key=lambda entry: entry["samples"], reverse=True)
        return entries

    def code_profile(self) -> List[Dict[str, Any]]:
        """Code-level stacks (outermost frame first), hottest first."""
        return self._profile(self._code_counts)

    def span_profile(self) -> List[Dict[str, Any]]:
        """Span-level stacks (outermost span first), hottest first."""
        return self._profile(self._span_counts)

    def collapsed(self, kind: str = "code") -> str:
        """Collapsed-stack text (``a;b;c <samples>``) for flamegraph tools."""
        if kind == "code":
            counts = self._code_counts
        elif kind == "span":
            counts = self._span_counts
        else:
            raise ParameterError(f"unknown profile kind {kind!r} (use 'code' or 'span')")
        lines = [f"{';'.join(stack)} {count}" for stack, count in counts.items()]
        return "\n".join(sorted(lines))

    def to_dict(self) -> Dict[str, Any]:
        """Summary payload (bench records, flight dumps)."""
        return {
            "hz": self.hz,
            "samples": self.samples,
            "overruns": self.overruns,
            "duration_seconds": self.duration_seconds,
            "sampling_seconds": self.sampling_seconds,
            "overhead_fraction": self.overhead_fraction,
            "top_code": self.code_profile()[:20],
            "top_spans": self.span_profile()[:20],
        }
