"""repro.obs — hierarchical tracing, unified metrics, pluggable exporters.

The observability layer threaded through every execution layer of the repo:

=================  ==========================================================
piece              role
=================  ==========================================================
``tracer``         Hierarchical spans with a context-manager API and a
                   near-zero-overhead no-op path while disabled; spans from
                   spawn-based shard workers merge into the parent trace.
``MetricsRegistry``  Counters / gauges / log-bucketed histograms behind one
                   ``{name, type, value, labels}`` snapshot schema; the
                   legacy stats surfaces are views over it.
``exporters``      JSON-lines span sink, Prometheus text exposition, and
                   snapshot writers for the CLI and benches.
``analyze``        Trace analytics over finished spans: span-tree
                   reconstruction, Dapper-style critical-path extraction,
                   per-name self-time flamegraph aggregation
                   (collapsed-stack output), shard straggler/utilization
                   reports, and two-trace latency diffs.
``profile``        Thread-based wall-clock sampling profiler
                   (``sys._current_frames`` at a configurable hz) that
                   attributes samples to the open span stack as well as to
                   code, with an enforced ≤5% overhead floor.
``flight``         Always-on flight recorder: a bounded ring of recent
                   spans + metric deltas that survives ``enabled=False``
                   cheaply and dumps automatically on span errors, broken
                   worker pools and checkpoint failures
                   (``engine.flight_record()``).
=================  ==========================================================

Enable tracing programmatically (``tracer.set_enabled(True)``), per run
(``avt-bench serve-sim --trace-out trace.jsonl``), or process-wide via the
``REPRO_TRACE=1`` environment variable.  Analyze a trace offline with
``avt-bench trace {tree,critical-path,flame,stragglers} trace.jsonl``.
"""

from repro.obs import tracer
from repro.obs.analyze import (
    CriticalStep,
    SpanNode,
    build_span_trees,
    critical_path,
    critical_path_by_name,
    diff_traces,
    flame_stacks,
    render_collapsed,
    render_tree,
    self_time_by_name,
    straggler_report,
)
from repro.obs.flight import FlightRecorder, default_recorder
from repro.obs.profile import SamplingProfiler
from repro.obs.exporters import (
    JsonLinesSpanSink,
    read_spans_jsonl,
    to_prometheus,
    write_metrics,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "tracer",
    "Span",
    "Tracer",
    "SpanNode",
    "CriticalStep",
    "build_span_trees",
    "critical_path",
    "critical_path_by_name",
    "self_time_by_name",
    "flame_stacks",
    "render_collapsed",
    "render_tree",
    "straggler_report",
    "diff_traces",
    "SamplingProfiler",
    "FlightRecorder",
    "default_recorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
    "JsonLinesSpanSink",
    "read_spans_jsonl",
    "write_spans_jsonl",
    "to_prometheus",
    "write_metrics",
]
