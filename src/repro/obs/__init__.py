"""repro.obs — hierarchical tracing, unified metrics, pluggable exporters.

The observability layer threaded through every execution layer of the repo:

=================  ==========================================================
piece              role
=================  ==========================================================
``tracer``         Hierarchical spans with a context-manager API and a
                   near-zero-overhead no-op path while disabled; spans from
                   spawn-based shard workers merge into the parent trace.
``MetricsRegistry``  Counters / gauges / log-bucketed histograms behind one
                   ``{name, type, value, labels}`` snapshot schema; the
                   legacy stats surfaces are views over it.
``exporters``      JSON-lines span sink, Prometheus text exposition, and
                   snapshot writers for the CLI and benches.
=================  ==========================================================

Enable tracing programmatically (``tracer.set_enabled(True)``), per run
(``avt-bench serve-sim --trace-out trace.jsonl``), or process-wide via the
``REPRO_TRACE=1`` environment variable.
"""

from repro.obs import tracer
from repro.obs.exporters import (
    JsonLinesSpanSink,
    read_spans_jsonl,
    to_prometheus,
    write_metrics,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "tracer",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
    "JsonLinesSpanSink",
    "read_spans_jsonl",
    "write_spans_jsonl",
    "to_prometheus",
    "write_metrics",
]
