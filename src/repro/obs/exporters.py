"""Pluggable exporters for spans and metric snapshots.

Three output formats, matching the three consumers the observability layer
serves:

* **JSON lines** (machine replay / trace viewers): one span or metric dict per
  line, written either streaming via :class:`JsonLinesSpanSink` (registered as
  a tracer sink) or in one shot via :func:`write_spans_jsonl`.
* **Prometheus text exposition** (scrapers / load generators):
  :func:`to_prometheus` renders a registry snapshot, including cumulative
  ``_bucket``/``_sum``/``_count`` series for histograms.
* **Human summaries** stay where they always were (``EngineStats.summary()``
  et al.) — those are now views over the registry, so they need no exporter.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Union

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "JsonLinesSpanSink",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "to_prometheus",
    "write_metrics",
]

SnapshotLike = Union[MetricsRegistry, Iterable[Dict[str, Any]]]


def _as_snapshot(metrics: SnapshotLike) -> List[Dict[str, Any]]:
    if isinstance(metrics, MetricsRegistry):
        return metrics.snapshot()
    return list(metrics)


class JsonLinesSpanSink:
    """Streaming span sink: one JSON object per line, flushed per span.

    Register with ``tracer.add_sink(sink)``; call :meth:`close` (or use as a
    context manager) when done.  Keeps a span counter so callers can report
    how much was captured.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True
        self.spans_written = 0

    def __call__(self, span_dict: Dict[str, Any]) -> None:
        self._file.write(json.dumps(span_dict, default=str) + "\n")
        self.spans_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonLinesSpanSink":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False


def write_spans_jsonl(spans: Iterable[Dict[str, Any]], path: Union[str, Path]) -> int:
    """Write already-collected span dicts to ``path``; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span_dict in spans:
            handle.write(json.dumps(span_dict, default=str) + "\n")
            count += 1
    return count


def read_spans_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSON-lines span file back into span dicts (tests, tooling)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _prom_name(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: Any) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(metrics: SnapshotLike) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for entry in _as_snapshot(metrics):
        name = _prom_name(entry["name"])
        kind = entry.get("type", "counter")
        labels = entry.get("labels") or {}
        if kind == "histogram":
            if seen_types.get(name) != "histogram":
                lines.append(f"# TYPE {name} histogram")
                seen_types[name] = "histogram"
            value = entry.get("value") or {}
            buckets = {int(k): int(v) for k, v in (value.get("buckets") or {}).items()}
            cumulative = 0
            for index in sorted(buckets):
                cumulative += buckets[index]
                bound = Histogram.bucket_upper_bound(index)
                le = 'le="{:.9g}"'.format(bound)
                lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cumulative}")
            inf_le = 'le="+Inf"'
            lines.append(f"{name}_bucket{_prom_labels(labels, inf_le)} {value.get('count', 0)}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {_format_value(value.get('sum', 0.0))}")
            lines.append(f"{name}_count{_prom_labels(labels)} {value.get('count', 0)}")
        else:
            prom_kind = "gauge" if kind == "gauge" else "counter"
            if seen_types.get(name) != prom_kind:
                lines.append(f"# TYPE {name} {prom_kind}")
                seen_types[name] = prom_kind
            lines.append(f"{name}{_prom_labels(labels)} {_format_value(entry.get('value', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(metrics: SnapshotLike, path: Union[str, Path]) -> str:
    """Write a metrics snapshot to ``path``; format chosen by extension.

    ``.prom`` / ``.txt`` → Prometheus text exposition; anything else → a JSON
    array in the unified ``{name, type, value, labels}`` schema.  Returns the
    format written (``"prometheus"`` or ``"json"``).
    """
    path = Path(path)
    snapshot = _as_snapshot(metrics)
    if path.suffix in {".prom", ".txt"}:
        path.write_text(to_prometheus(snapshot), encoding="utf-8")
        return "prometheus"
    path.write_text(json.dumps(snapshot, indent=2, default=str) + "\n", encoding="utf-8")
    return "json"
