"""Hierarchical tracing with a near-zero-overhead disabled path.

Usage at an instrumentation site::

    from repro.obs import tracer

    with tracer.span("engine.query", k=k, budget=budget) as sp:
        ...
        sp.set(outcome="hit")

When tracing is disabled (the default), :func:`span` performs a single
module-level flag check and returns a shared no-op singleton — no span object
is allocated and nothing is recorded, so instrumentation can stay inline in
hot paths.  Enable tracing with :func:`set_enabled` (or the ``REPRO_TRACE``
environment variable, honoured at import so spawned worker processes and CI
jobs inherit it).

Finished spans are appended to a bounded in-process buffer (and fanned out to
any registered sinks, e.g. the JSON-lines exporter).  Span ids embed the
process id, so spans recorded inside spawn-based shard workers stay unique and
can be merged into the coordinator's trace with :func:`adopt` — worker-root
spans are re-parented onto the coordinator's current span and re-tagged with
its trace id, which is how a sharded decompose shows per-shard timings.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs.metrics import global_registry

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "current_trace_id",
    "thread_span_stacks",
    "drain",
    "add_sink",
    "remove_sink",
    "adopt",
    "enabled",
    "set_enabled",
    "is_enabled",
    "default_tracer",
]

logger = logging.getLogger("repro.obs")

SpanDict = Dict[str, Any]
Sink = Callable[[SpanDict], None]

#: Finished spans kept in the buffer before new ones are dropped (counted).
MAX_BUFFERED_SPANS = 50_000

#: Module-level enablement flag — THE single check on the disabled fast path.
#: Reassigned by :func:`set_enabled`; read directly by :func:`span`.
enabled: bool = os.environ.get("REPRO_TRACE", "").strip().lower() in {"1", "true", "yes", "on"}

#: Per-thread open-span stacks, keyed by thread ident.  A plain dict (not
#: ``threading.local``) so the sampling profiler can read *other* threads'
#: stacks; all accesses are single dict/list ops, atomic under the GIL.
#: Entries are removed when a thread's outermost span exits, so the dict does
#: not grow with thread churn.
_STACKS: Dict[int, List["Span"]] = {}
_id_lock = threading.Lock()
_id_state = {"pid": os.getpid(), "next": 1}


def _next_span_id() -> str:
    """Process-unique span id; pid-prefixed so ids never collide across workers."""
    with _id_lock:
        pid = os.getpid()
        if pid != _id_state["pid"]:  # forked child inherited our counter
            _id_state["pid"] = pid
            _id_state["next"] = 1
        seq = _id_state["next"]
        _id_state["next"] = seq + 1
    return f"{pid:x}-{seq:x}"


def _stack() -> List["Span"]:
    ident = threading.get_ident()
    stack = _STACKS.get(ident)
    if stack is None:
        stack = _STACKS[ident] = []
    return stack


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopSpan()


class Span:
    """One timed, attributed region of work; records itself on ``__exit__``."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "attrs",
        "start",
        "duration",
        "_tracer",
        "_perf_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = _next_span_id()
        self.parent_id: Optional[str] = None
        self.trace_id = self.span_id  # overwritten on __enter__ if nested
        self.start = 0.0
        self.duration = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes (e.g. the outcome, sizes, counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        stack.append(self)
        self.start = time.time()
        self._perf_start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration = time.perf_counter() - self._perf_start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - unbalanced exit safety net
            stack.remove(self)
        if not stack:
            _STACKS.pop(threading.get_ident(), None)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._record(self.to_dict())
        return False

    def to_dict(self) -> SpanDict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "pid": os.getpid(),
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects finished spans into a bounded buffer and fans out to sinks."""

    def __init__(self, max_buffered: int = MAX_BUFFERED_SPANS) -> None:
        self.max_buffered = max_buffered
        self._buffer: List[SpanDict] = []
        self._sinks: List[Sink] = []
        registry = global_registry()
        self._recorded = registry.counter("obs.spans_recorded")
        self._dropped = registry.counter("obs.spans_dropped")
        self._drop_warned = False

    def span(self, name: str, **attrs: Any):
        """Start a span (context manager).  No-op singleton while disabled."""
        if not enabled:
            return _NOOP
        return Span(self, name, attrs)

    def _record(self, span_dict: SpanDict) -> None:
        self._recorded.inc()
        if len(self._buffer) < self.max_buffered:
            self._buffer.append(span_dict)
        else:
            self._dropped.inc()
            if not self._drop_warned:
                self._drop_warned = True
                logger.warning(
                    "span buffer full (max_buffered=%d); dropping further spans "
                    "until drain() — attach a streaming sink for long runs "
                    "(obs.spans_dropped counts the loss)",
                    self.max_buffered,
                )
        for sink in self._sinks:
            sink(span_dict)

    def drain(self) -> List[SpanDict]:
        """Return all buffered spans and clear the buffer."""
        spans, self._buffer = self._buffer, []
        self._drop_warned = False
        return spans

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def adopt(self, spans: Iterable[SpanDict], **extra_attrs: Any) -> List[SpanDict]:
        """Merge spans drained in another process into the current trace.

        Worker-root spans (parent not present in the drained set) are
        re-parented onto the caller's current span; every span is re-tagged
        with the current trace id and ``extra_attrs`` (e.g. ``shard=3``).
        Returns the merged span dicts.
        """
        spans = list(spans)
        local_ids = {entry["span_id"] for entry in spans}
        parent = current_span()
        merged = []
        for entry in spans:
            if extra_attrs:
                entry["attrs"] = {**entry.get("attrs", {}), **extra_attrs}
            if entry.get("parent_id") not in local_ids:
                entry["parent_id"] = parent.span_id if parent is not None else None
            if parent is not None:
                entry["trace_id"] = parent.trace_id
            self._record(entry)
            merged.append(entry)
        return merged


_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    return _DEFAULT


def span(name: str, **attrs: Any):
    """Start a span on the default tracer (module-level fast path)."""
    if not enabled:
        return _NOOP
    return Span(_DEFAULT, name, attrs)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or None."""
    stack = _STACKS.get(threading.get_ident())
    return stack[-1] if stack else None


def current_trace_id() -> Optional[str]:
    """Trace id of this thread's innermost open span, or None.

    Cheap enough for hot paths even while tracing is disabled (one dict
    lookup); used to attach trace-id exemplars to latency histograms.
    """
    stack = _STACKS.get(threading.get_ident())
    return stack[-1].trace_id if stack else None


def thread_span_stacks() -> Dict[int, List[str]]:
    """Snapshot of every thread's open span-name stack, outermost first.

    Read-only view for the sampling profiler: it maps each thread ident with
    at least one open span to the span names on its stack.  Safe to call from
    any thread — iteration copies under the GIL and tolerates concurrent
    push/pop (a stack observed mid-mutation just yields a slightly stale
    list, which is fine for statistical sampling).
    """
    snapshot: Dict[int, List[str]] = {}
    for ident, stack in list(_STACKS.items()):
        names = [open_span.name for open_span in list(stack)]
        if names:
            snapshot[ident] = names
    return snapshot


def drain() -> List[SpanDict]:
    return _DEFAULT.drain()


def add_sink(sink: Sink) -> None:
    _DEFAULT.add_sink(sink)


def remove_sink(sink: Sink) -> None:
    _DEFAULT.remove_sink(sink)


def adopt(spans: Iterable[SpanDict], **extra_attrs: Any) -> List[SpanDict]:
    return _DEFAULT.adopt(spans, **extra_attrs)


def set_enabled(flag: bool) -> bool:
    """Turn tracing on/off; returns the previous state (for restore)."""
    global enabled
    previous = enabled
    enabled = bool(flag)
    return previous


def is_enabled() -> bool:
    return enabled
