"""Trace analytics over finished spans: trees, critical paths, flamegraphs.

The tracer (:mod:`repro.obs.tracer`) and the JSON-lines exporter collect flat
span dicts; this module turns them back into something a human can diagnose:

* :func:`build_span_trees` — reconstruct the span forest from drained or
  JSONL-loaded span dicts (children sorted by start time, intervals derived
  from ``start``/``duration``).
* :func:`critical_path` — Dapper-style critical-path extraction: walking
  backwards from a root span's end, the child active at each instant is on
  the path and the gaps between children are the parent's own critical time.
  The step contributions sum to the root's wall time *by construction*, which
  is what makes the report trustworthy: nothing is double-counted across the
  async ``shard.exchange``/``shard.wave`` children adopted from workers.
* :func:`self_time_by_name` / :func:`flame_stacks` /
  :func:`render_collapsed` — per-span-name self-time aggregation and
  collapsed-stack output consumable by standard flamegraph tooling
  (``flamegraph.pl``, speedscope, inferno).
* :func:`straggler_report` — per-shard busy fractions, wave skew and
  resubmission counts for every ``shard.exchange`` in a trace; its totals
  reconcile exactly with the coordinator's ``exchange_waves`` /
  ``ops_dispatched`` counters.
* :func:`diff_traces` — attribute the latency delta between two traces to
  span names (which phase got slower, which got faster).

Everything here is pure post-processing over span dicts — no tracer state is
touched, so it is safe to analyze a trace while another one is recording.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "SpanNode",
    "CriticalStep",
    "build_span_trees",
    "critical_path",
    "critical_path_by_name",
    "self_time_by_name",
    "flame_stacks",
    "render_collapsed",
    "render_tree",
    "straggler_report",
    "diff_traces",
]

SpanDict = Dict[str, Any]

#: Interval-arithmetic tolerance (seconds).  Well below clock resolution;
#: keeps the backwards walk from emitting zero-width steps on float noise.
_EPS = 1e-12


class SpanNode:
    """One span in a reconstructed trace tree."""

    __slots__ = ("span", "children", "parent")

    def __init__(self, span: SpanDict) -> None:
        self.span = span
        self.children: List["SpanNode"] = []
        self.parent: Optional["SpanNode"] = None

    # -- span-field accessors ------------------------------------------
    @property
    def name(self) -> str:
        return self.span.get("name", "?")

    @property
    def span_id(self) -> Optional[str]:
        return self.span.get("span_id")

    @property
    def trace_id(self) -> Optional[str]:
        return self.span.get("trace_id")

    @property
    def attrs(self) -> Dict[str, Any]:
        return self.span.get("attrs") or {}

    @property
    def start(self) -> float:
        return float(self.span.get("start", 0.0))

    @property
    def duration(self) -> float:
        return float(self.span.get("duration", 0.0))

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def self_time(self) -> float:
        """Duration not covered by children (clamped at zero for async
        fan-out, where concurrent children can sum past the parent)."""
        covered = sum(child.duration for child in self.children)
        return max(0.0, self.duration - covered)

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first, children by start."""
        yield self
        for child in self.children:
            for node in child.walk():
                yield node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanNode({self.name!r}, {self.duration * 1e3:.3f}ms, children={len(self.children)})"


class CriticalStep(NamedTuple):
    """One entry on a critical path: a span and its on-path seconds."""

    node: SpanNode
    seconds: float


def build_span_trees(spans: Iterable[SpanDict]) -> List[SpanNode]:
    """Reconstruct the span forest from flat span dicts.

    Spans whose ``parent_id`` is absent from the set become roots (this is
    exactly how worker spans look before :func:`~repro.obs.tracer.adopt`, and
    how coordinator roots always look).  Children and roots are sorted by
    start time.
    """
    nodes: List[SpanNode] = [SpanNode(entry) for entry in spans]
    by_id: Dict[str, SpanNode] = {}
    for node in nodes:
        span_id = node.span_id
        if span_id is not None:
            by_id[span_id] = node
    roots: List[SpanNode] = []
    for node in nodes:
        parent = by_id.get(node.span.get("parent_id"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            node.parent = parent
            parent.children.append(node)
    for node in nodes:
        node.children.sort(key=lambda child: child.start)
    roots.sort(key=lambda root: root.start)
    return roots


def critical_path(root: SpanNode) -> List[CriticalStep]:
    """Extract the critical path through ``root``'s subtree.

    Walks backwards from the root's end: at every instant, the latest-ending
    child covering that instant is the blocking activity and joins the path
    (recursively); time not covered by any child is the parent's own critical
    time.  Concurrent children (async shard waves) are handled naturally —
    a child fully shadowed by a later-ending sibling contributes nothing.

    Returns chronologically-ordered steps whose ``seconds`` sum to the root's
    wall time (consecutive steps for the same span are merged).
    """
    steps_reversed: List[Tuple[SpanNode, float]] = []

    def visit(node: SpanNode, window_start: float, window_end: float) -> None:
        cursor = window_end
        # Latest-ending child first: the backwards walk always asks "what was
        # running just before `cursor`?"
        for child in sorted(node.children, key=lambda entry: entry.end, reverse=True):
            child_end = min(child.end, cursor)
            child_start = max(child.start, window_start)
            if child_end - child_start <= _EPS:
                continue  # shadowed by a later-ending sibling, or clipped away
            if cursor - child_end > _EPS:
                steps_reversed.append((node, cursor - child_end))  # parent gap
            visit(child, child_start, child_end)
            cursor = child_start
            if cursor - window_start <= _EPS:
                break
        if cursor - window_start > _EPS:
            steps_reversed.append((node, cursor - window_start))

    visit(root, root.start, root.end)

    merged: List[CriticalStep] = []
    for node, seconds in reversed(steps_reversed):
        if merged and merged[-1].node is node:
            merged[-1] = CriticalStep(node, merged[-1].seconds + seconds)
        else:
            merged.append(CriticalStep(node, seconds))
    return merged


def critical_path_by_name(steps: Iterable[CriticalStep]) -> Dict[str, float]:
    """Aggregate critical-path seconds per span name."""
    totals: Dict[str, float] = {}
    for step in steps:
        totals[step.node.name] = totals.get(step.node.name, 0.0) + step.seconds
    return totals


def self_time_by_name(spans: Iterable[SpanDict]) -> Dict[str, Dict[str, float]]:
    """Per-span-name aggregation: count, total wall and self time."""
    totals: Dict[str, Dict[str, float]] = {}
    for root in build_span_trees(spans):
        for node in root.walk():
            entry = totals.setdefault(
                node.name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
            )
            entry["count"] += 1
            entry["total_seconds"] += node.duration
            entry["self_seconds"] += node.self_time
    return totals


def flame_stacks(spans: Iterable[SpanDict]) -> Dict[str, float]:
    """Self-time per span-name stack — the flamegraph aggregation.

    Keys are semicolon-joined name paths from the root (``a;b;c``), values
    are self-time seconds summed over every occurrence of that path.
    """
    totals: Dict[str, float] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        path = f"{prefix};{node.name}" if prefix else node.name
        self_seconds = node.self_time
        if self_seconds > 0.0:
            totals[path] = totals.get(path, 0.0) + self_seconds
        for child in node.children:
            walk(child, path)

    for root in build_span_trees(spans):
        walk(root, "")
    return totals


def render_collapsed(totals: Dict[str, float], unit: float = 1e6) -> str:
    """Collapsed-stack text (``stack value`` lines, value in µs by default).

    The format every standard flamegraph renderer consumes; integer weights,
    zero-weight stacks skipped, stacks sorted for deterministic output.
    """
    lines = []
    for path in sorted(totals):
        weight = int(round(totals[path] * unit))
        if weight > 0:
            lines.append(f"{path} {weight}")
    return "\n".join(lines)


def render_tree(
    roots: Iterable[SpanNode],
    *,
    max_depth: Optional[int] = None,
    min_duration: float = 0.0,
) -> str:
    """Indented text rendering of span trees (durations in ms, attrs inline)."""
    lines: List[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        if node.duration < min_duration and depth > 0:
            return
        attrs = node.attrs
        suffix = ""
        if attrs:
            rendered = ", ".join(f"{key}={attrs[key]!r}" for key in sorted(attrs))
            suffix = f"  [{rendered}]"
        lines.append(f"{'  ' * depth}{node.name}  {node.duration * 1e3:.3f}ms{suffix}")
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def straggler_report(spans: Iterable[SpanDict]) -> Dict[str, Any]:
    """Shard-wave utilization report over every ``shard.exchange`` in a trace.

    For each exchange: wall time, wave count (the coordinator stamps a
    ``waves`` attr at fixpoint), dispatched ``shard.op`` descendants, and
    per-shard busy seconds / busy fraction / op counts with the resulting
    skew (max busy over mean busy) and straggler ordering.  The grand totals
    (``total_waves``, ``total_ops_dispatched``) reconcile exactly with the
    coordinator's ``exchange_waves`` / ``ops_dispatched`` counters for the
    traced window: every dispatched op records exactly one ``shard.op`` span
    under its exchange.
    """
    roots = build_span_trees(spans)
    exchanges: List[SpanNode] = []
    for root in roots:
        for node in root.walk():
            if node.name == "shard.exchange":
                exchanges.append(node)

    report_entries: List[Dict[str, Any]] = []
    total_waves = 0
    total_ops = 0
    for exchange in exchanges:
        ops = [node for node in exchange.walk() if node.name == "shard.op"]
        wave_spans = [child for child in exchange.children if child.name == "shard.wave"]
        waves = int(exchange.attrs.get("waves", len(wave_spans)))
        wall = exchange.duration

        per_shard: Dict[Any, Dict[str, Any]] = {}
        for op in ops:
            shard = op.attrs.get("shard", "?")
            entry = per_shard.setdefault(
                shard, {"busy_seconds": 0.0, "ops": 0, "busy_fraction": 0.0}
            )
            entry["busy_seconds"] += op.duration
            entry["ops"] += 1
        for entry in per_shard.values():
            entry["busy_fraction"] = entry["busy_seconds"] / wall if wall > 0 else 0.0

        busies = [entry["busy_seconds"] for entry in per_shard.values()]
        mean_busy = sum(busies) / len(busies) if busies else 0.0
        skew = (max(busies) / mean_busy) if mean_busy > 0 else 1.0
        # Each shard's first op is the initial submission; anything beyond is
        # a resubmission triggered by an arriving boundary update.
        resubmissions = sum(max(0, entry["ops"] - 1) for entry in per_shard.values())
        stragglers = sorted(
            per_shard, key=lambda shard: per_shard[shard]["busy_seconds"], reverse=True
        )

        report_entries.append(
            {
                "op": exchange.attrs.get("op"),
                "wall_seconds": wall,
                "waves": waves,
                "ops": len(ops),
                "resubmissions": resubmissions,
                "skew": skew,
                "shards": {shard: dict(entry) for shard, entry in per_shard.items()},
                "stragglers": stragglers,
            }
        )
        total_waves += waves
        total_ops += len(ops)

    return {
        "num_exchanges": len(exchanges),
        "total_waves": total_waves,
        "total_ops_dispatched": total_ops,
        "exchanges": report_entries,
    }


def diff_traces(
    spans_a: Iterable[SpanDict], spans_b: Iterable[SpanDict]
) -> Dict[str, Any]:
    """Attribute the latency delta between two traces to span names.

    Compares per-name self-time totals (where the time was actually spent,
    not double-counted through parents).  ``delta_seconds > 0`` means the
    name got slower from A to B.  Entries are sorted by absolute delta.
    """
    totals_a = self_time_by_name(spans_a)
    totals_b = self_time_by_name(spans_b)
    names = sorted(set(totals_a) | set(totals_b))
    if not names:
        raise ParameterError("diff_traces needs at least one span on either side")
    by_name = []
    for name in names:
        self_a = totals_a.get(name, {}).get("self_seconds", 0.0)
        self_b = totals_b.get(name, {}).get("self_seconds", 0.0)
        by_name.append(
            {
                "name": name,
                "self_seconds_a": self_a,
                "self_seconds_b": self_b,
                "count_a": int(totals_a.get(name, {}).get("count", 0)),
                "count_b": int(totals_b.get(name, {}).get("count", 0)),
                "delta_seconds": self_b - self_a,
            }
        )
    by_name.sort(key=lambda entry: abs(entry["delta_seconds"]), reverse=True)
    total_a = sum(entry["self_seconds_a"] for entry in by_name)
    total_b = sum(entry["self_seconds_b"] for entry in by_name)
    return {
        "total_self_seconds_a": total_a,
        "total_self_seconds_b": total_b,
        "delta_seconds": total_b - total_a,
        "by_name": by_name,
    }
