"""Unified metrics registry: counters, gauges and log-bucketed histograms.

Every stats surface in the codebase (:class:`~repro.engine.stats.EngineStats`,
:class:`~repro.anchored.result.SolverStats`, the shard coordinator's counters)
is a *view* over one of these registries: the legacy attribute API
(``stats.queries += 1``) keeps working, but the authoritative storage is a
metric object here, and every surface can emit the same snapshot schema::

    {"name": "engine.queries", "type": "counter", "value": 12, "labels": {}}

Histograms are log-bucketed (geometric bucket boundaries) so p50/p95/p99 are
derivable from the snapshot without retaining raw samples; a histogram created
with ``track_values=True`` additionally keeps the exact observations (used for
``SolverStats.commit_seconds``, which pre-dates the registry and is exposed as
a real list).

Design constraints honoured here:

* **No locks.**  Metric mutation is a single attribute update protected by the
  GIL; registries must stay picklable because solver stats travel inside
  checkpointed :class:`~repro.anchored.result.AnchoredKCoreResult` objects.
* **Cheap hot path.**  Views bind metric objects once at construction and then
  touch only ``metric.value`` — no registry lookup per increment.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
]

Number = Union[int, float]
LabelKey = Tuple[Tuple[str, str], ...]

#: Lowest histogram bucket upper bound (100ns — below any latency we time).
_BUCKET_BASE = 1e-7
#: Geometric growth factor between bucket boundaries.  sqrt(2) gives ~2x
#: resolution per octave, tight enough that p95/p99 read from bucket upper
#: bounds stay within ~41% of the true value — plenty for dashboards/floors.
_BUCKET_GROWTH = math.sqrt(2.0)
_LOG_GROWTH = math.log(_BUCKET_GROWTH)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic (by convention) numeric metric; also used as an accumulator."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite the value (snapshot restore / legacy attribute writes)."""
        self.value = value

    def to_metric(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind, "value": self.value, "labels": dict(self.labels)}

    def restore(self, value: Any) -> None:
        self.value = value


class Gauge(Counter):
    """Point-in-time numeric metric (same shape as a counter, settable)."""

    __slots__ = ()
    kind = "gauge"


class Histogram:
    """Log-bucketed histogram with derivable quantiles.

    Buckets are geometric: bucket ``i`` holds observations in
    ``(_BUCKET_BASE * growth**(i-1), _BUCKET_BASE * growth**i]``; bucket 0
    holds everything at or below ``_BUCKET_BASE``.  Only non-empty buckets are
    stored (sparse dict), so an idle histogram costs a few attributes.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max", "buckets", "samples", "exemplars")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        *,
        track_values: bool = False,
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}
        self.samples: Optional[List[float]] = [] if track_values else None
        #: Per-bucket exemplar: ``{bucket_index: (value, trace_id)}`` for the
        #: slowest recent observation that carried a trace id, so a p99 bucket
        #: links straight to an inspectable trace.
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    @staticmethod
    def bucket_index(value: float) -> int:
        if value <= _BUCKET_BASE:
            return 0
        return max(0, int(math.ceil(math.log(value / _BUCKET_BASE) / _LOG_GROWTH)))

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        return _BUCKET_BASE * (_BUCKET_GROWTH ** index)

    def observe(self, value: float, trace_id: Optional[str] = None) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if self.samples is not None:
            self.samples.append(value)
        if trace_id is not None:
            # Keep the slowest observation per bucket; ``>=`` so the exemplar
            # is the most *recent* of equally slow observations.
            held = self.exemplars.get(index)
            if held is None or value >= held[0]:
                self.exemplars[index] = (value, trace_id)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile ``q`` in [0, 1] from bucket upper bounds.

        Exact when ``track_values=True`` (computed from retained samples).
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        if self.samples is not None:
            ordered = sorted(self.samples)
            rank = min(len(ordered) - 1, max(0, int(math.ceil(q * len(ordered))) - 1))
            return ordered[rank]
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                return self.bucket_upper_bound(index)
        return self.bucket_upper_bound(max(self.buckets))

    def percentiles(self) -> Dict[str, float]:
        """The standard dashboard trio, derived from the buckets."""
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95), "p99": self.quantile(0.99)}

    def to_metric(self) -> Dict[str, Any]:
        value: Dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(index): count for index, count in sorted(self.buckets.items())},
        }
        if self.samples is not None:
            value["samples"] = list(self.samples)
        if self.exemplars:
            value["exemplars"] = {
                str(index): {"value": observed, "trace_id": trace_id}
                for index, (observed, trace_id) in sorted(self.exemplars.items())
            }
        return {"name": self.name, "type": self.kind, "value": value, "labels": dict(self.labels)}

    def restore(self, value: Dict[str, Any]) -> None:
        self.count = int(value.get("count", 0))
        self.sum = float(value.get("sum", 0.0))
        self.min = value["min"] if value.get("min") is not None else math.inf
        self.max = value["max"] if value.get("max") is not None else -math.inf
        self.buckets = {int(index): int(count) for index, count in value.get("buckets", {}).items()}
        if "samples" in value:
            self.samples = list(value["samples"])
        elif self.samples is not None:
            self.samples = []
        self.exemplars = {
            int(index): (float(entry["value"]), str(entry["trace_id"]))
            for index, entry in value.get("exemplars", {}).items()
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with a uniform snapshot schema.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice with
    the same name and labels returns the same object, so views can bind
    metrics at construction and mutate them without further lookups.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}

    # -- creation ------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, *, track_values: bool = False, **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, labels, track_values=track_values)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def _get_or_create(self, cls: Callable[..., Metric], name: str, labels: Dict[str, str]) -> Any:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    # -- access --------------------------------------------------------
    def get(self, name: str, **labels: str) -> Optional[Metric]:
        return self._metrics.get((name, _label_key(labels)))

    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    # -- serialisation -------------------------------------------------
    def snapshot(self, prefix: str = "") -> List[Dict[str, Any]]:
        """All metrics in the unified ``{name, type, value, labels}`` schema."""
        return [
            metric.to_metric()
            for metric in self._metrics.values()
            if metric.name.startswith(prefix)
        ]

    def restore(self, snapshot: Iterable[Dict[str, Any]]) -> None:
        """Load metric values from a :meth:`snapshot` payload (get-or-create)."""
        for entry in snapshot:
            name = entry["name"]
            labels = entry.get("labels") or {}
            kind = entry.get("type", "counter")
            if kind == "histogram":
                value = entry.get("value") or {}
                metric: Metric = self.histogram(
                    name, track_values="samples" in value, **labels
                )
            elif kind == "gauge":
                metric = self.gauge(name, **labels)
            else:
                metric = self.counter(name, **labels)
            metric.restore(entry.get("value", 0))

    def to_json(self, **dump_kwargs: Any) -> str:
        return json.dumps(self.snapshot(), **dump_kwargs)


#: Process-wide registry: tracer bookkeeping, CLI exports, bench embedding.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (tracer internals, default bench snapshot)."""
    return _GLOBAL


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh process-wide registry (test isolation) and return it."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()
    return _GLOBAL
