"""k-core machinery: decomposition, K-order index, and incremental maintenance."""

from repro.cores.decomposition import (
    CoreDecomposition,
    anchored_core_decomposition,
    core_decomposition,
    core_numbers,
    degeneracy,
    k_core,
    k_shell,
)
from repro.cores.korder import KOrder
from repro.cores.maintenance import CoreMaintainer, DeltaEffect
from repro.cores.mcd import max_core_degree, max_core_degrees

__all__ = [
    "CoreDecomposition",
    "anchored_core_decomposition",
    "core_decomposition",
    "core_numbers",
    "degeneracy",
    "k_core",
    "k_shell",
    "KOrder",
    "CoreMaintainer",
    "DeltaEffect",
    "max_core_degree",
    "max_core_degrees",
]
