"""The K-order index (Definition 5) with remaining degrees.

The K-order of a graph records, per shell ``O_k``, the order in which core
decomposition removed the shell's vertices.  Two vertices compare as
``u ⪯ v`` when ``core(u) < core(v)``, or when their cores are equal and ``u``
was removed first.  The *remaining degree* ``deg+(u)`` is the number of
neighbours positioned after ``u`` in the K-order — the neighbours that were
still present when ``u`` was peeled.

The K-order drives two optimisations from Section 4:

* candidate pruning (Theorem 3): only a vertex with a neighbour ``v`` such
  that ``core(v) = k - 1`` and ``x ⪯ v`` can gain followers when anchored; and
* the OLAK/OrderInsert-style follower computation, which scans ``O_{k-1}``
  instead of re-running a full decomposition.

A K-order is *valid* when the recorded core numbers are the true core numbers
and ``deg+(u) <= core(u)`` holds for every vertex — exactly the condition for
the sequence to be a legal removal order.  :meth:`KOrder.validate` checks this
and is used by the property tests and by the maintenance layer's self-checks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Union

from repro.backends import (
    BACKEND_AUTO,
    BACKEND_DICT,
    WORKLOAD_ONE_SHOT,
    ExecutionBackend,
    get_backend,
)
from repro.cores.decomposition import ANCHOR_CORE, CoreDecomposition, core_decomposition
from repro.errors import InvariantViolationError, VertexNotFoundError
from repro.graph.static import Graph, Vertex


class KOrder:
    """The K-order index of a graph snapshot.

    Instances are built from a :class:`CoreDecomposition` (or directly from a
    graph via :meth:`from_graph`) and expose O(1) order comparison, per-shell
    sequences and remaining degrees.  ``backend`` selects the execution layer
    (see :mod:`repro.backends`) for the decomposition and the
    remaining-degree pass; snapshot-based backends amortise one snapshot over
    both.  The resulting index is identical on every backend.
    """

    def __init__(
        self,
        graph: Graph,
        decomposition: Optional[CoreDecomposition] = None,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        backend_obj = get_backend(backend, graph.num_vertices)
        self._backend = backend_obj.name
        deg_plus: Optional[Dict[Vertex, int]] = None
        if decomposition is None:
            # korder() amortises one snapshot over the peel and the deg+ pass.
            decomposition, deg_plus = backend_obj.korder(graph)
        self._graph = graph
        self._core: Dict[Vertex, float] = dict(decomposition.core)
        self._anchors = set(decomposition.anchors)
        # Global rank: position of the vertex in the full removal order.
        self._rank: Dict[Vertex, int] = {
            vertex: position for position, vertex in enumerate(decomposition.order)
        }
        self._shells: Dict[int, List[Vertex]] = decomposition.shells()
        if deg_plus is None:
            # A caller-supplied decomposition leaves nothing to amortise a
            # snapshot build against, so the lone deg+ pass always runs on
            # the dict kernel (as it did before the registry existed) — a
            # snapshot-based backend would build an O(n + m) structure to
            # feed one O(n + m) pass.
            deg_plus = get_backend(
                BACKEND_DICT, graph.num_vertices, workload=WORKLOAD_ONE_SHOT
            ).remaining_degrees(graph, self._rank)
        self._deg_plus = deg_plus

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: Graph, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
    ) -> "KOrder":
        """Build the K-order of ``graph`` by running core decomposition."""
        return cls(graph, backend=backend)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph this K-order indexes (not copied)."""
        return self._graph

    def core(self, vertex: Vertex) -> float:
        """Return the core number recorded for ``vertex``."""
        try:
            return self._core[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def core_numbers(self) -> Dict[Vertex, float]:
        """Return a copy of the full core-number mapping."""
        return dict(self._core)

    def rank(self, vertex: Vertex) -> int:
        """Return the global removal rank of ``vertex`` (0 = removed first)."""
        try:
            return self._rank[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def precedes(self, u: Vertex, v: Vertex) -> bool:
        """Return whether ``u ⪯ v`` in K-order (strictly before)."""
        return self.rank(u) < self.rank(v)

    def remaining_degree(self, vertex: Vertex) -> int:
        """Return ``deg+(vertex)``: neighbours positioned after ``vertex``."""
        try:
            return self._deg_plus[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def shell_sequence(self, k: int) -> List[Vertex]:
        """Return the shell ``O_k`` in removal order (empty list if absent)."""
        return list(self._shells.get(k, []))

    def shell_set(self, k: int) -> Set[Vertex]:
        """Return the vertices of shell ``O_k`` as a set."""
        return set(self._shells.get(k, []))

    def shells(self) -> Dict[int, List[Vertex]]:
        """Return all shells as ``{core value: vertices in removal order}``."""
        return {k: list(sequence) for k, sequence in self._shells.items()}

    def max_core(self) -> int:
        """Return the largest finite core value present (0 if none)."""
        return max(self._shells, default=0)

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return ``{v : core(v) >= k}`` (anchored vertices always qualify)."""
        return {vertex for vertex, value in self._core.items() if value >= k}

    # ------------------------------------------------------------------
    # Candidate pruning (Theorem 3)
    # ------------------------------------------------------------------
    def candidate_anchors(self, k: int) -> Set[Vertex]:
        """Return the Theorem-3 candidate anchors for parameter ``k``.

        A vertex ``x`` qualifies when it has a neighbour ``v`` with
        ``core(v) = k - 1`` and ``x ⪯ v``; such an ``x`` is the only kind of
        vertex whose anchoring can produce followers.  Vertices already in the
        k-core are excluded — anchoring them changes nothing.
        """
        candidates: Set[Vertex] = set()
        for vertex, value in self._core.items():
            if value >= k:
                continue
            rank = self._rank[vertex]
            for neighbour in self._graph.neighbors(vertex):
                if self._core.get(neighbour) == k - 1 and self._rank[neighbour] > rank:
                    candidates.add(vertex)
                    break
        return candidates

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, reference: Optional[Mapping[Vertex, float]] = None) -> None:
        """Check the K-order invariants, raising on violation.

        Checks that (1) the recorded core numbers match ``reference`` (a fresh
        decomposition of the indexed graph when not supplied), (2) the order is
        sorted by non-decreasing core, and (3) ``deg+(v) <= core(v)`` for every
        vertex, i.e. the sequence is a legal removal order.
        """
        if reference is None:
            reference = core_decomposition(self._graph).core
        if set(reference) != set(self._core):
            raise InvariantViolationError("K-order vertex set differs from the graph's")
        for vertex, value in reference.items():
            if self._core[vertex] != value and vertex not in self._anchors:
                raise InvariantViolationError(
                    f"core number of {vertex!r} is {self._core[vertex]} but should be {value}"
                )
        ordered = sorted(self._rank, key=self._rank.get)
        previous_core = 0.0
        for vertex in ordered:
            value = self._core[vertex]
            if value < previous_core:
                raise InvariantViolationError(
                    f"K-order is not sorted by core number at vertex {vertex!r}"
                )
            previous_core = value
        for vertex in ordered:
            value = self._core[vertex]
            if value == ANCHOR_CORE:
                continue
            if self._deg_plus[vertex] > value:
                raise InvariantViolationError(
                    f"deg+({vertex!r}) = {self._deg_plus[vertex]} exceeds core number {value}"
                )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._core

    def __len__(self) -> int:
        return len(self._core)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KOrder(n={len(self._core)}, max_core={self.max_core()})"
