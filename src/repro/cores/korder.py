"""The K-order index (Definition 5) with remaining degrees.

The K-order of a graph records, per shell ``O_k``, the order in which core
decomposition removed the shell's vertices.  Two vertices compare as
``u ⪯ v`` when ``core(u) < core(v)``, or when their cores are equal and ``u``
was removed first.  The *remaining degree* ``deg+(u)`` is the number of
neighbours positioned after ``u`` in the K-order — the neighbours that were
still present when ``u`` was peeled.

The K-order drives two optimisations from Section 4:

* candidate pruning (Theorem 3): only a vertex with a neighbour ``v`` such
  that ``core(v) = k - 1`` and ``x ⪯ v`` can gain followers when anchored; and
* the OLAK/OrderInsert-style follower computation, which scans ``O_{k-1}``
  instead of re-running a full decomposition.

A K-order is *valid* when the recorded core numbers are the true core numbers
and ``deg+(u) <= core(u)`` holds for every vertex — exactly the condition for
the sequence to be a legal removal order.  :meth:`KOrder.validate` checks this
and is used by the property tests and by the maintenance layer's self-checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.cores.decomposition import (
    ANCHOR_CORE,
    CoreDecomposition,
    compact_peel,
    core_decomposition,
)
from repro.errors import InvariantViolationError, VertexNotFoundError
from repro.graph.compact import BACKEND_AUTO, BACKEND_COMPACT, CompactGraph, resolve_backend
from repro.graph.static import Graph, Vertex


class KOrder:
    """The K-order index of a graph snapshot.

    Instances are built from a :class:`CoreDecomposition` (or directly from a
    graph via :meth:`from_graph`) and expose O(1) order comparison, per-shell
    sequences and remaining degrees.  ``backend`` selects the execution layer
    for the decomposition and the remaining-degree pass (see
    :mod:`repro.graph.compact`); the resulting index is identical either way.
    """

    def __init__(
        self,
        graph: Graph,
        decomposition: Optional[CoreDecomposition] = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        self._backend = resolve_backend(backend, graph.num_vertices)
        # One CSR snapshot amortised over both the peel and the deg+ pass; a
        # caller-supplied decomposition leaves nothing to amortise the build
        # against, so that path stays on the dict deg+ pass.
        cgraph: Optional[CompactGraph] = None
        if decomposition is None:
            if self._backend == BACKEND_COMPACT:
                cgraph = CompactGraph.from_graph(graph, ordered=True)
                vertices = cgraph.interner.vertices
                core_ids, order_ids = compact_peel(cgraph)
                decomposition = CoreDecomposition(
                    core={
                        vertices[vid]: core_ids[vid] for vid in range(len(vertices))
                    },
                    order=tuple(vertices[vid] for vid in order_ids),
                )
            else:
                decomposition = core_decomposition(graph, backend=self._backend)
        self._graph = graph
        self._core: Dict[Vertex, float] = dict(decomposition.core)
        self._anchors = set(decomposition.anchors)
        # Global rank: position of the vertex in the full removal order.
        self._rank: Dict[Vertex, int] = {
            vertex: position for position, vertex in enumerate(decomposition.order)
        }
        self._shells: Dict[int, List[Vertex]] = decomposition.shells()
        if cgraph is not None:
            self._deg_plus = self._compute_remaining_degrees_compact(cgraph)
        else:
            self._deg_plus = self._compute_remaining_degrees()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph, backend: str = BACKEND_AUTO) -> "KOrder":
        """Build the K-order of ``graph`` by running core decomposition."""
        return cls(graph, backend=backend)

    def _compute_remaining_degrees(self) -> Dict[Vertex, int]:
        """Compute ``deg+`` for every vertex from the stored ranks."""
        deg_plus: Dict[Vertex, int] = {}
        for vertex, rank in self._rank.items():
            count = 0
            for neighbour in self._graph.neighbors(vertex):
                if self._rank.get(neighbour, -1) > rank:
                    count += 1
            deg_plus[vertex] = count
        return deg_plus

    def _compute_remaining_degrees_compact(self, cgraph: CompactGraph) -> Dict[Vertex, int]:
        """``deg+`` over the already-built CSR snapshot: one int-array pass."""
        interner = cgraph.interner
        indptr = cgraph.indptr
        indices = cgraph.indices
        rank = self._rank
        vertices = interner.vertices
        rank_ids = [rank.get(vertex, -1) for vertex in vertices]
        deg_plus: Dict[Vertex, int] = {}
        for vid in range(len(vertices)):
            own_rank = rank_ids[vid]
            if own_rank < 0:
                continue
            count = 0
            for position in range(indptr[vid], indptr[vid + 1]):
                if rank_ids[indices[position]] > own_rank:
                    count += 1
            deg_plus[vertices[vid]] = count
        return deg_plus

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph this K-order indexes (not copied)."""
        return self._graph

    def core(self, vertex: Vertex) -> float:
        """Return the core number recorded for ``vertex``."""
        try:
            return self._core[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def core_numbers(self) -> Dict[Vertex, float]:
        """Return a copy of the full core-number mapping."""
        return dict(self._core)

    def rank(self, vertex: Vertex) -> int:
        """Return the global removal rank of ``vertex`` (0 = removed first)."""
        try:
            return self._rank[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def precedes(self, u: Vertex, v: Vertex) -> bool:
        """Return whether ``u ⪯ v`` in K-order (strictly before)."""
        return self.rank(u) < self.rank(v)

    def remaining_degree(self, vertex: Vertex) -> int:
        """Return ``deg+(vertex)``: neighbours positioned after ``vertex``."""
        try:
            return self._deg_plus[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def shell_sequence(self, k: int) -> List[Vertex]:
        """Return the shell ``O_k`` in removal order (empty list if absent)."""
        return list(self._shells.get(k, []))

    def shell_set(self, k: int) -> Set[Vertex]:
        """Return the vertices of shell ``O_k`` as a set."""
        return set(self._shells.get(k, []))

    def shells(self) -> Dict[int, List[Vertex]]:
        """Return all shells as ``{core value: vertices in removal order}``."""
        return {k: list(sequence) for k, sequence in self._shells.items()}

    def max_core(self) -> int:
        """Return the largest finite core value present (0 if none)."""
        return max(self._shells, default=0)

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return ``{v : core(v) >= k}`` (anchored vertices always qualify)."""
        return {vertex for vertex, value in self._core.items() if value >= k}

    # ------------------------------------------------------------------
    # Candidate pruning (Theorem 3)
    # ------------------------------------------------------------------
    def candidate_anchors(self, k: int) -> Set[Vertex]:
        """Return the Theorem-3 candidate anchors for parameter ``k``.

        A vertex ``x`` qualifies when it has a neighbour ``v`` with
        ``core(v) = k - 1`` and ``x ⪯ v``; such an ``x`` is the only kind of
        vertex whose anchoring can produce followers.  Vertices already in the
        k-core are excluded — anchoring them changes nothing.
        """
        candidates: Set[Vertex] = set()
        for vertex, value in self._core.items():
            if value >= k:
                continue
            rank = self._rank[vertex]
            for neighbour in self._graph.neighbors(vertex):
                if self._core.get(neighbour) == k - 1 and self._rank[neighbour] > rank:
                    candidates.add(vertex)
                    break
        return candidates

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, reference: Optional[Mapping[Vertex, float]] = None) -> None:
        """Check the K-order invariants, raising on violation.

        Checks that (1) the recorded core numbers match ``reference`` (a fresh
        decomposition of the indexed graph when not supplied), (2) the order is
        sorted by non-decreasing core, and (3) ``deg+(v) <= core(v)`` for every
        vertex, i.e. the sequence is a legal removal order.
        """
        if reference is None:
            reference = core_decomposition(self._graph).core
        if set(reference) != set(self._core):
            raise InvariantViolationError("K-order vertex set differs from the graph's")
        for vertex, value in reference.items():
            if self._core[vertex] != value and vertex not in self._anchors:
                raise InvariantViolationError(
                    f"core number of {vertex!r} is {self._core[vertex]} but should be {value}"
                )
        ordered = sorted(self._rank, key=self._rank.get)
        previous_core = 0.0
        for vertex in ordered:
            value = self._core[vertex]
            if value < previous_core:
                raise InvariantViolationError(
                    f"K-order is not sorted by core number at vertex {vertex!r}"
                )
            previous_core = value
        for vertex in ordered:
            value = self._core[vertex]
            if value == ANCHOR_CORE:
                continue
            if self._deg_plus[vertex] > value:
                raise InvariantViolationError(
                    f"deg+({vertex!r}) = {self._deg_plus[vertex]} exceeds core number {value}"
                )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._core

    def __len__(self) -> int:
        return len(self._core)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KOrder(n={len(self._core)}, max_core={self.max_core()})"
