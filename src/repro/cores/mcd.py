"""Max core degree utilities (Definition 6).

The max core degree ``mcd(u)`` is the number of neighbours of ``u`` whose core
number is at least ``core(u)``.  It upper-bounds how much support ``u`` has for
staying in its current core: ``mcd(u) >= core(u)`` always holds, and after an
edge deletion a vertex whose ``mcd`` drops below its core number must have its
core number decreased (Lemma 4).  The incremental maintenance layer uses these
helpers for both the deletion cascade and the insertion candidate search.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.errors import VertexNotFoundError
from repro.graph.static import Graph, Vertex


def max_core_degree(graph: Graph, core: Mapping[Vertex, float], vertex: Vertex) -> int:
    """Return ``mcd(vertex)`` with respect to the core numbers in ``core``."""
    if not graph.has_vertex(vertex):
        raise VertexNotFoundError(vertex)
    own_core = core[vertex]
    return sum(1 for neighbour in graph.neighbors(vertex) if core[neighbour] >= own_core)


def max_core_degrees(
    graph: Graph,
    core: Mapping[Vertex, float],
    vertices: Optional[Iterable[Vertex]] = None,
) -> Dict[Vertex, int]:
    """Return ``mcd`` for the given vertices (all vertices when ``None``)."""
    targets = graph.vertices() if vertices is None else vertices
    return {vertex: max_core_degree(graph, core, vertex) for vertex in targets}


def pure_core_degree(graph: Graph, core: Mapping[Vertex, float], vertex: Vertex) -> int:
    """Return ``pcd(vertex)``: neighbours that could support a core increase.

    A neighbour ``w`` counts when ``core(w) > core(vertex)``, or when
    ``core(w) == core(vertex)`` and ``mcd(w) > core(w)`` (so ``w`` itself has
    room to rise together with ``vertex``).  This is the standard refinement
    used to prune the insertion candidate search.
    """
    if not graph.has_vertex(vertex):
        raise VertexNotFoundError(vertex)
    own_core = core[vertex]
    count = 0
    for neighbour in graph.neighbors(vertex):
        neighbour_core = core[neighbour]
        if neighbour_core > own_core:
            count += 1
        elif neighbour_core == own_core and max_core_degree(graph, core, neighbour) > own_core:
            count += 1
    return count
