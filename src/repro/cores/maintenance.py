"""Incremental core maintenance for evolving graphs (Section 5.2).

When the graph evolves from ``G_{t-1}`` to ``G_t`` by inserting the edge set
``E+`` and deleting ``E-``, core numbers change only locally: an insertion can
raise the core number of vertices in the *subcore* of the edge's lower
endpoint by at most one (Lemmas 1–2), and a deletion can lower the core number
of vertices whose max core degree drops below their core number (Lemmas 3–4).

:class:`CoreMaintainer` owns a graph and its core numbers and updates them
edge by edge using the classic traversal maintenance algorithms.  Batch
updates via :meth:`apply_delta` additionally report the paper's ``VI`` and
``VR`` sets — the insertion-affected and deletion-affected vertices whose core
number is ``k - 1`` afterwards — which is exactly the candidate pool the
incremental tracker (IncAVT, Algorithm 6) probes.

The maintainer is backend-aware (see :mod:`repro.backends`): the public
hashable-vertex graph stays the source of truth for the *structure*, while
the traversals and the maintained core numbers live in the resolved
backend's :class:`~repro.backends.MaintenanceKernel` — the dict kernel walks
the graph directly; the compact kernel (also used by the numpy backend,
whose vectorisation cannot beat int-set traversals on per-edge subcores)
mirrors the adjacency into integer-id sets with O(1) upkeep per edge
operation; the numba kernel compiles the same subcore/eviction and
support-drop traversals over a flat arena adjacency.  Results are identical
across backends, and a maintainer can be migrated to another backend
mid-flight via :meth:`CoreMaintainer.switch_backend` (used by the streaming
engine when an initially small graph outgrows the dict backend, and — when a
calibration table is active — whenever the graph crosses into a size band
with a different measured winner).

The maintained core numbers are the single source of truth for the incremental
tracker; a :meth:`validate` hook recomputes them from scratch and raises if
they ever diverge, and the property-based tests exercise that hook on random
edit sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Union

from repro.backends import BACKEND_AUTO, ExecutionBackend, get_backend
from repro.cores.decomposition import core_numbers as recompute_core_numbers
from repro.errors import InvariantViolationError, ParameterError
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Edge, Graph, Vertex


@dataclass
class DeltaEffect:
    """The effect of applying one snapshot delta to a maintained core index.

    Attributes
    ----------
    increased:
        Vertices whose core number rose while applying the delta.
    decreased:
        Vertices whose core number fell while applying the delta.
    insertion_affected:
        The paper's ``VI``: vertices touched by the insertion phase whose core
        number is ``k - 1`` in the updated graph.
    deletion_affected:
        The paper's ``VR``: vertices touched by the deletion phase whose core
        number is ``k - 1`` in the updated graph.
    insertion_touched:
        Every vertex the insertion phase examined (endpoints of effective
        insertions, risen vertices and traversal-visited vertices) — recorded
        independently of ``k`` so long-lived consumers such as the streaming
        engine can invalidate derived state without fixing ``k`` up front.
    deletion_touched:
        Every vertex the deletion phase examined, symmetric to
        ``insertion_touched``.
    pre_update_core:
        Core number each touched vertex had *before* the delta (first-seen
        snapshot; vertices the delta created are recorded at their
        creation-time core 0, which correctly marks them as new at every
        ``k``).  Lets consumers reason about old-vs-new cores without copying
        the full core index.
    visited:
        Number of vertices visited by the maintenance traversals (used by the
        instrumentation figures).
    """

    increased: Set[Vertex] = field(default_factory=set)
    decreased: Set[Vertex] = field(default_factory=set)
    insertion_affected: Set[Vertex] = field(default_factory=set)
    deletion_affected: Set[Vertex] = field(default_factory=set)
    insertion_touched: Set[Vertex] = field(default_factory=set)
    deletion_touched: Set[Vertex] = field(default_factory=set)
    pre_update_core: Dict[Vertex, int] = field(default_factory=dict)
    visited: int = 0

    @property
    def affected(self) -> Set[Vertex]:
        """Union of the insertion- and deletion-affected vertex sets."""
        return self.insertion_affected | self.deletion_affected

    @property
    def touched(self) -> Set[Vertex]:
        """Every vertex examined by either maintenance phase (k-independent)."""
        return self.insertion_touched | self.deletion_touched

    @property
    def changed(self) -> Set[Vertex]:
        """Vertices whose core number actually moved (rose or fell)."""
        return self.increased | self.decreased


class CoreMaintainer:
    """Maintains core numbers of a graph under edge insertions and deletions."""

    def __init__(
        self,
        graph: Graph,
        copy_graph: bool = True,
        core: Optional[Dict[Vertex, int]] = None,
        backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
    ) -> None:
        """Wrap ``graph``; recompute core numbers unless ``core`` supplies them.

        ``core`` exists for checkpoint restore: a caller that persisted the
        maintained core numbers alongside the graph can resume without paying
        a fresh decomposition.  The values are trusted; :meth:`validate`
        cross-checks them on demand.  ``backend`` selects the traversal
        implementation (``"auto"`` resolves by initial graph size).
        """
        self._graph = graph.copy() if copy_graph else graph
        self._backend = get_backend(backend, self._graph.num_vertices)
        initial = (
            dict(core)
            if core is not None
            else recompute_core_numbers(self._graph, backend=self._backend)
        )
        self._kernel = self._backend.build_maintenance(self._graph, initial)
        self._visited_last = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The maintained graph (mutated in place by the update methods)."""
        return self._graph

    @property
    def backend(self) -> str:
        """The name of the resolved execution backend (e.g. ``"dict"``)."""
        return self._backend.name

    @property
    def backend_instance(self) -> ExecutionBackend:
        """The resolved :class:`~repro.backends.ExecutionBackend` itself."""
        return self._backend

    def switch_backend(self, backend: Union[str, ExecutionBackend]) -> bool:
        """Migrate the maintained state onto another execution backend.

        Rebuilds the backend's maintenance kernel from the live graph and the
        *current* maintained core numbers — no decomposition is re-run, so
        the migration is O(n + m) structure mirroring only.  Returns whether
        a switch actually happened (requesting the current backend, or
        ``"auto"`` resolving to it, is a no-op).  The streaming engine calls
        this at flush time when a graph that started below the auto threshold
        outgrows the dict backend.
        """
        target = get_backend(backend, self._graph.num_vertices)
        if target.name == self._backend.name:
            return False
        self._kernel = target.build_maintenance(self._graph, self.core_numbers())
        self._backend = target
        return True

    def core_numbers(self) -> Dict[Vertex, int]:
        """Return a copy of the maintained core numbers."""
        return self._kernel.core_numbers()

    def core(self, vertex: Vertex) -> int:
        """Return the maintained core number of ``vertex``."""
        return self._kernel.core(vertex)

    def _core_get(self, vertex: Vertex, default: Optional[int] = None) -> Optional[int]:
        """``dict.get``-style lookup through the kernel."""
        return self._kernel.core_get(vertex, default)

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return ``{v : core(v) >= k}`` under the maintained core numbers."""
        return self._kernel.k_core_vertices(k)

    def shell_vertices(self, k: int) -> Set[Vertex]:
        """Return ``{v : core(v) == k}`` under the maintained core numbers."""
        return self._kernel.shell_vertices(k)

    # ------------------------------------------------------------------
    # Single-edge updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Insert edge ``(u, v)`` and return the vertices whose core increased.

        Inserting an edge that already exists is a no-op returning the empty
        set.  New endpoints are added with core number updated from scratch
        locally (a fresh vertex starts at core 0 before the edge is counted).
        """
        for vertex in (u, v):
            if not self._graph.has_vertex(vertex):
                self._graph.add_vertex(vertex)
                self._kernel.add_vertex(vertex)
        if not self._graph.add_edge(u, v):
            return set()
        self._kernel.add_edge(u, v)
        increased, visited = self._kernel.process_insertion(u, v)
        self._visited_last = len(visited)
        self._visited_vertices_last = visited
        return increased

    def remove_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Remove edge ``(u, v)`` and return the vertices whose core decreased.

        Removing an absent edge is a no-op returning the empty set.
        """
        if not self._graph.has_edge(u, v):
            return set()
        self._graph.remove_edge(u, v)
        self._kernel.remove_edge(u, v)
        decreased, visited = self._kernel.process_deletion(u, v)
        self._visited_last = len(visited)
        self._visited_vertices_last = visited
        return decreased

    # ------------------------------------------------------------------
    # Batch updates
    # ------------------------------------------------------------------
    def insert_edges(self, edges: Iterable[Edge]) -> Set[Vertex]:
        """Insert every edge of ``edges`` in one pass.

        Returns the union of all vertices whose core number rose across the
        whole batch (computed while inserting — no second scan).
        """
        increased: Set[Vertex] = set()
        for u, v in edges:
            increased.update(self.insert_edge(u, v))
        return increased

    def remove_edges(self, edges: Iterable[Edge]) -> Set[Vertex]:
        """Remove every edge of ``edges`` in one pass.

        Returns the union of all vertices whose core number fell across the
        whole batch (computed while removing — no second scan).
        """
        decreased: Set[Vertex] = set()
        for u, v in edges:
            decreased.update(self.remove_edge(u, v))
        return decreased

    def apply_delta(self, delta: EdgeDelta, k: Optional[int] = None) -> DeltaEffect:
        """Apply one snapshot delta (insertions first, then deletions).

        When ``k`` is given, the returned :class:`DeltaEffect` also carries the
        ``VI`` / ``VR`` candidate pools for that ``k`` (vertices touched by the
        respective phase whose updated core number is ``k - 1``).  The
        k-independent ``touched`` sets are always recorded, counting only
        *effective* operations — inserting a present edge or removing an
        absent one leaves no trace, so consumers can treat an empty ``touched``
        as "the graph did not change".
        """
        if k is not None and k < 1:
            raise ParameterError("k must be >= 1 when requesting affected pools")
        effect = DeltaEffect()
        if delta.is_empty():
            return effect

        pre_core = effect.pre_update_core
        for u, v in delta.inserted:
            if self._graph.has_edge(u, v):
                continue
            for endpoint in (u, v):
                if endpoint not in pre_core:
                    value = self._core_get(endpoint)
                    if value is not None:
                        pre_core[endpoint] = value
            increased = self.insert_edge(u, v)
            for vertex in self._visited_vertices_last:
                if vertex not in pre_core:
                    # An insertion raises a risen vertex by exactly 1.
                    pre_core[vertex] = self.core(vertex) - (1 if vertex in increased else 0)
            effect.increased |= increased
            effect.insertion_touched.update((u, v))
            effect.insertion_touched |= increased
            effect.insertion_touched |= self._visited_vertices_last
            effect.visited += self._visited_last

        for u, v in delta.removed:
            if not self._graph.has_edge(u, v):
                continue
            for endpoint in (u, v):
                if endpoint not in pre_core:
                    pre_core[endpoint] = self.core(endpoint)
            decreased = self.remove_edge(u, v)
            for vertex in self._visited_vertices_last:
                if vertex not in pre_core:
                    # A deletion lowers a dropped vertex by exactly 1.
                    pre_core[vertex] = self.core(vertex) + (1 if vertex in decreased else 0)
            effect.decreased |= decreased
            effect.deletion_touched.update((u, v))
            effect.deletion_touched |= decreased
            effect.deletion_touched |= self._visited_vertices_last
            effect.visited += self._visited_last

        if k is not None:
            target = k - 1
            effect.insertion_affected = {
                vertex for vertex in effect.insertion_touched if self._core_get(vertex) == target
            }
            effect.deletion_affected = {
                vertex for vertex in effect.deletion_touched if self._core_get(vertex) == target
            }
        return effect

    def refresh_from_graph(self) -> None:
        """Recompute all core numbers from the current graph state.

        Used when a caller mutates the maintained graph wholesale (e.g. a
        snapshot delta so large that per-edge maintenance would cost more than
        one fresh decomposition — the situation the paper describes for
        high-churn snapshots).  The backend kernel is rebuilt alongside (the
        caller may have added or removed arbitrary edges and vertices).
        """
        fresh = recompute_core_numbers(self._graph, backend=self._backend)
        self._kernel = self._backend.build_maintenance(self._graph, fresh)
        self._visited_last = 0
        self._visited_vertices_last = set()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Recompute core numbers from scratch and raise on any divergence."""
        fresh = recompute_core_numbers(self._graph)
        maintained = self.core_numbers()
        if fresh != maintained:
            differing = {
                vertex: (maintained.get(vertex), fresh.get(vertex))
                for vertex in set(fresh) | set(maintained)
                if maintained.get(vertex) != fresh.get(vertex)
            }
            raise InvariantViolationError(
                f"maintained core numbers diverged from recomputation: {differing}"
            )

    # Default values so apply_delta can read them even before any update ran.
    # The traversal implementations themselves (Lemmas 1-4) live in the
    # backend maintenance kernels (repro/backends/).
    _visited_vertices_last: Set[Vertex] = frozenset()  # type: ignore[assignment]
    _visited_last: int = 0
