"""Incremental core maintenance for evolving graphs (Section 5.2).

When the graph evolves from ``G_{t-1}`` to ``G_t`` by inserting the edge set
``E+`` and deleting ``E-``, core numbers change only locally: an insertion can
raise the core number of vertices in the *subcore* of the edge's lower
endpoint by at most one (Lemmas 1–2), and a deletion can lower the core number
of vertices whose max core degree drops below their core number (Lemmas 3–4).

:class:`CoreMaintainer` owns a graph and its core numbers and updates them
edge by edge using the classic traversal maintenance algorithms.  Batch
updates via :meth:`apply_delta` additionally report the paper's ``VI`` and
``VR`` sets — the insertion-affected and deletion-affected vertices whose core
number is ``k - 1`` afterwards — which is exactly the candidate pool the
incremental tracker (IncAVT, Algorithm 6) probes.

The maintainer is backend-aware (see :mod:`repro.graph.compact`): in compact
mode it keeps the public hashable-vertex graph as the source of truth for the
*structure* but mirrors the adjacency into integer-id sets
(:class:`~repro.graph.compact.DynamicCompactAdjacency`) and stores the core
numbers in a flat list indexed by id, so the subcore/eviction traversals of
the inner loops run entirely over small ints.  Mirror upkeep is O(1) per edge
operation; results are identical across backends.

The maintained core numbers are the single source of truth for the incremental
tracker; a :meth:`validate` hook recomputes them from scratch and raises if
they ever diverge, and the property-based tests exercise that hook on random
edit sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cores.decomposition import core_numbers as recompute_core_numbers
from repro.errors import InvariantViolationError, ParameterError
from repro.graph.compact import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    DynamicCompactAdjacency,
    resolve_backend,
)
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Edge, Graph, Vertex


@dataclass
class DeltaEffect:
    """The effect of applying one snapshot delta to a maintained core index.

    Attributes
    ----------
    increased:
        Vertices whose core number rose while applying the delta.
    decreased:
        Vertices whose core number fell while applying the delta.
    insertion_affected:
        The paper's ``VI``: vertices touched by the insertion phase whose core
        number is ``k - 1`` in the updated graph.
    deletion_affected:
        The paper's ``VR``: vertices touched by the deletion phase whose core
        number is ``k - 1`` in the updated graph.
    insertion_touched:
        Every vertex the insertion phase examined (endpoints of effective
        insertions, risen vertices and traversal-visited vertices) — recorded
        independently of ``k`` so long-lived consumers such as the streaming
        engine can invalidate derived state without fixing ``k`` up front.
    deletion_touched:
        Every vertex the deletion phase examined, symmetric to
        ``insertion_touched``.
    pre_update_core:
        Core number each touched vertex had *before* the delta (first-seen
        snapshot; vertices the delta created are recorded at their
        creation-time core 0, which correctly marks them as new at every
        ``k``).  Lets consumers reason about old-vs-new cores without copying
        the full core index.
    visited:
        Number of vertices visited by the maintenance traversals (used by the
        instrumentation figures).
    """

    increased: Set[Vertex] = field(default_factory=set)
    decreased: Set[Vertex] = field(default_factory=set)
    insertion_affected: Set[Vertex] = field(default_factory=set)
    deletion_affected: Set[Vertex] = field(default_factory=set)
    insertion_touched: Set[Vertex] = field(default_factory=set)
    deletion_touched: Set[Vertex] = field(default_factory=set)
    pre_update_core: Dict[Vertex, int] = field(default_factory=dict)
    visited: int = 0

    @property
    def affected(self) -> Set[Vertex]:
        """Union of the insertion- and deletion-affected vertex sets."""
        return self.insertion_affected | self.deletion_affected

    @property
    def touched(self) -> Set[Vertex]:
        """Every vertex examined by either maintenance phase (k-independent)."""
        return self.insertion_touched | self.deletion_touched

    @property
    def changed(self) -> Set[Vertex]:
        """Vertices whose core number actually moved (rose or fell)."""
        return self.increased | self.decreased


class CoreMaintainer:
    """Maintains core numbers of a graph under edge insertions and deletions."""

    def __init__(
        self,
        graph: Graph,
        copy_graph: bool = True,
        core: Optional[Dict[Vertex, int]] = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        """Wrap ``graph``; recompute core numbers unless ``core`` supplies them.

        ``core`` exists for checkpoint restore: a caller that persisted the
        maintained core numbers alongside the graph can resume without paying
        a fresh decomposition.  The values are trusted; :meth:`validate`
        cross-checks them on demand.  ``backend`` selects the traversal
        implementation (``"auto"`` resolves by initial graph size).
        """
        self._graph = graph.copy() if copy_graph else graph
        self._backend = resolve_backend(backend, self._graph.num_vertices)
        initial = dict(core) if core is not None else recompute_core_numbers(self._graph)
        if self._backend == BACKEND_COMPACT:
            self._mirror: Optional[DynamicCompactAdjacency] = (
                DynamicCompactAdjacency.from_graph(self._graph)
            )
            self._icore: List[int] = [
                initial.get(vertex, 0) for vertex in self._mirror.interner.vertices
            ]
            self._core: Optional[Dict[Vertex, int]] = None
        else:
            self._mirror = None
            self._icore = []
            self._core = initial
        self._visited_last = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The maintained graph (mutated in place by the update methods)."""
        return self._graph

    @property
    def backend(self) -> str:
        """The resolved execution backend (``"dict"`` or ``"compact"``)."""
        return self._backend

    def core_numbers(self) -> Dict[Vertex, int]:
        """Return a copy of the maintained core numbers."""
        if self._mirror is not None:
            # The interner's vertex list is kept in exact sync with the graph,
            # so zipping it against the core array avoids n hash lookups.
            return dict(zip(self._mirror.interner.vertices, self._icore))
        return dict(self._core)

    def core(self, vertex: Vertex) -> int:
        """Return the maintained core number of ``vertex``."""
        if self._mirror is not None:
            vid = self._mirror.interner.get_id(vertex)
            if vid < 0:
                raise KeyError(vertex)
            return self._icore[vid]
        return self._core[vertex]

    def _core_get(self, vertex: Vertex, default: Optional[int] = None) -> Optional[int]:
        """``dict.get``-style lookup that works on both backends."""
        if self._mirror is not None:
            vid = self._mirror.interner.get_id(vertex)
            return default if vid < 0 else self._icore[vid]
        return self._core.get(vertex, default)

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return ``{v : core(v) >= k}`` under the maintained core numbers."""
        if self._mirror is not None:
            return {
                vertex
                for vertex, value in zip(self._mirror.interner.vertices, self._icore)
                if value >= k
            }
        return {vertex for vertex, value in self._core.items() if value >= k}

    def shell_vertices(self, k: int) -> Set[Vertex]:
        """Return ``{v : core(v) == k}`` under the maintained core numbers."""
        if self._mirror is not None:
            return {
                vertex
                for vertex, value in zip(self._mirror.interner.vertices, self._icore)
                if value == k
            }
        return {vertex for vertex, value in self._core.items() if value == k}

    # ------------------------------------------------------------------
    # Single-edge updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Insert edge ``(u, v)`` and return the vertices whose core increased.

        Inserting an edge that already exists is a no-op returning the empty
        set.  New endpoints are added with core number updated from scratch
        locally (a fresh vertex starts at core 0 before the edge is counted).
        """
        for vertex in (u, v):
            if not self._graph.has_vertex(vertex):
                self._graph.add_vertex(vertex)
                if self._mirror is not None:
                    vid = self._mirror.ensure_vertex(vertex)
                    while len(self._icore) <= vid:
                        self._icore.append(0)
                else:
                    self._core[vertex] = 0
        if not self._graph.add_edge(u, v):
            return set()
        if self._mirror is not None:
            interner = self._mirror.interner
            u_id, v_id = interner.id_of(u), interner.id_of(v)
            self._mirror.add_edge_ids(u_id, v_id)
            return self._process_insertion_compact(u_id, v_id)
        return self._process_insertion(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Remove edge ``(u, v)`` and return the vertices whose core decreased.

        Removing an absent edge is a no-op returning the empty set.
        """
        if not self._graph.has_edge(u, v):
            return set()
        self._graph.remove_edge(u, v)
        if self._mirror is not None:
            interner = self._mirror.interner
            u_id, v_id = interner.id_of(u), interner.id_of(v)
            self._mirror.remove_edge_ids(u_id, v_id)
            return self._process_deletion_compact(u_id, v_id)
        return self._process_deletion(u, v)

    # ------------------------------------------------------------------
    # Batch updates
    # ------------------------------------------------------------------
    def insert_edges(self, edges: Iterable[Edge]) -> Set[Vertex]:
        """Insert every edge of ``edges`` in one pass.

        Returns the union of all vertices whose core number rose across the
        whole batch (computed while inserting — no second scan).
        """
        increased: Set[Vertex] = set()
        for u, v in edges:
            increased.update(self.insert_edge(u, v))
        return increased

    def remove_edges(self, edges: Iterable[Edge]) -> Set[Vertex]:
        """Remove every edge of ``edges`` in one pass.

        Returns the union of all vertices whose core number fell across the
        whole batch (computed while removing — no second scan).
        """
        decreased: Set[Vertex] = set()
        for u, v in edges:
            decreased.update(self.remove_edge(u, v))
        return decreased

    def apply_delta(self, delta: EdgeDelta, k: Optional[int] = None) -> DeltaEffect:
        """Apply one snapshot delta (insertions first, then deletions).

        When ``k`` is given, the returned :class:`DeltaEffect` also carries the
        ``VI`` / ``VR`` candidate pools for that ``k`` (vertices touched by the
        respective phase whose updated core number is ``k - 1``).  The
        k-independent ``touched`` sets are always recorded, counting only
        *effective* operations — inserting a present edge or removing an
        absent one leaves no trace, so consumers can treat an empty ``touched``
        as "the graph did not change".
        """
        if k is not None and k < 1:
            raise ParameterError("k must be >= 1 when requesting affected pools")
        effect = DeltaEffect()
        if delta.is_empty():
            return effect

        pre_core = effect.pre_update_core
        for u, v in delta.inserted:
            if self._graph.has_edge(u, v):
                continue
            for endpoint in (u, v):
                if endpoint not in pre_core:
                    value = self._core_get(endpoint)
                    if value is not None:
                        pre_core[endpoint] = value
            increased = self.insert_edge(u, v)
            for vertex in self._visited_vertices_last:
                if vertex not in pre_core:
                    # An insertion raises a risen vertex by exactly 1.
                    pre_core[vertex] = self.core(vertex) - (1 if vertex in increased else 0)
            effect.increased |= increased
            effect.insertion_touched.update((u, v))
            effect.insertion_touched |= increased
            effect.insertion_touched |= self._visited_vertices_last
            effect.visited += self._visited_last

        for u, v in delta.removed:
            if not self._graph.has_edge(u, v):
                continue
            for endpoint in (u, v):
                if endpoint not in pre_core:
                    pre_core[endpoint] = self.core(endpoint)
            decreased = self.remove_edge(u, v)
            for vertex in self._visited_vertices_last:
                if vertex not in pre_core:
                    # A deletion lowers a dropped vertex by exactly 1.
                    pre_core[vertex] = self.core(vertex) + (1 if vertex in decreased else 0)
            effect.decreased |= decreased
            effect.deletion_touched.update((u, v))
            effect.deletion_touched |= decreased
            effect.deletion_touched |= self._visited_vertices_last
            effect.visited += self._visited_last

        if k is not None:
            target = k - 1
            effect.insertion_affected = {
                vertex for vertex in effect.insertion_touched if self._core_get(vertex) == target
            }
            effect.deletion_affected = {
                vertex for vertex in effect.deletion_touched if self._core_get(vertex) == target
            }
        return effect

    def refresh_from_graph(self) -> None:
        """Recompute all core numbers from the current graph state.

        Used when a caller mutates the maintained graph wholesale (e.g. a
        snapshot delta so large that per-edge maintenance would cost more than
        one fresh decomposition — the situation the paper describes for
        high-churn snapshots).  In compact mode the integer mirror is rebuilt
        alongside (the caller may have added or removed arbitrary edges).
        """
        fresh = recompute_core_numbers(self._graph)
        if self._mirror is not None:
            self._mirror = DynamicCompactAdjacency.from_graph(self._graph)
            self._icore = [
                fresh.get(vertex, 0) for vertex in self._mirror.interner.vertices
            ]
        else:
            self._core = fresh
        self._visited_last = 0
        self._visited_vertices_last = set()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Recompute core numbers from scratch and raise on any divergence."""
        fresh = recompute_core_numbers(self._graph)
        maintained = self.core_numbers()
        if fresh != maintained:
            differing = {
                vertex: (maintained.get(vertex), fresh.get(vertex))
                for vertex in set(fresh) | set(maintained)
                if maintained.get(vertex) != fresh.get(vertex)
            }
            raise InvariantViolationError(
                f"maintained core numbers diverged from recomputation: {differing}"
            )

    # ------------------------------------------------------------------
    # Insertion traversal (Lemmas 1-2)
    # ------------------------------------------------------------------
    def _process_insertion(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        core = self._core
        root_core = min(core[u], core[v])
        roots = [w for w in (u, v) if core[w] == root_core]

        # Subcore: shell-root_core vertices reachable from the roots through
        # shell-root_core vertices.  Only these can rise, and by at most 1.
        candidates: Set[Vertex] = set()
        stack: List[Vertex] = []
        for root in roots:
            if root not in candidates:
                candidates.add(root)
                stack.append(root)
        while stack:
            current = stack.pop()
            for neighbour in self._graph.neighbors(current):
                if core[neighbour] == root_core and neighbour not in candidates:
                    candidates.add(neighbour)
                    stack.append(neighbour)

        # Eviction: a candidate can rise only if it keeps more than root_core
        # neighbours among (higher-core vertices ∪ surviving candidates).
        support: Dict[Vertex, int] = {}
        for candidate in candidates:
            support[candidate] = sum(
                1
                for neighbour in self._graph.neighbors(candidate)
                if core[neighbour] > root_core or neighbour in candidates
            )
        evict_queue = [w for w, s in support.items() if s <= root_core]
        evicted: Set[Vertex] = set()
        while evict_queue:
            w = evict_queue.pop()
            if w in evicted:
                continue
            evicted.add(w)
            for neighbour in self._graph.neighbors(w):
                if neighbour in candidates and neighbour not in evicted:
                    support[neighbour] -= 1
                    if support[neighbour] <= root_core:
                        evict_queue.append(neighbour)

        increased = candidates - evicted
        for w in increased:
            core[w] = root_core + 1
        self._visited_last = len(candidates)
        self._visited_vertices_last = set(candidates)
        return increased

    def _process_insertion_compact(self, u_id: int, v_id: int) -> Set[Vertex]:
        icore = self._icore
        adj = self._mirror.adj
        root_core = min(icore[u_id], icore[v_id])
        roots = [w for w in (u_id, v_id) if icore[w] == root_core]

        candidates: Set[int] = set()
        stack: List[int] = []
        for root in roots:
            if root not in candidates:
                candidates.add(root)
                stack.append(root)
        while stack:
            current = stack.pop()
            for neighbour in adj[current]:
                if icore[neighbour] == root_core and neighbour not in candidates:
                    candidates.add(neighbour)
                    stack.append(neighbour)

        support: Dict[int, int] = {}
        for candidate in candidates:
            support[candidate] = sum(
                1
                for neighbour in adj[candidate]
                if icore[neighbour] > root_core or neighbour in candidates
            )
        evict_queue = [w for w, s in support.items() if s <= root_core]
        evicted: Set[int] = set()
        while evict_queue:
            w = evict_queue.pop()
            if w in evicted:
                continue
            evicted.add(w)
            for neighbour in adj[w]:
                if neighbour in candidates and neighbour not in evicted:
                    support[neighbour] -= 1
                    if support[neighbour] <= root_core:
                        evict_queue.append(neighbour)

        increased_ids = candidates - evicted
        risen = root_core + 1
        for w in increased_ids:
            icore[w] = risen
        vertices = self._mirror.interner.vertices
        self._visited_last = len(candidates)
        self._visited_vertices_last = {vertices[w] for w in candidates}
        return {vertices[w] for w in increased_ids}

    # ------------------------------------------------------------------
    # Deletion cascade (Lemmas 3-4)
    # ------------------------------------------------------------------
    def _process_deletion(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        core = self._core
        root_core = min(core[u], core[v])
        visited: Set[Vertex] = set()

        # Support of a shell-root_core vertex: neighbours with core >= root_core
        # (its max core degree).  A vertex drops when support falls below core.
        support: Dict[Vertex, int] = {}

        def compute_support(w: Vertex) -> int:
            return sum(1 for x in self._graph.neighbors(w) if core[x] >= root_core)

        dropped: Set[Vertex] = set()
        queue: List[Vertex] = []
        for w in (u, v):
            if core[w] == root_core and w not in dropped:
                visited.add(w)
                support[w] = compute_support(w)
                if support[w] < root_core:
                    dropped.add(w)
                    queue.append(w)

        while queue:
            w = queue.pop()
            # Visit neighbours before lowering core(w): their lazily computed
            # support still counts w, and the explicit decrement below then
            # accounts for w exactly once.
            for x in self._graph.neighbors(w):
                if core[x] != root_core or x in dropped:
                    continue
                visited.add(x)
                if x not in support:
                    support[x] = compute_support(x)
                # ``w`` no longer counts towards x's support.
                support[x] -= 1
                if support[x] < root_core:
                    dropped.add(x)
                    queue.append(x)
            core[w] = root_core - 1

        self._visited_last = len(visited)
        self._visited_vertices_last = visited
        return dropped

    def _process_deletion_compact(self, u_id: int, v_id: int) -> Set[Vertex]:
        icore = self._icore
        adj = self._mirror.adj
        root_core = min(icore[u_id], icore[v_id])
        visited: Set[int] = set()

        support: Dict[int, int] = {}

        def compute_support(w: int) -> int:
            return sum(1 for x in adj[w] if icore[x] >= root_core)

        dropped: Set[int] = set()
        queue: List[int] = []
        for w in (u_id, v_id):
            if icore[w] == root_core and w not in dropped:
                visited.add(w)
                support[w] = compute_support(w)
                if support[w] < root_core:
                    dropped.add(w)
                    queue.append(w)

        while queue:
            w = queue.pop()
            for x in adj[w]:
                if icore[x] != root_core or x in dropped:
                    continue
                visited.add(x)
                if x not in support:
                    support[x] = compute_support(x)
                support[x] -= 1
                if support[x] < root_core:
                    dropped.add(x)
                    queue.append(x)
            icore[w] = root_core - 1

        vertices = self._mirror.interner.vertices
        self._visited_last = len(visited)
        self._visited_vertices_last = {vertices[w] for w in visited}
        return {vertices[w] for w in dropped}

    # Default values so apply_delta can read them even before any update ran.
    _visited_vertices_last: Set[Vertex] = frozenset()  # type: ignore[assignment]
    _visited_last: int = 0
