"""Core decomposition (Algorithm 1 of the paper) and anchored variants.

The k-core of a graph is its maximal subgraph in which every vertex has degree
at least ``k`` (Definition 1); the core number of a vertex is the largest ``k``
for which it belongs to the k-core (Definition 2).  This module implements the
classic peeling algorithm (repeatedly remove a minimum-degree vertex), which
also yields the vertex removal order that seeds the K-order index of
Section 4.1.

It additionally implements *anchored* core decomposition: the same peeling
process in which a designated anchor set is never removed (anchored vertices
"meet the requirement of k-core regardless of the degree constraint",
Section 2.1).  Anchored vertices receive the core value
:data:`ANCHOR_CORE` (infinity).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from repro.errors import ParameterError
from repro.graph.static import Graph, Vertex

#: Core value assigned to anchored vertices — they can never be peeled.
ANCHOR_CORE: float = math.inf


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a (possibly anchored) core decomposition.

    Attributes
    ----------
    core:
        Mapping from vertex to core number.  Anchored vertices map to
        :data:`ANCHOR_CORE`.
    order:
        The removal order: vertices in the order the peeling process deleted
        them (anchored vertices, which are never deleted, appear last in a
        deterministic order).
    anchors:
        The anchor set used for the decomposition (empty for the plain case).
    """

    core: Mapping[Vertex, float]
    order: Tuple[Vertex, ...]
    anchors: FrozenSet[Vertex] = frozenset()

    def core_of(self, vertex: Vertex) -> float:
        """Return the core number of ``vertex``."""
        return self.core[vertex]

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return the vertices of the k-core (anchors always qualify)."""
        return {vertex for vertex, value in self.core.items() if value >= k}

    def shell_vertices(self, k: int) -> Set[Vertex]:
        """Return the k-shell: vertices with core number exactly ``k``."""
        return {vertex for vertex, value in self.core.items() if value == k}

    def shells(self) -> Dict[int, List[Vertex]]:
        """Return ``{core value: vertices in removal order}`` for finite cores."""
        grouped: Dict[int, List[Vertex]] = {}
        for vertex in self.order:
            value = self.core[vertex]
            if value == ANCHOR_CORE:
                continue
            grouped.setdefault(int(value), []).append(vertex)
        return grouped

    def degeneracy(self) -> int:
        """Return the largest finite core number (0 for an empty graph)."""
        finite = [int(value) for value in self.core.values() if value != ANCHOR_CORE]
        return max(finite, default=0)


def _sort_key(vertex: Vertex) -> Tuple[str, str]:
    """Deterministic tie-breaking key for heterogeneous vertex identifiers."""
    return (type(vertex).__name__, repr(vertex))


def core_decomposition(graph: Graph) -> CoreDecomposition:
    """Run core decomposition on ``graph``.

    Vertices of equal current degree are peeled in a deterministic order so
    repeated runs produce identical removal orders.  Complexity is
    O(m log n) with the lazy-deletion heap used here, which is more than fast
    enough for the pure-Python experiment scale.
    """
    return anchored_core_decomposition(graph, anchors=())


def anchored_core_decomposition(graph: Graph, anchors: Iterable[Vertex]) -> CoreDecomposition:
    """Run core decomposition in which ``anchors`` are never removed.

    Anchored vertices still contribute to their neighbours' degrees throughout
    the peeling, which is exactly the anchored k-core semantics of
    Definition 4: the anchored k-core for any ``k`` is
    ``{v : core(v) >= k}`` with anchors mapped to infinity.
    """
    anchor_set = frozenset(anchors)
    for anchor in anchor_set:
        if not graph.has_vertex(anchor):
            raise ParameterError(f"anchor {anchor!r} is not a vertex of the graph")

    effective: Dict[Vertex, int] = {}
    heap: List[Tuple[int, Tuple[str, str], Vertex]] = []
    for vertex in graph.vertices():
        if vertex in anchor_set:
            continue
        degree = graph.degree(vertex)
        effective[vertex] = degree
        heap.append((degree, _sort_key(vertex), vertex))
    heapq.heapify(heap)

    core: Dict[Vertex, float] = {}
    order: List[Vertex] = []
    removed: Set[Vertex] = set()
    current_core = 0
    while heap:
        degree, _, vertex = heapq.heappop(heap)
        if vertex in removed:
            continue
        if degree != effective[vertex]:
            # Stale heap entry: the true (smaller) degree entry is still queued.
            continue
        current_core = max(current_core, degree)
        core[vertex] = current_core
        order.append(vertex)
        removed.add(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in anchor_set or neighbour in removed:
                continue
            effective[neighbour] -= 1
            heapq.heappush(heap, (effective[neighbour], _sort_key(neighbour), neighbour))

    for anchor in sorted(anchor_set, key=_sort_key):
        core[anchor] = ANCHOR_CORE
        order.append(anchor)
    return CoreDecomposition(core=core, order=tuple(order), anchors=anchor_set)


def core_numbers(graph: Graph) -> Dict[Vertex, int]:
    """Return ``{vertex: core number}`` with plain integer values."""
    decomposition = core_decomposition(graph)
    return {vertex: int(value) for vertex, value in decomposition.core.items()}


def k_core(graph: Graph, k: int) -> Set[Vertex]:
    """Return the vertex set of the k-core of ``graph``.

    Implemented as a direct peeling cascade, which is faster than a full
    decomposition when only a single ``k`` is needed.
    """
    if k < 0:
        raise ParameterError("k must be non-negative")
    degrees = {vertex: graph.degree(vertex) for vertex in graph.vertices()}
    removed: Set[Vertex] = set()
    queue = [vertex for vertex, degree in degrees.items() if degree < k]
    while queue:
        vertex = queue.pop()
        if vertex in removed:
            continue
        removed.add(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in removed:
                continue
            degrees[neighbour] -= 1
            if degrees[neighbour] < k:
                queue.append(neighbour)
    return {vertex for vertex in degrees if vertex not in removed}


def k_shell(graph: Graph, k: int) -> Set[Vertex]:
    """Return the k-shell of ``graph`` (vertices whose core number equals ``k``)."""
    decomposition = core_decomposition(graph)
    return decomposition.shell_vertices(k)


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy of ``graph`` (its largest non-empty core index)."""
    return core_decomposition(graph).degeneracy()
