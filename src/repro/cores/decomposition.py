"""Core decomposition (Algorithm 1 of the paper) and anchored variants.

The k-core of a graph is its maximal subgraph in which every vertex has degree
at least ``k`` (Definition 1); the core number of a vertex is the largest ``k``
for which it belongs to the k-core (Definition 2).  This module implements the
classic peeling algorithm (repeatedly remove a minimum-degree vertex), which
also yields the vertex removal order that seeds the K-order index of
Section 4.1.

It additionally implements *anchored* core decomposition: the same peeling
process in which a designated anchor set is never removed (anchored vertices
"meet the requirement of k-core regardless of the degree constraint",
Section 2.1).  Anchored vertices receive the core value
:data:`ANCHOR_CORE` (infinity).

Execution is dispatched through the :mod:`repro.backends` registry: every
function here accepts ``backend=`` (a registered name, ``"auto"``, or an
:class:`~repro.backends.ExecutionBackend` instance) and calls the resolved
backend's kernel.  All registered backends produce *identical* core numbers
**and** identical removal orders — the compact/numpy/numba snapshots intern
vertices in tie-break order so the integer id doubles as the deterministic
tie-break rank, and the numba tier's compiled packed-heap peel pops the same
unique ascending keys as the :mod:`heapq` reference here.  This module also
hosts the flat integer-array kernel primitives (:func:`compact_peel`,
:func:`compact_k_core_ids`) that the compact backend is built from.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    MutableSequence,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.backends import (
    BACKEND_AUTO,
    WORKLOAD_AMORTIZED,
    WORKLOAD_ONE_SHOT,
    ExecutionBackend,
    get_backend,
)
from repro.errors import ParameterError
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph, Vertex

#: Core value assigned to anchored vertices — they can never be peeled.
ANCHOR_CORE: float = math.inf


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a (possibly anchored) core decomposition.

    Attributes
    ----------
    core:
        Mapping from vertex to core number.  Anchored vertices map to
        :data:`ANCHOR_CORE`.
    order:
        The removal order: vertices in the order the peeling process deleted
        them (anchored vertices, which are never deleted, appear last in a
        deterministic order).
    anchors:
        The anchor set used for the decomposition (empty for the plain case).
    """

    core: Mapping[Vertex, float]
    order: Tuple[Vertex, ...]
    anchors: FrozenSet[Vertex] = frozenset()

    def core_of(self, vertex: Vertex) -> float:
        """Return the core number of ``vertex``."""
        return self.core[vertex]

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return the vertices of the k-core (anchors always qualify)."""
        return {vertex for vertex, value in self.core.items() if value >= k}

    def shell_vertices(self, k: int) -> Set[Vertex]:
        """Return the k-shell: vertices with core number exactly ``k``."""
        return {vertex for vertex, value in self.core.items() if value == k}

    def shells(self) -> Dict[int, List[Vertex]]:
        """Return ``{core value: vertices in removal order}`` for finite cores."""
        grouped: Dict[int, List[Vertex]] = {}
        for vertex in self.order:
            value = self.core[vertex]
            if value == ANCHOR_CORE:
                continue
            grouped.setdefault(int(value), []).append(vertex)
        return grouped

    def degeneracy(self) -> int:
        """Return the largest finite core number (0 for an empty graph)."""
        finite = [int(value) for value in self.core.values() if value != ANCHOR_CORE]
        return max(finite, default=0)


def core_decomposition(
    graph: Graph, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> CoreDecomposition:
    """Run core decomposition on ``graph``.

    Vertices of equal current degree are peeled in a deterministic order so
    repeated runs produce identical removal orders.  The dict backend's
    lazy-deletion heap is O(m log n), more than fast enough for the
    pure-Python experiment scale; the compact and numpy backends run the
    same peeling over flat int / numpy arrays.
    """
    return anchored_core_decomposition(graph, anchors=(), backend=backend)


def anchored_core_decomposition(
    graph: Graph,
    anchors: Iterable[Vertex],
    backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
) -> CoreDecomposition:
    """Run core decomposition in which ``anchors`` are never removed.

    Anchored vertices still contribute to their neighbours' degrees throughout
    the peeling, which is exactly the anchored k-core semantics of
    Definition 4: the anchored k-core for any ``k`` is
    ``{v : core(v) >= k}`` with anchors mapped to infinity.  Every registered
    backend produces the same mapping and the same removal order.
    """
    anchor_set = frozenset(anchors)
    for anchor in anchor_set:
        if not graph.has_vertex(anchor):
            raise ParameterError(f"anchor {anchor!r} is not a vertex of the graph")
    return get_backend(
        backend, graph.num_vertices, workload=WORKLOAD_AMORTIZED
    ).decompose(graph, anchor_set)


# ---------------------------------------------------------------------------
# Compact (flat integer-array) kernels
# ---------------------------------------------------------------------------
def compact_peel(
    cgraph: CompactGraph, anchor_ids: Iterable[int] = ()
) -> Tuple[List[float], List[int]]:
    """Peel a compact snapshot; return ``(core values, removal order)`` by id.

    ``cgraph`` must be *ordered* (id == tie-break rank) so that the packed
    single-int heap entries ``degree * n + id`` reproduce the dict backend's
    deterministic removal order exactly.  Anchored ids receive
    :data:`ANCHOR_CORE` and are appended to the order last, sorted by id.
    """
    if not cgraph.ordered:
        raise ParameterError("compact_peel requires an ordered CompactGraph")
    n = cgraph.num_vertices
    core: List[float] = [0] * n
    order: List[int] = []
    if n == 0:
        return core, order

    indptr = cgraph.indptr
    indices = cgraph.indices
    effective = list(cgraph.degrees)
    is_anchor = bytearray(n)
    for anchor_id in anchor_ids:
        is_anchor[anchor_id] = 1
    removed = bytearray(n)

    heap = [effective[vid] * n + vid for vid in range(n) if not is_anchor[vid]]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop

    current_core = 0
    while heap:
        entry = heappop(heap)
        degree, vid = divmod(entry, n)
        if removed[vid] or degree != effective[vid]:
            continue
        if degree > current_core:
            current_core = degree
        core[vid] = current_core
        order.append(vid)
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if is_anchor[neighbour] or removed[neighbour]:
                continue
            slack = effective[neighbour] - 1
            effective[neighbour] = slack
            heappush(heap, slack * n + neighbour)

    for vid in range(n):
        if is_anchor[vid]:
            core[vid] = ANCHOR_CORE
            order.append(vid)
    return core, order


def build_shell_index(items: Iterable[Tuple[object, float]]) -> Dict[float, Set[object]]:
    """``{core value: member set}`` from ``(member, core value)`` pairs.

    The shell index behind the kernels' O(#levels)/O(|shell|) size queries;
    rebuilt on every full refresh and patched by :func:`apply_shell_moves`
    on incremental commits.
    """
    shells: Dict[float, Set[object]] = {}
    for member, value in items:
        members = shells.get(value)
        if members is None:
            members = shells[value] = set()
        members.add(member)
    return shells


def apply_shell_moves(shells, touched, core) -> None:
    """Move every touched member from its old shell to its current one.

    ``touched`` is the ``[(member, old core value)]`` list an incremental
    commit returns, ``core`` the already-updated core lookup (mapping or
    id-indexed array).  Emptied shells are dropped so iteration over the
    index never visits dead levels.
    """
    for member, old in touched:
        members = shells.get(old)
        if members is not None:
            members.discard(member)
            if not members:
                del shells[old]
        value = core[member]
        members = shells.get(value)
        if members is None:
            members = shells[value] = set()
        members.add(member)


def _region_risers(
    indptr: Sequence[int],
    indices: Sequence[int],
    core: Sequence[float],
    anchor_id: int,
    j: int,
) -> Set[int]:
    """Vertices of (old) shell ``j - 1`` that the new anchor lifts into the
    anchored j-core: the region-restricted survival cascade of
    :func:`repro.anchored.followers.compact_marginal_followers`, without the
    instrumentation (this is index maintenance, not candidate evaluation)."""
    target = j - 1
    region: Set[int] = set()
    stack: List[int] = []
    for position in range(indptr[anchor_id], indptr[anchor_id + 1]):
        neighbour = indices[position]
        if core[neighbour] == target and neighbour not in region:
            region.add(neighbour)
            stack.append(neighbour)
    while stack:
        current = stack.pop()
        for position in range(indptr[current], indptr[current + 1]):
            neighbour = indices[position]
            if (
                core[neighbour] == target
                and neighbour not in region
                and neighbour != anchor_id
            ):
                region.add(neighbour)
                stack.append(neighbour)
    if not region:
        return region

    support: Dict[int, int] = {}
    for vid in region:
        count = 0
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour == anchor_id:
                count += 1
            elif core[neighbour] >= j:
                count += 1
            elif neighbour in region:
                count += 1
        support[vid] = count
    removal_queue = [vid for vid, count in support.items() if count < j]
    removed: Set[int] = set()
    while removal_queue:
        vid = removal_queue.pop()
        if vid in removed:
            continue
        removed.add(vid)
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if neighbour in region and neighbour not in removed:
                support[neighbour] -= 1
                if support[neighbour] < j:
                    removal_queue.append(neighbour)
    return region - removed


def _shell_order_ids(
    indptr: Sequence[int],
    indices: Sequence[int],
    core: Sequence[float],
    members: List[int],
    level: int,
) -> List[int]:
    """Removal order within one shell (the Phase-B reconstruction).

    With core numbers fixed, the reference heap peel's order restricted to
    shell ``level`` is reproduced by a packed-heap cascade over the
    same-shell subgraph: members ascend by id (id == tie-break rank on
    ordered snapshots), each starts at its count of ``core >= level``
    neighbours (anchors are infinity and count), and only same-shell
    removals decrement — the invariant the numpy and sharded backends
    already build their whole order reconstruction on.
    """
    size = len(members)
    position = {vid: local for local, vid in enumerate(members)}
    eff_local = [0] * size
    adjacency: List[List[int]] = [[] for _ in range(size)]
    for local, vid in enumerate(members):
        count = 0
        for slot in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[slot]
            if core[neighbour] >= level:
                count += 1
            if core[neighbour] == level:
                neighbour_local = position.get(neighbour)
                if neighbour_local is not None:
                    adjacency[local].append(neighbour_local)
        eff_local[local] = count

    heap = [eff_local[local] * size + local for local in range(size)]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop
    popped = bytearray(size)
    shell_order: List[int] = []
    while heap:
        entry = heappop(heap)
        degree, local = divmod(entry, size)
        if popped[local] or degree != eff_local[local]:
            continue
        popped[local] = 1
        shell_order.append(members[local])
        for neighbour in adjacency[local]:
            if not popped[neighbour]:
                slack = eff_local[neighbour] - 1
                eff_local[neighbour] = slack
                heappush(heap, slack * size + neighbour)
    return shell_order


def incremental_anchor_commit(
    indptr: Sequence[int],
    indices: Sequence[int],
    core: MutableSequence[float],
    rank: MutableSequence[int],
    order: List[int],
    new_anchor_id: int,
) -> List[Tuple[int, float]]:
    """Apply one anchor commit to existing peel state, touching only the
    affected region — the incremental path behind
    :meth:`CoreIndexKernel.commit_anchor` for the id-array kernels (compact
    and numpy; ``core``/``rank`` may be plain lists or numpy arrays).

    **Core numbers.**  For a *single* added anchor every core rise is exactly
    ``+1``, and the risers at level ``j`` are exactly the anchor's level-``j``
    followers: a level-``j`` follower has old core ``j - 1`` (the single-
    anchor shell lemma behind :func:`repro.anchored.followers.marginal_followers`),
    so a vertex can rise at only one level, and the riser sets are computed
    independently on the *old* core numbers by one region-restricted cascade
    per level ``j - 1 ∈ {core(u) : u ∈ N(anchor), core(u) >= core(anchor)}``
    (other levels provably gain nothing: below, the anchor was already in
    the j-core; above, the anchor has no shell-``(j-1)`` neighbour to seed a
    region).

    **Removal order.**  With the new core numbers fixed, the reference heap
    peel's order is the ascending concatenation of per-shell cascades over
    same-shell subgraphs (the Phase-B invariant of the numpy and sharded
    backends).  A shell's internal order can change only if its membership
    changed (it gained or lost a riser or the anchor) or a member's starting
    degree changed (a neighbour's core value crossed the shell level — for a
    ``+1`` riser from ``a`` that is only shell ``a + 1``; for the anchor,
    finite → infinity, every shell above its old core that contains one of
    its neighbours).  Exactly those *affected shells* are re-cascaded;
    every other shell keeps its old subsequence verbatim, and the global
    rank array is renumbered in one O(n) pass.

    Mutates ``core``, ``rank`` and ``order`` so they equal a full
    :func:`compact_peel` with the enlarged anchor set, and returns
    ``[(vertex id, previous core value)]`` for every vertex whose core
    number changed (the new anchor included, finite → infinity).
    """
    x = new_anchor_id
    anchor_core = core[x]

    # Candidate levels and order-affected shells, read off the OLD state.
    levels: Set[int] = set()
    affected: Set[float] = {anchor_core}
    for position in range(indptr[x], indptr[x + 1]):
        value = core[indices[position]]
        if value == ANCHOR_CORE:
            continue
        if value >= anchor_core:
            levels.add(int(value) + 1)
        if value > anchor_core:
            # The anchor's own rise (finite -> infinity) crosses this
            # neighbour's shell level, changing its starting degree there.
            affected.add(value)

    touched: List[Tuple[int, float]] = [(x, anchor_core)]
    risers_by_level: Dict[int, Set[int]] = {}
    for j in levels:
        risers = _region_risers(indptr, indices, core, x, j)
        if risers:
            risers_by_level[j] = risers
            affected.add(j - 1)
            affected.add(j)
            touched.extend((vid, float(j - 1)) for vid in risers)

    # All riser cascades read the old core numbers (level independence: a
    # level-j cascade never tests a value a +1 rise at another level could
    # flip), so the writes happen only now.
    for j, risers in risers_by_level.items():
        for vid in risers:
            core[vid] = j
    core[x] = ANCHOR_CORE

    # Rebuild the order: one walk buckets every finite vertex by NEW core,
    # preserving the old within-shell sequence; affected shells are
    # re-cascaded, anchors tail ascending by id (id == tie-break rank).
    buckets: Dict[float, List[int]] = {}
    anchor_tail: List[int] = []
    for vid in order:
        value = core[vid]
        if value == ANCHOR_CORE:
            anchor_tail.append(vid)
        else:
            bucket = buckets.get(value)
            if bucket is None:
                bucket = buckets[value] = []
            bucket.append(vid)
    anchor_tail.sort()

    for level in affected:
        bucket = buckets.get(level)
        if not bucket:
            continue
        bucket.sort()
        buckets[level] = _shell_order_ids(indptr, indices, core, bucket, level)

    new_order: List[int] = []
    for level in sorted(buckets):
        new_order.extend(buckets[level])
    new_order.extend(anchor_tail)
    order[:] = new_order
    for position, vid in enumerate(order):
        rank[vid] = position
    return touched


def compact_k_core_ids(
    cgraph: CompactGraph, k: int, anchor_ids: Iterable[int] = ()
) -> Set[int]:
    """Return the (anchored) k-core of a compact snapshot as a set of ids.

    Runs the direct O(n + m) deletion cascade over the flat arrays; anchored
    ids are never removed.  Works on ordered and unordered snapshots alike
    (the result is an order-independent set).
    """
    n = cgraph.num_vertices
    indptr = cgraph.indptr
    indices = cgraph.indices
    degrees = list(cgraph.degrees)
    is_anchor = bytearray(n)
    for anchor_id in anchor_ids:
        is_anchor[anchor_id] = 1
    removed = bytearray(n)
    queue = [vid for vid in range(n) if degrees[vid] < k and not is_anchor[vid]]
    while queue:
        vid = queue.pop()
        if removed[vid]:
            continue
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if removed[neighbour] or is_anchor[neighbour]:
                continue
            degrees[neighbour] -= 1
            if degrees[neighbour] < k:
                queue.append(neighbour)
    return {vid for vid in range(n) if not removed[vid]}


def core_numbers(
    graph: Graph, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> Dict[Vertex, int]:
    """Return ``{vertex: core number}`` with plain integer values."""
    decomposition = core_decomposition(graph, backend=backend)
    return {vertex: int(value) for vertex, value in decomposition.core.items()}


def k_core(
    graph: Graph, k: int, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> Set[Vertex]:
    """Return the vertex set of the k-core of ``graph``.

    Implemented as a direct peeling cascade, which is faster than a full
    decomposition when only a single ``k`` is needed.  The default
    ``"auto"`` policy is workload-aware (see :mod:`repro.backends.registry`):
    a one-shot cascade cannot amortise building a snapshot, so ``auto``
    resolves to the dict backend at any size.  Consumers that hold a
    reusable snapshot — e.g.
    :class:`~repro.anchored.anchored_core.AnchoredCoreIndex` — run the
    snapshot-native cascade through their backend kernel instead.
    """
    if k < 0:
        raise ParameterError("k must be non-negative")
    return get_backend(backend, graph.num_vertices, workload=WORKLOAD_ONE_SHOT).k_core(
        graph, k
    )


def k_shell(
    graph: Graph, k: int, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> Set[Vertex]:
    """Return the k-shell of ``graph`` (vertices whose core number equals ``k``)."""
    decomposition = core_decomposition(graph, backend=backend)
    return decomposition.shell_vertices(k)


def degeneracy(
    graph: Graph, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> int:
    """Return the degeneracy of ``graph`` (its largest non-empty core index)."""
    return core_decomposition(graph, backend=backend).degeneracy()
