"""Core decomposition (Algorithm 1 of the paper) and anchored variants.

The k-core of a graph is its maximal subgraph in which every vertex has degree
at least ``k`` (Definition 1); the core number of a vertex is the largest ``k``
for which it belongs to the k-core (Definition 2).  This module implements the
classic peeling algorithm (repeatedly remove a minimum-degree vertex), which
also yields the vertex removal order that seeds the K-order index of
Section 4.1.

It additionally implements *anchored* core decomposition: the same peeling
process in which a designated anchor set is never removed (anchored vertices
"meet the requirement of k-core regardless of the degree constraint",
Section 2.1).  Anchored vertices receive the core value
:data:`ANCHOR_CORE` (infinity).

Execution is dispatched through the :mod:`repro.backends` registry: every
function here accepts ``backend=`` (a registered name, ``"auto"``, or an
:class:`~repro.backends.ExecutionBackend` instance) and calls the resolved
backend's kernel.  All registered backends produce *identical* core numbers
**and** identical removal orders — the compact/numpy snapshots intern
vertices in tie-break order so the integer id doubles as the deterministic
tie-break rank.  This module also hosts the flat integer-array kernel
primitives (:func:`compact_peel`, :func:`compact_k_core_ids`) that the
compact backend is built from.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple, Union

from repro.backends import (
    BACKEND_AUTO,
    WORKLOAD_AMORTIZED,
    WORKLOAD_ONE_SHOT,
    ExecutionBackend,
    get_backend,
)
from repro.errors import ParameterError
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph, Vertex

#: Core value assigned to anchored vertices — they can never be peeled.
ANCHOR_CORE: float = math.inf


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a (possibly anchored) core decomposition.

    Attributes
    ----------
    core:
        Mapping from vertex to core number.  Anchored vertices map to
        :data:`ANCHOR_CORE`.
    order:
        The removal order: vertices in the order the peeling process deleted
        them (anchored vertices, which are never deleted, appear last in a
        deterministic order).
    anchors:
        The anchor set used for the decomposition (empty for the plain case).
    """

    core: Mapping[Vertex, float]
    order: Tuple[Vertex, ...]
    anchors: FrozenSet[Vertex] = frozenset()

    def core_of(self, vertex: Vertex) -> float:
        """Return the core number of ``vertex``."""
        return self.core[vertex]

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return the vertices of the k-core (anchors always qualify)."""
        return {vertex for vertex, value in self.core.items() if value >= k}

    def shell_vertices(self, k: int) -> Set[Vertex]:
        """Return the k-shell: vertices with core number exactly ``k``."""
        return {vertex for vertex, value in self.core.items() if value == k}

    def shells(self) -> Dict[int, List[Vertex]]:
        """Return ``{core value: vertices in removal order}`` for finite cores."""
        grouped: Dict[int, List[Vertex]] = {}
        for vertex in self.order:
            value = self.core[vertex]
            if value == ANCHOR_CORE:
                continue
            grouped.setdefault(int(value), []).append(vertex)
        return grouped

    def degeneracy(self) -> int:
        """Return the largest finite core number (0 for an empty graph)."""
        finite = [int(value) for value in self.core.values() if value != ANCHOR_CORE]
        return max(finite, default=0)


def core_decomposition(
    graph: Graph, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> CoreDecomposition:
    """Run core decomposition on ``graph``.

    Vertices of equal current degree are peeled in a deterministic order so
    repeated runs produce identical removal orders.  The dict backend's
    lazy-deletion heap is O(m log n), more than fast enough for the
    pure-Python experiment scale; the compact and numpy backends run the
    same peeling over flat int / numpy arrays.
    """
    return anchored_core_decomposition(graph, anchors=(), backend=backend)


def anchored_core_decomposition(
    graph: Graph,
    anchors: Iterable[Vertex],
    backend: Union[str, ExecutionBackend] = BACKEND_AUTO,
) -> CoreDecomposition:
    """Run core decomposition in which ``anchors`` are never removed.

    Anchored vertices still contribute to their neighbours' degrees throughout
    the peeling, which is exactly the anchored k-core semantics of
    Definition 4: the anchored k-core for any ``k`` is
    ``{v : core(v) >= k}`` with anchors mapped to infinity.  Every registered
    backend produces the same mapping and the same removal order.
    """
    anchor_set = frozenset(anchors)
    for anchor in anchor_set:
        if not graph.has_vertex(anchor):
            raise ParameterError(f"anchor {anchor!r} is not a vertex of the graph")
    return get_backend(
        backend, graph.num_vertices, workload=WORKLOAD_AMORTIZED
    ).decompose(graph, anchor_set)


# ---------------------------------------------------------------------------
# Compact (flat integer-array) kernels
# ---------------------------------------------------------------------------
def compact_peel(
    cgraph: CompactGraph, anchor_ids: Iterable[int] = ()
) -> Tuple[List[float], List[int]]:
    """Peel a compact snapshot; return ``(core values, removal order)`` by id.

    ``cgraph`` must be *ordered* (id == tie-break rank) so that the packed
    single-int heap entries ``degree * n + id`` reproduce the dict backend's
    deterministic removal order exactly.  Anchored ids receive
    :data:`ANCHOR_CORE` and are appended to the order last, sorted by id.
    """
    if not cgraph.ordered:
        raise ParameterError("compact_peel requires an ordered CompactGraph")
    n = cgraph.num_vertices
    core: List[float] = [0] * n
    order: List[int] = []
    if n == 0:
        return core, order

    indptr = cgraph.indptr
    indices = cgraph.indices
    effective = list(cgraph.degrees)
    is_anchor = bytearray(n)
    for anchor_id in anchor_ids:
        is_anchor[anchor_id] = 1
    removed = bytearray(n)

    heap = [effective[vid] * n + vid for vid in range(n) if not is_anchor[vid]]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop

    current_core = 0
    while heap:
        entry = heappop(heap)
        degree, vid = divmod(entry, n)
        if removed[vid] or degree != effective[vid]:
            continue
        if degree > current_core:
            current_core = degree
        core[vid] = current_core
        order.append(vid)
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if is_anchor[neighbour] or removed[neighbour]:
                continue
            slack = effective[neighbour] - 1
            effective[neighbour] = slack
            heappush(heap, slack * n + neighbour)

    for vid in range(n):
        if is_anchor[vid]:
            core[vid] = ANCHOR_CORE
            order.append(vid)
    return core, order


def compact_k_core_ids(
    cgraph: CompactGraph, k: int, anchor_ids: Iterable[int] = ()
) -> Set[int]:
    """Return the (anchored) k-core of a compact snapshot as a set of ids.

    Runs the direct O(n + m) deletion cascade over the flat arrays; anchored
    ids are never removed.  Works on ordered and unordered snapshots alike
    (the result is an order-independent set).
    """
    n = cgraph.num_vertices
    indptr = cgraph.indptr
    indices = cgraph.indices
    degrees = list(cgraph.degrees)
    is_anchor = bytearray(n)
    for anchor_id in anchor_ids:
        is_anchor[anchor_id] = 1
    removed = bytearray(n)
    queue = [vid for vid in range(n) if degrees[vid] < k and not is_anchor[vid]]
    while queue:
        vid = queue.pop()
        if removed[vid]:
            continue
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if removed[neighbour] or is_anchor[neighbour]:
                continue
            degrees[neighbour] -= 1
            if degrees[neighbour] < k:
                queue.append(neighbour)
    return {vid for vid in range(n) if not removed[vid]}


def core_numbers(
    graph: Graph, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> Dict[Vertex, int]:
    """Return ``{vertex: core number}`` with plain integer values."""
    decomposition = core_decomposition(graph, backend=backend)
    return {vertex: int(value) for vertex, value in decomposition.core.items()}


def k_core(
    graph: Graph, k: int, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> Set[Vertex]:
    """Return the vertex set of the k-core of ``graph``.

    Implemented as a direct peeling cascade, which is faster than a full
    decomposition when only a single ``k`` is needed.  The default
    ``"auto"`` policy is workload-aware (see :mod:`repro.backends.registry`):
    a one-shot cascade cannot amortise building a snapshot, so ``auto``
    resolves to the dict backend at any size.  Consumers that hold a
    reusable snapshot — e.g.
    :class:`~repro.anchored.anchored_core.AnchoredCoreIndex` — run the
    snapshot-native cascade through their backend kernel instead.
    """
    if k < 0:
        raise ParameterError("k must be non-negative")
    return get_backend(backend, graph.num_vertices, workload=WORKLOAD_ONE_SHOT).k_core(
        graph, k
    )


def k_shell(
    graph: Graph, k: int, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> Set[Vertex]:
    """Return the k-shell of ``graph`` (vertices whose core number equals ``k``)."""
    decomposition = core_decomposition(graph, backend=backend)
    return decomposition.shell_vertices(k)


def degeneracy(
    graph: Graph, backend: Union[str, ExecutionBackend] = BACKEND_AUTO
) -> int:
    """Return the degeneracy of ``graph`` (its largest non-empty core index)."""
    return core_decomposition(graph, backend=backend).degeneracy()
