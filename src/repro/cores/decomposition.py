"""Core decomposition (Algorithm 1 of the paper) and anchored variants.

The k-core of a graph is its maximal subgraph in which every vertex has degree
at least ``k`` (Definition 1); the core number of a vertex is the largest ``k``
for which it belongs to the k-core (Definition 2).  This module implements the
classic peeling algorithm (repeatedly remove a minimum-degree vertex), which
also yields the vertex removal order that seeds the K-order index of
Section 4.1.

It additionally implements *anchored* core decomposition: the same peeling
process in which a designated anchor set is never removed (anchored vertices
"meet the requirement of k-core regardless of the degree constraint",
Section 2.1).  Anchored vertices receive the core value
:data:`ANCHOR_CORE` (infinity).

Two interchangeable execution backends are provided (see
:mod:`repro.graph.compact`): the historical adjacency-set ``dict`` peeling,
and a flat integer-array kernel over a :class:`~repro.graph.compact.CompactGraph`
snapshot whose heap entries are single packed ints (``degree * n + id``).
Because the compact snapshot interns vertices in tie-break order, the two
backends produce *identical* core numbers **and** identical removal orders;
``backend="auto"`` (the default) picks compact for large graphs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import ParameterError
from repro.graph.compact import (
    BACKEND_AUTO,
    BACKEND_COMPACT,
    BACKEND_DICT,
    CompactGraph,
    resolve_backend,
)
from repro.graph.static import Graph, Vertex
from repro.ordering import tie_break_key

#: Core value assigned to anchored vertices — they can never be peeled.
ANCHOR_CORE: float = math.inf


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a (possibly anchored) core decomposition.

    Attributes
    ----------
    core:
        Mapping from vertex to core number.  Anchored vertices map to
        :data:`ANCHOR_CORE`.
    order:
        The removal order: vertices in the order the peeling process deleted
        them (anchored vertices, which are never deleted, appear last in a
        deterministic order).
    anchors:
        The anchor set used for the decomposition (empty for the plain case).
    """

    core: Mapping[Vertex, float]
    order: Tuple[Vertex, ...]
    anchors: FrozenSet[Vertex] = frozenset()

    def core_of(self, vertex: Vertex) -> float:
        """Return the core number of ``vertex``."""
        return self.core[vertex]

    def k_core_vertices(self, k: int) -> Set[Vertex]:
        """Return the vertices of the k-core (anchors always qualify)."""
        return {vertex for vertex, value in self.core.items() if value >= k}

    def shell_vertices(self, k: int) -> Set[Vertex]:
        """Return the k-shell: vertices with core number exactly ``k``."""
        return {vertex for vertex, value in self.core.items() if value == k}

    def shells(self) -> Dict[int, List[Vertex]]:
        """Return ``{core value: vertices in removal order}`` for finite cores."""
        grouped: Dict[int, List[Vertex]] = {}
        for vertex in self.order:
            value = self.core[vertex]
            if value == ANCHOR_CORE:
                continue
            grouped.setdefault(int(value), []).append(vertex)
        return grouped

    def degeneracy(self) -> int:
        """Return the largest finite core number (0 for an empty graph)."""
        finite = [int(value) for value in self.core.values() if value != ANCHOR_CORE]
        return max(finite, default=0)


def core_decomposition(graph: Graph, backend: str = BACKEND_AUTO) -> CoreDecomposition:
    """Run core decomposition on ``graph``.

    Vertices of equal current degree are peeled in a deterministic order so
    repeated runs produce identical removal orders.  Complexity is
    O(m log n) with the lazy-deletion heap used here, which is more than fast
    enough for the pure-Python experiment scale; ``backend="compact"`` (or
    ``"auto"`` on a large graph) runs the same peeling over flat int arrays.
    """
    return anchored_core_decomposition(graph, anchors=(), backend=backend)


def anchored_core_decomposition(
    graph: Graph, anchors: Iterable[Vertex], backend: str = BACKEND_AUTO
) -> CoreDecomposition:
    """Run core decomposition in which ``anchors`` are never removed.

    Anchored vertices still contribute to their neighbours' degrees throughout
    the peeling, which is exactly the anchored k-core semantics of
    Definition 4: the anchored k-core for any ``k`` is
    ``{v : core(v) >= k}`` with anchors mapped to infinity.  Both backends
    produce the same mapping and the same removal order.
    """
    anchor_set = frozenset(anchors)
    for anchor in anchor_set:
        if not graph.has_vertex(anchor):
            raise ParameterError(f"anchor {anchor!r} is not a vertex of the graph")

    if resolve_backend(backend, graph.num_vertices) == BACKEND_COMPACT:
        return _compact_anchored_decomposition(graph, anchor_set)

    effective: Dict[Vertex, int] = {}
    heap: List[Tuple[int, Tuple[str, str], Vertex]] = []
    for vertex in graph.vertices():
        if vertex in anchor_set:
            continue
        degree = graph.degree(vertex)
        effective[vertex] = degree
        heap.append((degree, tie_break_key(vertex), vertex))
    heapq.heapify(heap)

    core: Dict[Vertex, float] = {}
    order: List[Vertex] = []
    removed: Set[Vertex] = set()
    current_core = 0
    while heap:
        degree, _, vertex = heapq.heappop(heap)
        if vertex in removed:
            continue
        if degree != effective[vertex]:
            # Stale heap entry: the true (smaller) degree entry is still queued.
            continue
        current_core = max(current_core, degree)
        core[vertex] = current_core
        order.append(vertex)
        removed.add(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in anchor_set or neighbour in removed:
                continue
            effective[neighbour] -= 1
            heapq.heappush(heap, (effective[neighbour], tie_break_key(neighbour), neighbour))

    for anchor in sorted(anchor_set, key=tie_break_key):
        core[anchor] = ANCHOR_CORE
        order.append(anchor)
    return CoreDecomposition(core=core, order=tuple(order), anchors=anchor_set)


# ---------------------------------------------------------------------------
# Compact (flat integer-array) kernels
# ---------------------------------------------------------------------------
def compact_peel(
    cgraph: CompactGraph, anchor_ids: Iterable[int] = ()
) -> Tuple[List[float], List[int]]:
    """Peel a compact snapshot; return ``(core values, removal order)`` by id.

    ``cgraph`` must be *ordered* (id == tie-break rank) so that the packed
    single-int heap entries ``degree * n + id`` reproduce the dict backend's
    deterministic removal order exactly.  Anchored ids receive
    :data:`ANCHOR_CORE` and are appended to the order last, sorted by id.
    """
    if not cgraph.ordered:
        raise ParameterError("compact_peel requires an ordered CompactGraph")
    n = cgraph.num_vertices
    core: List[float] = [0] * n
    order: List[int] = []
    if n == 0:
        return core, order

    indptr = cgraph.indptr
    indices = cgraph.indices
    effective = list(cgraph.degrees)
    is_anchor = bytearray(n)
    for anchor_id in anchor_ids:
        is_anchor[anchor_id] = 1
    removed = bytearray(n)

    heap = [effective[vid] * n + vid for vid in range(n) if not is_anchor[vid]]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop

    current_core = 0
    while heap:
        entry = heappop(heap)
        degree, vid = divmod(entry, n)
        if removed[vid] or degree != effective[vid]:
            continue
        if degree > current_core:
            current_core = degree
        core[vid] = current_core
        order.append(vid)
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if is_anchor[neighbour] or removed[neighbour]:
                continue
            slack = effective[neighbour] - 1
            effective[neighbour] = slack
            heappush(heap, slack * n + neighbour)

    for vid in range(n):
        if is_anchor[vid]:
            core[vid] = ANCHOR_CORE
            order.append(vid)
    return core, order


def _compact_anchored_decomposition(
    graph: Graph, anchor_set: FrozenSet[Vertex]
) -> CoreDecomposition:
    """Anchored decomposition through the compact kernel, translated back."""
    cgraph = CompactGraph.from_graph(graph, ordered=True)
    interner = cgraph.interner
    anchor_ids = [interner.id_of(anchor) for anchor in anchor_set]
    core_by_id, order_ids = compact_peel(cgraph, anchor_ids)
    vertices = interner.vertices
    core = {vertices[vid]: core_by_id[vid] for vid in range(len(vertices))}
    order = tuple(vertices[vid] for vid in order_ids)
    return CoreDecomposition(core=core, order=order, anchors=anchor_set)


def compact_k_core_ids(
    cgraph: CompactGraph, k: int, anchor_ids: Iterable[int] = ()
) -> Set[int]:
    """Return the (anchored) k-core of a compact snapshot as a set of ids.

    Runs the direct O(n + m) deletion cascade over the flat arrays; anchored
    ids are never removed.  Works on ordered and unordered snapshots alike
    (the result is an order-independent set).
    """
    n = cgraph.num_vertices
    indptr = cgraph.indptr
    indices = cgraph.indices
    degrees = list(cgraph.degrees)
    is_anchor = bytearray(n)
    for anchor_id in anchor_ids:
        is_anchor[anchor_id] = 1
    removed = bytearray(n)
    queue = [vid for vid in range(n) if degrees[vid] < k and not is_anchor[vid]]
    while queue:
        vid = queue.pop()
        if removed[vid]:
            continue
        removed[vid] = 1
        for position in range(indptr[vid], indptr[vid + 1]):
            neighbour = indices[position]
            if removed[neighbour] or is_anchor[neighbour]:
                continue
            degrees[neighbour] -= 1
            if degrees[neighbour] < k:
                queue.append(neighbour)
    return {vid for vid in range(n) if not removed[vid]}


def core_numbers(graph: Graph, backend: str = BACKEND_AUTO) -> Dict[Vertex, int]:
    """Return ``{vertex: core number}`` with plain integer values."""
    decomposition = core_decomposition(graph, backend=backend)
    return {vertex: int(value) for vertex, value in decomposition.core.items()}


def k_core(graph: Graph, k: int, backend: str = BACKEND_DICT) -> Set[Vertex]:
    """Return the vertex set of the k-core of ``graph``.

    Implemented as a direct peeling cascade, which is faster than a full
    decomposition when only a single ``k`` is needed.  Unlike the full
    decomposition, a one-shot cascade cannot amortise a compact snapshot
    build, so the default backend is ``"dict"`` here; pass
    ``backend="compact"`` only when measuring the kernel itself (consumers
    that hold a reusable :class:`~repro.graph.compact.CompactGraph`, such as
    :class:`~repro.anchored.anchored_core.AnchoredCoreIndex`, call
    :func:`compact_k_core_ids` directly instead).
    """
    if k < 0:
        raise ParameterError("k must be non-negative")
    if resolve_backend(backend, graph.num_vertices) == BACKEND_COMPACT:
        cgraph = CompactGraph.from_graph(graph, ordered=False)
        return cgraph.interner.translate(compact_k_core_ids(cgraph, k))
    degrees = {vertex: graph.degree(vertex) for vertex in graph.vertices()}
    removed: Set[Vertex] = set()
    queue = [vertex for vertex, degree in degrees.items() if degree < k]
    while queue:
        vertex = queue.pop()
        if vertex in removed:
            continue
        removed.add(vertex)
        for neighbour in graph.neighbors(vertex):
            if neighbour in removed:
                continue
            degrees[neighbour] -= 1
            if degrees[neighbour] < k:
                queue.append(neighbour)
    return {vertex for vertex in degrees if vertex not in removed}


def k_shell(graph: Graph, k: int, backend: str = BACKEND_AUTO) -> Set[Vertex]:
    """Return the k-shell of ``graph`` (vertices whose core number equals ``k``)."""
    decomposition = core_decomposition(graph, backend=backend)
    return decomposition.shell_vertices(k)


def degeneracy(graph: Graph, backend: str = BACKEND_AUTO) -> int:
    """Return the degeneracy of ``graph`` (its largest non-empty core index)."""
    return core_decomposition(graph, backend=backend).degeneracy()
