"""The retry policy behind supervised shard execution.

A :class:`RetryPolicy` bounds how hard the coordinator fights a failing op
dispatch before falling down the degradation ladder: ``max_retries`` bounded
attempts, exponential backoff with **deterministic jitter** (the jitter is a
hash of the attempt number and a caller token, not a random draw, so chaos
runs are bit-reproducible) and an optional per-op deadline enforced via
``future.result(timeout=...)`` / bounded ``wait(...)`` calls — a worker that
misses the deadline is killed and treated exactly like a crashed one.

Environment knobs (read by :func:`default_retry_policy`):

``REPRO_RETRY_MAX``
    Retry budget per supervised kernel call (default 2).
``REPRO_RETRY_BASE_DELAY``
    First backoff delay in seconds (default 0.05).
``REPRO_SHARD_OP_TIMEOUT``
    Per-op deadline in seconds (default: none — ops may run indefinitely).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError

__all__ = ["RetryPolicy", "default_retry_policy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries + exponential backoff with deterministic jitter."""

    #: Retries after the first failed attempt (0 disables retrying).
    max_retries: int = 2
    #: Backoff before retry 1; doubles (``backoff``) each further retry.
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    #: Per-op deadline in seconds (None = no deadline).  Enforced by the
    #: coordinator's bounded waits; a miss kills the worker and retries.
    op_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParameterError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ParameterError("retry delays must be >= 0")
        if self.backoff < 1.0:
            raise ParameterError("backoff factor must be >= 1")
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ParameterError("op_timeout must be positive (or None)")

    def delay_for(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt`` (1-based), jittered deterministically.

        The jitter multiplies the exponential delay by a factor in
        ``[0.5, 1.0)`` derived from ``crc32(token:attempt)`` — spreading
        concurrent retries without sacrificing reproducibility.
        """
        raw = min(self.base_delay * (self.backoff ** (attempt - 1)), self.max_delay)
        draw = zlib.crc32(f"{token}:{attempt}".encode("utf-8", "replace")) % 1000
        return raw * (0.5 + draw / 2000.0)


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except ValueError:
        raise ParameterError(f"{name} must be a number, got {raw!r}") from None


def default_retry_policy() -> RetryPolicy:
    """The environment-configured policy coordinators use when none is given."""
    max_retries = _env_float("REPRO_RETRY_MAX")
    base_delay = _env_float("REPRO_RETRY_BASE_DELAY")
    op_timeout = _env_float("REPRO_SHARD_OP_TIMEOUT")
    return RetryPolicy(
        max_retries=int(max_retries) if max_retries is not None else 2,
        base_delay=base_delay if base_delay is not None else 0.05,
        op_timeout=op_timeout,
    )
