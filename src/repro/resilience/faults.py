"""Deterministic, seedable fault injection for the execution layers.

Production failures — a worker OOM-killed mid-exchange, a shard op that
hangs, a checkpoint flipped on disk — are rare enough that their handling
paths rot unless something exercises them on demand.  This module is that
something: a :class:`FaultPlan` of injection points that the instrumented
call sites consult via :func:`fire`, costing one module-global ``None``
check when no plan is armed.

Sites and actions
-----------------
Each :class:`FaultSpec` names a *site* (where the probe lives) and an
*action* (what happens when it fires):

==================  ========================================================
site                fired from
==================  ========================================================
``shard.op``        every shard op dispatch (serial in-process and inside
                    process-pool workers; context carries ``op``, ``shard``,
                    ``executor``)
``shm.attach``      :func:`repro.shard.shm.attach_state` (worker side)
``checkpoint.write``  :func:`repro.engine.checkpoint.write_state`, before
                    the atomic rename (``fail`` action simulates a flush
                    failure)
``checkpoint.bytes``  after a checkpoint file lands on disk (``corrupt``
                    action flips one byte, optionally inside a named
                    ``section=``)
==================  ========================================================

==========  ================================================================
action      effect at the fire site
==========  ================================================================
``crash``   ``os._exit(17)`` — only honoured where the call site passes
            ``allow_crash=True`` (process-pool workers); elsewhere it is
            downgraded to ``error`` so an injected "worker crash" can never
            take down the coordinator process itself
``slow``    ``time.sleep(delay)`` (pairs with the supervision deadline)
``error``   raise :class:`repro.errors.FaultError`
``corrupt``  no inline effect; the spec is returned so the site applies its
            own corruption (e.g. the checkpoint byte flip)
``fail``    no inline effect; the spec is returned so the site raises its
            own domain error (e.g. ``CheckpointError`` on write)
==========  ================================================================

Determinism
-----------
Every spec keeps a hit counter; ``at=N`` fires on the N-th eligible hit,
``times=M`` caps the number of firings (default 1; ``times=0`` means
unlimited) and ``rate=p`` fires pseudo-randomly but *reproducibly* — the
decision hashes ``(seed, hit index)``, so the same plan against the same
workload fires at the same points every run.

Activation
----------
Programmatic: :func:`install_plan` / :func:`clear_plan`, or the
:func:`inject` context manager.  Environment: ``REPRO_FAULTS`` holds
``;``-separated specs of the form ``site:key=value,key=value`` where the
recognised keys are ``action``, ``at``, ``times``, ``rate``, ``delay`` and
``seed`` and **every other key becomes a context match filter**::

    REPRO_FAULTS="shard.op:action=crash,executor=process,at=2"
    REPRO_FAULTS="shard.op:action=slow,delay=30,op=hindex_round,shard=1"
    REPRO_FAULTS="checkpoint.bytes:action=corrupt,section=core"

The environment path matters for the process executor: spawn workers inherit
``os.environ``, so an env-armed plan fires inside workers where an installed
in-memory plan cannot reach.

Every fired fault increments the ``resilience.faults_injected`` counter in
the global metrics registry (labelled by site and action), lands in the
flight-recorder ring as a synthetic event (visible even with tracing off)
and — when tracing is on — emits a ``fault.injected`` span.
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import FaultError, ParameterError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "fire",
    "install_plan",
    "clear_plan",
    "active_plan",
    "inject",
    "parse_faults",
]

ACTION_CRASH = "crash"
ACTION_SLOW = "slow"
ACTION_ERROR = "error"
ACTION_CORRUPT = "corrupt"
ACTION_FAIL = "fail"
ACTIONS = (ACTION_CRASH, ACTION_SLOW, ACTION_ERROR, ACTION_CORRUPT, ACTION_FAIL)

#: Exit status of an injected worker crash (recognisable in worker post-mortems).
CRASH_EXIT_CODE = 17

#: Reserved spec keys in the ``REPRO_FAULTS`` mini-language; everything else
#: is a context match filter.
_SPEC_KEYS = {"action", "at", "times", "rate", "delay", "seed"}


class FaultSpec:
    """One injection point: site + action + deterministic firing schedule."""

    __slots__ = ("site", "action", "match", "at", "times", "rate", "delay", "seed", "hits", "fired")

    def __init__(
        self,
        site: str,
        action: str = ACTION_ERROR,
        *,
        match: Optional[Dict[str, str]] = None,
        at: Optional[int] = None,
        times: int = 1,
        rate: Optional[float] = None,
        delay: float = 0.05,
        seed: int = 0,
    ) -> None:
        if action not in ACTIONS:
            raise ParameterError(
                f"unknown fault action {action!r}; expected one of {sorted(ACTIONS)}"
            )
        if at is not None and at < 1:
            raise ParameterError("fault 'at' must be >= 1 (1-based eligible hit)")
        if times < 0:
            raise ParameterError("fault 'times' must be >= 0 (0 = unlimited)")
        if rate is not None and not 0.0 <= rate <= 1.0:
            raise ParameterError("fault 'rate' must be in [0, 1]")
        self.site = site
        self.action = action
        self.match = {str(k): str(v) for k, v in (match or {}).items()}
        self.at = at
        self.times = times
        self.rate = rate
        self.delay = delay
        self.seed = seed
        self.hits = 0  # eligible (site+match) encounters
        self.fired = 0  # actual firings

    def matches(self, context: Dict[str, Any]) -> bool:
        for key, expected in self.match.items():
            if str(context.get(key)) != expected:
                return False
        return True

    def should_fire(self) -> bool:
        """Consume one eligible hit; report whether this one fires.

        Order of gates: the ``times`` cap is checked first (a spent spec
        never fires again), then ``at`` pins the firing to one specific hit,
        then ``rate`` makes a deterministic pseudo-random draw keyed on
        ``(seed, hit index)``.  With neither ``at`` nor ``rate`` every
        eligible hit fires (until ``times`` runs out).
        """
        self.hits += 1
        if self.times and self.fired >= self.times:
            return False
        if self.at is not None and self.hits != self.at:
            return False
        if self.rate is not None:
            draw = zlib.crc32(f"{self.seed}:{self.hits}".encode("ascii")) % 10_000
            if draw / 10_000.0 >= self.rate:
                return False
        self.fired += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        schedule = []
        if self.at is not None:
            schedule.append(f"at={self.at}")
        if self.rate is not None:
            schedule.append(f"rate={self.rate}")
        schedule.append(f"times={self.times or 'inf'}")
        return (
            f"FaultSpec({self.site}:{self.action} match={self.match} "
            f"{' '.join(schedule)} fired={self.fired}/{self.hits})"
        )


class FaultPlan:
    """An ordered list of :class:`FaultSpec`\\ s consulted by :func:`fire`."""

    def __init__(self, specs: Optional[List[FaultSpec]] = None) -> None:
        self.specs = list(specs or [])

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def fire(self, site: str, **context: Any) -> Optional[FaultSpec]:
        """Fire the first matching armed spec for ``site``; see :func:`fire`."""
        allow_crash = bool(context.pop("allow_crash", False))
        for spec in self.specs:
            if spec.site != site or not spec.matches(context):
                continue
            if not spec.should_fire():
                continue
            action = spec.action
            if action == ACTION_CRASH and not allow_crash:
                # A "worker crash" outside a sacrificial worker process must
                # not take the coordinator down; surface it as the error the
                # supervision layer handles instead.
                action = ACTION_ERROR
            _record_fault(site, action, spec, context)
            if action == ACTION_CRASH:
                os._exit(CRASH_EXIT_CODE)
            if action == ACTION_SLOW:
                time.sleep(spec.delay)
                return spec
            if action == ACTION_ERROR:
                raise FaultError(site, f"{context}" if context else "")
            return spec  # corrupt / fail: the call site applies the effect
        return None

    def reset(self) -> None:
        """Zero every spec's counters (reuse one plan across test cases)."""
        for spec in self.specs:
            spec.hits = 0
            spec.fired = 0

    def total_fired(self) -> int:
        return sum(spec.fired for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.specs!r})"


def _record_fault(site: str, action: str, spec: FaultSpec, context: Dict[str, Any]) -> None:
    """Count + flight-record + span every firing (never let this throw)."""
    try:
        from repro.obs.metrics import global_registry

        global_registry().counter(
            "resilience.faults_injected", site=site, action=action
        ).inc()
    except Exception:  # pragma: no cover - diagnostics must not mask the fault
        pass
    try:
        from repro.obs import flight

        flight.default_recorder().record_event(
            "fault.injected", site=site, action=action, hit=spec.hits, **context
        )
    except Exception:  # pragma: no cover
        pass
    try:
        from repro.obs import tracer

        if tracer.enabled:
            with tracer.span("fault.injected", site=site, action=action):
                pass
    except Exception:  # pragma: no cover
        pass


# ---------------------------------------------------------------------------
# Plan activation: programmatic plan, else the REPRO_FAULTS environment.
# ---------------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
#: Parsed-env cache: (raw REPRO_FAULTS string, parsed plan).  The plan object
#: is reused across fires so its hit counters persist within a process.
_ENV_CACHE: Optional[tuple] = None


def parse_faults(raw: str) -> FaultPlan:
    """Parse the ``REPRO_FAULTS`` mini-language into a :class:`FaultPlan`.

    ``;``-separated ``site:key=value,key=value`` specs; unknown keys become
    context match filters (see the module docstring).
    """
    plan = FaultPlan()
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        site, sep, body = chunk.partition(":")
        site = site.strip()
        if not site or not sep:
            raise ParameterError(
                f"REPRO_FAULTS spec {chunk!r} is not of the form site:key=value,..."
            )
        kwargs: Dict[str, Any] = {}
        match: Dict[str, str] = {}
        for pair in body.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise ParameterError(f"REPRO_FAULTS entry {pair!r} is not key=value")
            key = key.strip()
            value = value.strip()
            if key in _SPEC_KEYS:
                kwargs[key] = value
            else:
                match[key] = value
        try:
            spec = FaultSpec(
                site,
                kwargs.get("action", ACTION_ERROR),
                match=match,
                at=int(kwargs["at"]) if "at" in kwargs else None,
                times=int(kwargs["times"]) if "times" in kwargs else 1,
                rate=float(kwargs["rate"]) if "rate" in kwargs else None,
                delay=float(kwargs["delay"]) if "delay" in kwargs else 0.05,
                seed=int(kwargs["seed"]) if "seed" in kwargs else 0,
            )
        except ValueError as error:
            raise ParameterError(f"malformed REPRO_FAULTS spec {chunk!r}: {error}") from None
        plan.add(spec)
    return plan


def _as_plan(plan: Union[FaultPlan, FaultSpec, Iterable[FaultSpec]]) -> FaultPlan:
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, FaultSpec):
        return FaultPlan([plan])
    return FaultPlan(list(plan))


def install_plan(plan: Union[FaultPlan, FaultSpec, Iterable[FaultSpec]]) -> FaultPlan:
    """Arm ``plan`` process-wide (overrides ``REPRO_FAULTS`` while armed).

    Accepts a :class:`FaultPlan`, a bare :class:`FaultSpec`, or an iterable
    of specs.
    """
    global _PLAN
    _PLAN = _as_plan(plan)
    return _PLAN


def clear_plan() -> None:
    """Disarm the programmatic plan (``REPRO_FAULTS`` takes over again)."""
    global _PLAN
    _PLAN = None


def active_plan() -> Optional[FaultPlan]:
    """The armed plan: the installed one, else a cached parse of ``REPRO_FAULTS``."""
    global _ENV_CACHE
    if _PLAN is not None:
        return _PLAN
    raw = os.environ.get("REPRO_FAULTS")
    if not raw:
        _ENV_CACHE = None
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, parse_faults(raw))
    return _ENV_CACHE[1]


@contextmanager
def inject(plan: Union[FaultPlan, FaultSpec, Iterable[FaultSpec]]) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a ``with`` block (tests)."""
    global _PLAN
    previous = _PLAN
    armed = install_plan(plan)
    try:
        yield armed
    finally:
        _PLAN = previous


def fire(site: str, **context: Any) -> Optional[FaultSpec]:
    """Consult the armed plan at an injection site.

    Returns ``None`` when nothing fires (the overwhelmingly common case — a
    single ``is None`` + env check when no plan is armed).  ``crash`` /
    ``slow`` / ``error`` actions take effect inline; ``corrupt`` / ``fail``
    return the fired spec so the site applies the domain-specific effect.
    Call sites running inside a sacrificial worker process pass
    ``allow_crash=True``; everywhere else ``crash`` degrades to ``error``.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(site, **context)
