"""Fault injection and the retry/degradation machinery behind it.

``repro.resilience`` is the hardening layer the serving stack stands on:

* :mod:`repro.resilience.faults` — a deterministic, seedable fault-injection
  framework (worker crashes, slow shards, kernel exceptions, shm-attach
  failures, checkpoint corruption, flush failures) armed programmatically or
  through ``REPRO_FAULTS``.
* :mod:`repro.resilience.retry` — the :class:`RetryPolicy` (bounded retries,
  exponential backoff with deterministic jitter, per-op deadlines) that
  supervised shard execution runs under.

The consumers live where the failures do: the shard coordinator retries and
degrades (:mod:`repro.shard.coordinator`), the engine falls back across
backends and probes for recovery (:mod:`repro.engine.engine`), and the
checkpoint layer verifies section digests and restores from rotated siblings
(:mod:`repro.engine.checkpoint`).
"""

from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    fire,
    inject,
    install_plan,
    parse_faults,
)
from repro.resilience.retry import RetryPolicy, default_retry_policy

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active_plan",
    "clear_plan",
    "default_retry_policy",
    "fire",
    "inject",
    "install_plan",
    "parse_faults",
]
