"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs also work in
offline environments whose setuptools predates native wheel support
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
