"""Unit tests for the AnchoredCoreIndex working state."""

from __future__ import annotations

import pytest

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.followers import compute_followers, follower_gain
from repro.cores.decomposition import ANCHOR_CORE
from repro.errors import ParameterError, VertexNotFoundError


class TestConstruction:
    def test_requires_positive_k(self, toy_graph):
        with pytest.raises(ParameterError):
            AnchoredCoreIndex(toy_graph, 0)

    def test_unknown_anchor_raises(self, toy_graph):
        with pytest.raises(VertexNotFoundError):
            AnchoredCoreIndex(toy_graph, 3, anchors=[999])

    def test_initial_state_without_anchors(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        assert index.k == 3
        assert index.anchors == set()
        assert index.anchored_core_vertices() == {8, 9, 12, 13, 16}
        assert index.anchored_core_size() == 5
        assert index.followers() == set()
        assert index.plain_k_core() == {8, 9, 12, 13, 16}

    def test_initial_state_with_anchors(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3, anchors=[7, 10])
        assert index.core(7) == ANCHOR_CORE
        assert index.followers() == {2, 3, 5, 6, 11}
        assert index.anchored_core_size() == 12


class TestCandidates:
    def test_candidates_exclude_anchors_and_core(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3, anchors=[10])
        candidates = index.candidate_anchors()
        assert 10 not in candidates
        assert candidates.isdisjoint(index.anchored_core_vertices())

    def test_order_pruning_is_a_subset_of_relaxed_filter(self, cl_graph):
        index = AnchoredCoreIndex(cl_graph, 4)
        pruned = index.candidate_anchors(order_pruning=True)
        relaxed = index.candidate_anchors(order_pruning=False)
        assert pruned <= relaxed

    def test_pruning_never_discards_a_productive_candidate(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        pruned = index.candidate_anchors(order_pruning=True)
        for vertex in toy_graph.vertices():
            if index.core(vertex) >= 3:
                continue
            if follower_gain(toy_graph, 3, [], vertex):
                assert vertex in pruned, vertex

    def test_all_non_core_vertices(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        universe = index.all_non_core_vertices()
        assert universe == set(toy_graph.vertices()) - {8, 9, 12, 13, 16}


class TestFollowerEvaluation:
    def test_marginal_followers_counts_instrumentation(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        before = index.candidates_evaluated
        gained = index.marginal_followers(10)
        assert gained == {2, 3, 5, 6, 11}
        assert index.candidates_evaluated == before + 1
        assert index.visited_vertices > 0

    def test_full_shell_flag_gives_same_result_more_visits(self, toy_graph):
        index_fast = AnchoredCoreIndex(toy_graph, 3)
        index_slow = AnchoredCoreIndex(toy_graph, 3)
        fast = index_fast.marginal_followers(17, full_shell=False)
        slow = index_slow.marginal_followers(17, full_shell=True)
        assert fast == slow == {14, 15}
        assert index_slow.visited_vertices >= index_fast.visited_vertices

    def test_marginal_followers_respects_existing_anchors(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3, anchors=[10])
        gained = index.marginal_followers(17)
        assert gained == follower_gain(toy_graph, 3, [10], 17)


class TestMutation:
    def test_add_anchor_updates_followers(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        index.add_anchor(10)
        assert index.followers() == compute_followers(toy_graph, 3, {10})
        index.add_anchor(17)
        assert index.followers() == compute_followers(toy_graph, 3, {10, 17})

    def test_add_anchor_twice_is_idempotent(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        index.add_anchor(10)
        followers = index.followers()
        index.add_anchor(10)
        assert index.followers() == followers

    def test_add_unknown_anchor_raises(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        with pytest.raises(VertexNotFoundError):
            index.add_anchor(12345)

    def test_set_anchors_replaces_the_set(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3, anchors=[10, 17])
        index.set_anchors([7, 10])
        assert index.anchors == {7, 10}
        assert index.followers() == {2, 3, 5, 6, 11}

    def test_shell_view(self, toy_graph):
        index = AnchoredCoreIndex(toy_graph, 3)
        shell = index.shell()
        assert 14 in shell and 15 in shell
        assert shell.isdisjoint({8, 9, 12, 13, 16})
