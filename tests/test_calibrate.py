"""Tests for measured backend selection (:mod:`repro.backends.calibrate`).

The calibration table replaces the registry's hard-coded ``auto_priority``
expectation with a measurement.  These tests pin the policy layering around
it: per-band winner resolution, the priority-ladder fallbacks (no covering
band, winner unavailable, no table), one-shot workloads staying on dict,
persistence (save/load, ``REPRO_CALIBRATION`` lazy loading, version gating),
the sweep itself, and the engine's flush-time re-resolution following the
table across band boundaries.
"""

from __future__ import annotations

import json

import pytest

from repro.backends import (
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMPY,
    COMPACT_THRESHOLD,
    WORKLOAD_ONE_SHOT,
    CalibrationSpec,
    CalibrationTable,
    SizeBand,
    active_calibration,
    clear_calibration,
    load_calibration,
    numpy_available,
    resolve_backend,
    run_calibration,
    set_calibration,
)
from repro.backends.calibrate import CALIBRATION_ENV, DEFAULT_BANDS
from repro.engine import StreamingAVTEngine
from repro.errors import ParameterError
from repro.graph.dynamic import EdgeDelta

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy is not installed")


@pytest.fixture(autouse=True)
def isolated_calibration(monkeypatch):
    """No test leaks an active table (or the env lazy-load) to its neighbours."""
    monkeypatch.delenv(CALIBRATION_ENV, raising=False)
    clear_calibration()
    yield
    clear_calibration()


def synthetic_table(small="dict", medium="compact", large="numpy") -> CalibrationTable:
    return CalibrationTable(
        [
            {"name": "small", "lo": 0, "hi": 4096, "winner": small, "timings": {}},
            {"name": "medium", "lo": 4096, "hi": 32768, "winner": medium, "timings": {}},
            {"name": "large", "lo": 32768, "hi": None, "winner": large, "timings": {}},
        ]
    )


class TestWinnerResolution:
    def test_winner_per_band(self):
        table = synthetic_table()
        assert table.winner_for(10) == "dict"
        assert table.winner_for(4096) == "compact"
        assert table.winner_for(32767) == "compact"
        assert table.winner_for(10**9) == "numpy"

    def test_uncovered_size_returns_none(self):
        table = CalibrationTable(
            [{"name": "mid", "lo": 100, "hi": 200, "winner": "compact", "timings": {}}]
        )
        assert table.winner_for(50) is None
        assert table.winner_for(200) is None

    def test_unavailable_winner_returns_none(self):
        table = synthetic_table(large="numba")
        assert table.winner_for(10**9, available=("dict", "compact")) is None
        assert table.winner_for(10**9, available=("dict", "numba")) == "numba"

    def test_band_without_winner_returns_none(self):
        table = CalibrationTable(
            [{"name": "all", "lo": 0, "hi": None, "winner": None, "timings": {}}]
        )
        assert table.winner_for(10) is None


class TestMeasuredAutoPolicy:
    def test_auto_follows_the_active_table(self):
        # The synthetic table inverts the ladder: dict on a large graph.
        set_calibration(synthetic_table(large="dict"))
        assert resolve_backend("auto", 10**6) == BACKEND_DICT
        assert resolve_backend("auto", 8192) == BACKEND_COMPACT
        # Below the threshold the table still answers (band "small").
        assert resolve_backend("auto", 10) == BACKEND_DICT

    @needs_numpy
    def test_auto_picks_measured_winner_per_band(self):
        set_calibration(synthetic_table(small="numpy", medium="dict", large="compact"))
        assert resolve_backend("auto", 100) == BACKEND_NUMPY
        assert resolve_backend("auto", 10_000) == BACKEND_DICT
        assert resolve_backend("auto", 100_000) == BACKEND_COMPACT

    def test_one_shot_workloads_ignore_the_table(self):
        set_calibration(synthetic_table(small="compact", large="compact"))
        assert resolve_backend("auto", 10**9, workload=WORKLOAD_ONE_SHOT) == BACKEND_DICT

    def test_explicit_names_ignore_the_table(self):
        set_calibration(synthetic_table(small="compact"))
        assert resolve_backend("dict", 10) == BACKEND_DICT
        assert resolve_backend("compact", 10**9) == BACKEND_COMPACT

    def test_unavailable_winner_falls_back_to_the_ladder(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        set_calibration(synthetic_table(large="numba"))
        assert resolve_backend("auto", 10**6) == BACKEND_COMPACT

    def test_no_table_keeps_the_ladder(self):
        assert active_calibration() is None
        assert resolve_backend("auto", COMPACT_THRESHOLD - 1) == BACKEND_DICT


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        table = synthetic_table()
        path = tmp_path / "calibration.json"
        table.save(path)
        loaded = CalibrationTable.load(path)
        assert loaded.bands == table.bands
        assert loaded.winner_for(10**6) == table.winner_for(10**6)

    def test_load_calibration_installs(self, tmp_path):
        path = tmp_path / "calibration.json"
        synthetic_table().save(path)
        table = load_calibration(path)
        assert active_calibration() is table

    def test_env_variable_loads_lazily(self, tmp_path, monkeypatch):
        path = tmp_path / "calibration.json"
        synthetic_table(large="dict").save(path)
        monkeypatch.setenv(CALIBRATION_ENV, str(path))
        clear_calibration()  # re-arm the lazy load under the new env
        table = active_calibration()
        assert table is not None
        assert table.winner_for(10**9) == "dict"

    def test_unreadable_env_file_warns_once_and_falls_back(
        self, tmp_path, monkeypatch, caplog
    ):
        path = tmp_path / "broken.json"
        path.write_text("not json", encoding="utf-8")
        monkeypatch.setenv(CALIBRATION_ENV, str(path))
        clear_calibration()
        with caplog.at_level("WARNING", logger="repro.backends.calibrate"):
            assert active_calibration() is None
            assert active_calibration() is None  # second call: cached, no re-read
        assert len([r for r in caplog.records if "broken.json" in r.message]) == 1
        # The ladder still answers.
        assert resolve_backend("auto", 10) == BACKEND_DICT

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"calibration_version": 99, "bands": []}), encoding="utf-8"
        )
        with pytest.raises(ParameterError, match="version"):
            CalibrationTable.load(path)

    def test_missing_bands_rejected(self):
        with pytest.raises(ParameterError, match="bands"):
            CalibrationTable.from_payload({"calibration_version": 1})

    def test_set_calibration_none_clears(self):
        set_calibration(synthetic_table())
        set_calibration(None)
        assert active_calibration() is None


class TestRunCalibration:
    SMOKE_SPEC = CalibrationSpec(
        bands=(SizeBand("tiny", 0, None, 160),),
        repetitions=1,
    )

    def test_smoke_sweep_produces_winners(self):
        table = run_calibration(self.SMOKE_SPEC)
        assert table.band_names() == ("tiny",)
        band = table.bands[0]
        assert band["winner"] in band["timings"]
        for per_workload in band["timings"].values():
            assert set(per_workload) == set(self.SMOKE_SPEC.workloads)
            assert all(value >= 0.0 for value in per_workload.values())

    def test_install_flag_activates_the_table(self):
        table = run_calibration(self.SMOKE_SPEC, install=True)
        assert active_calibration() is table

    def test_scaled_caps_band_samples(self):
        spec = CalibrationSpec().scaled(500)
        assert all(band.sample_vertices <= 500 for band in spec.bands)
        assert [band.name for band in spec.bands] == [band.name for band in DEFAULT_BANDS]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ParameterError, match="workload"):
            run_calibration(CalibrationSpec(workloads=("peel", "quantum")))

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ParameterError, match="repetitions"):
            run_calibration(CalibrationSpec(repetitions=0))


class TestEngineFollowsTheTable:
    def test_flush_re_resolves_across_band_boundaries(self):
        # A table that crowns compact *below* the auto threshold: without the
        # measurement the engine would stay on dict at this size.
        set_calibration(
            CalibrationTable(
                [
                    {"name": "tiny", "lo": 0, "hi": 64, "winner": "dict", "timings": {}},
                    {
                        "name": "rest",
                        "lo": 64,
                        "hi": None,
                        "winner": "compact",
                        "timings": {},
                    },
                ]
            )
        )
        engine = StreamingAVTEngine(backend="auto", batch_size=None)
        assert engine.backend == BACKEND_DICT
        engine.ingest(
            EdgeDelta.from_iterables(
                inserted=[(i, i + 1) for i in range(100)], removed=[]
            )
        )
        engine.flush()
        assert engine.backend == BACKEND_COMPACT
        engine._maintainer.validate()
