"""Property-based tests (hypothesis) for the core invariants of the library.

These are the guarantees the rest of the system is built on:

* core decomposition agrees with networkx on arbitrary graphs;
* the K-order produced by decomposition is always a valid removal order;
* incremental core maintenance always agrees with recomputation from scratch;
* the fast follower computation agrees with the exact deletion cascade;
* anchored k-cores are monotone in the anchor set and contain the plain k-core.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anchored.followers import (
    anchored_k_core,
    compute_followers,
    follower_gain,
    full_shell_followers,
    marginal_followers,
)
from repro.cores.decomposition import core_numbers, k_core
from repro.cores.korder import KOrder
from repro.cores.maintenance import CoreMaintainer
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph

from tests.conftest import to_networkx

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
MAX_VERTICES = 14


@st.composite
def graphs(draw, min_vertices: int = 2, max_vertices: int = MAX_VERTICES) -> Graph:
    """Random small simple graphs with a possibly non-contiguous vertex set."""
    num_vertices = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    vertices = list(range(num_vertices))
    possible_edges = [(u, v) for u in vertices for v in vertices if u < v]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=3 * num_vertices, unique=True)
        if possible_edges
        else st.just([])
    )
    return Graph(edges=edges, vertices=vertices)


@st.composite
def graphs_with_vertex(draw):
    """A graph plus one of its vertices (used for per-vertex properties)."""
    graph = draw(graphs())
    vertex = draw(st.sampled_from(sorted(graph.vertices())))
    return graph, vertex


@st.composite
def graphs_with_edits(draw):
    """A graph plus a sequence of edge insertions / deletions to replay."""
    graph = draw(graphs())
    vertices = sorted(graph.vertices())
    num_edits = draw(st.integers(min_value=1, max_value=20))
    edits = []
    for _ in range(num_edits):
        u = draw(st.sampled_from(vertices))
        v = draw(st.sampled_from(vertices))
        edits.append((u, v))
    return graph, edits


SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Core decomposition
# ---------------------------------------------------------------------------
@SETTINGS
@given(graphs())
def test_core_numbers_match_networkx(graph):
    assert core_numbers(graph) == nx.core_number(to_networkx(graph))


@SETTINGS
@given(graphs(), st.integers(min_value=0, max_value=6))
def test_k_core_matches_networkx(graph, k):
    expected = set(nx.k_core(to_networkx(graph), k).nodes())
    assert k_core(graph, k) == expected


@SETTINGS
@given(graphs())
def test_korder_is_always_a_valid_removal_order(graph):
    KOrder.from_graph(graph).validate()


@SETTINGS
@given(graphs())
def test_core_number_bounded_by_degree(graph):
    core = core_numbers(graph)
    for vertex, value in core.items():
        assert 0 <= value <= graph.degree(vertex)


# ---------------------------------------------------------------------------
# Incremental maintenance
# ---------------------------------------------------------------------------
@SETTINGS
@given(graphs_with_edits())
def test_incremental_maintenance_matches_recomputation(data):
    graph, edits = data
    maintainer = CoreMaintainer(graph)
    for u, v in edits:
        if u == v:
            continue
        if maintainer.graph.has_edge(u, v):
            maintainer.remove_edge(u, v)
        else:
            maintainer.insert_edge(u, v)
        assert maintainer.core_numbers() == core_numbers(maintainer.graph)


@SETTINGS
@given(graphs_with_edits(), st.integers(min_value=1, max_value=4))
def test_apply_delta_matches_recomputation_and_reports_shell_pool(data, k):
    graph, edits = data
    maintainer = CoreMaintainer(graph)
    inserted = [edge for edge in edits if not graph.has_edge(*edge) and edge[0] != edge[1]]
    removed = [edge for edge in edits if graph.has_edge(*edge)]
    delta = EdgeDelta.from_iterables(inserted=inserted, removed=removed)
    effect = maintainer.apply_delta(delta, k=k)
    assert maintainer.core_numbers() == core_numbers(maintainer.graph)
    for vertex in effect.affected:
        assert maintainer.core(vertex) == k - 1


# ---------------------------------------------------------------------------
# Followers and anchored cores
# ---------------------------------------------------------------------------
@SETTINGS
@given(graphs_with_vertex(), st.integers(min_value=1, max_value=5))
def test_fast_follower_computation_is_exact(data, k):
    graph, vertex = data
    core = core_numbers(graph)
    if core[vertex] >= k:
        return
    fast = marginal_followers(graph, k, vertex, core)
    shell = full_shell_followers(graph, k, vertex, core)
    exact = follower_gain(graph, k, [], vertex)
    assert fast == shell == exact


@SETTINGS
@given(graphs(), st.integers(min_value=1, max_value=5))
def test_anchored_core_contains_plain_core_and_anchors(graph, k):
    anchors = sorted(graph.vertices())[:2]
    anchored = anchored_k_core(graph, k, anchors)
    assert k_core(graph, k) <= anchored
    assert set(anchors) <= anchored


@SETTINGS
@given(graphs(), st.integers(min_value=1, max_value=4))
def test_anchored_core_is_monotone_in_anchor_set(graph, k):
    vertices = sorted(graph.vertices())
    small = anchored_k_core(graph, k, vertices[:1])
    large = anchored_k_core(graph, k, vertices[:3])
    assert small <= large


@SETTINGS
@given(graphs(), st.integers(min_value=1, max_value=4))
def test_followers_have_degree_at_least_k_in_anchored_core(graph, k):
    anchors = sorted(graph.vertices())[:2]
    anchored = anchored_k_core(graph, k, anchors)
    followers = compute_followers(graph, k, anchors)
    for follower in followers:
        inside = sum(1 for n in graph.neighbors(follower) if n in anchored)
        assert inside >= k


@SETTINGS
@given(graphs(), st.integers(min_value=2, max_value=4))
def test_single_anchor_followers_sit_in_the_k_minus_1_shell(graph, k):
    core = core_numbers(graph)
    for vertex in sorted(graph.vertices())[:4]:
        if core[vertex] >= k:
            continue
        for follower in follower_gain(graph, k, [], vertex):
            assert core[follower] == k - 1


@SETTINGS
@given(graphs(max_vertices=10), st.integers(min_value=1, max_value=3))
def test_exact_k2_solver_matches_brute_force(graph, budget):
    from repro.anchored.bruteforce import BruteForceAnchoredKCore
    from repro.anchored.exact_small_k import solve_k2

    exact = solve_k2(graph, budget)
    brute = BruteForceAnchoredKCore(graph, 2, budget, max_combinations=10_000_000).select()
    assert exact.num_followers == brute.num_followers
