"""Unit tests for the execution-backend protocol, registry and auto policy."""

from __future__ import annotations

import pytest

from repro.anchored.greedy import GreedyAnchoredKCore
from repro.backends import (
    BACKEND_COMPACT,
    BACKEND_DICT,
    BACKEND_NUMBA,
    BACKEND_NUMPY,
    BACKEND_SHARDED,
    COMPACT_THRESHOLD,
    WORKLOAD_AMORTIZED,
    WORKLOAD_ONE_SHOT,
    available_backends,
    backend_availability,
    backend_info,
    get_backend,
    numba_available,
    numpy_available,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.backends import registry as backend_registry
from repro.backends.dict_backend import DictBackend
from repro.cores.maintenance import CoreMaintainer
from repro.engine import StreamingAVTEngine
from repro.errors import ParameterError
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy is not installed")


def _expected_auto_winner() -> str:
    """What the priority ladder should pick on a large amortised workload."""
    if numba_available():
        return BACKEND_NUMBA
    if numpy_available():
        return BACKEND_NUMPY
    return BACKEND_COMPACT


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway backends without leaking them."""
    before = dict(backend_registry._REGISTRY)
    instances = dict(backend_registry._INSTANCES)
    yield
    backend_registry._REGISTRY.clear()
    backend_registry._REGISTRY.update(before)
    backend_registry._INSTANCES.clear()
    backend_registry._INSTANCES.update(instances)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = registered_backends()
        assert BACKEND_DICT in names and BACKEND_COMPACT in names and BACKEND_NUMPY in names
        assert BACKEND_NUMBA in names
        assert BACKEND_SHARDED in names

    def test_available_backends_reflects_numpy_gate(self):
        names = available_backends()
        assert BACKEND_DICT in names and BACKEND_COMPACT in names
        assert BACKEND_SHARDED in names  # pure stdlib, always available
        assert (BACKEND_NUMPY in names) == numpy_available()
        assert (BACKEND_NUMBA in names) == numba_available()

    def test_backend_info_rows(self):
        rows = {row["name"]: row for row in backend_info()}
        assert rows[BACKEND_DICT]["available"] and rows[BACKEND_DICT]["config"] == {}
        assert rows[BACKEND_COMPACT]["auto_priority"] > rows[BACKEND_DICT]["auto_priority"]
        sharded = rows[BACKEND_SHARDED]
        assert sharded["available"]
        assert {"num_shards", "partitioner", "executor", "max_workers"} <= set(
            sharded["config"]
        )
        # The multi-process backend must never win the auto policy.
        assert sharded["auto_priority"] < rows[BACKEND_COMPACT]["auto_priority"]

    def test_get_backend_passes_instances_through(self):
        instance = get_backend("dict")
        assert get_backend(instance, 10**9) is instance

    def test_get_backend_caches_instances(self):
        assert get_backend("compact") is get_backend("compact", 5)

    def test_unknown_backend_raises(self):
        with pytest.raises(ParameterError):
            get_backend("warp")
        with pytest.raises(ParameterError):
            resolve_backend("warp", 0)

    def test_duplicate_registration_raises_unless_replaced(self, scratch_registry):
        register_backend("scratch", DictBackend)
        with pytest.raises(ParameterError):
            register_backend("scratch", DictBackend)
        register_backend("scratch", DictBackend, replace=True)

    def test_auto_name_is_reserved(self):
        with pytest.raises(ParameterError):
            register_backend("auto", DictBackend)

    def test_unavailable_backend_rejected_by_name_and_skipped_by_auto(
        self, scratch_registry
    ):
        register_backend(
            "vapour", DictBackend, auto_priority=999, is_available=lambda: False
        )
        assert "vapour" not in available_backends()
        with pytest.raises(ParameterError):
            get_backend("vapour")
        # auto must skip the unavailable candidate despite its priority.
        assert resolve_backend("auto", COMPACT_THRESHOLD) != "vapour"

    def test_availability_is_probed_even_for_cached_instances(self, scratch_registry):
        available = True
        register_backend("flaky", DictBackend, is_available=lambda: available)
        assert get_backend("flaky") is get_backend("flaky")  # instance cached
        available = False
        with pytest.raises(ParameterError):
            get_backend("flaky")

    def test_custom_backend_usable_end_to_end(self, scratch_registry):
        class TracingBackend(DictBackend):
            name = "tracing"
            index_builds = 0

            def build_core_index(self, graph):
                TracingBackend.index_builds += 1
                return super().build_core_index(graph)

        register_backend("tracing", TracingBackend)
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        result = GreedyAnchoredKCore(graph, 2, 1, backend="tracing").select()
        assert TracingBackend.index_builds == 1
        reference = GreedyAnchoredKCore(graph, 2, 1, backend="dict").select()
        assert result.anchors == reference.anchors


class TestAutoPolicy:
    def test_small_graphs_resolve_to_dict(self):
        assert resolve_backend("auto", COMPACT_THRESHOLD - 1) == BACKEND_DICT

    def test_large_amortised_workloads_pick_highest_priority(self):
        expected = _expected_auto_winner()
        assert resolve_backend("auto", COMPACT_THRESHOLD) == expected
        assert (
            resolve_backend("auto", COMPACT_THRESHOLD, workload=WORKLOAD_AMORTIZED)
            == expected
        )

    def test_one_shot_cascades_stay_on_dict_at_any_size(self):
        assert resolve_backend("auto", 10**9, workload=WORKLOAD_ONE_SHOT) == BACKEND_DICT

    def test_explicit_names_bypass_the_policy(self):
        assert resolve_backend("dict", 10**9) == BACKEND_DICT
        assert resolve_backend("compact", 1, workload=WORKLOAD_ONE_SHOT) == BACKEND_COMPACT

    def test_unknown_workload_raises(self):
        with pytest.raises(ParameterError):
            resolve_backend("auto", 10, workload="batch")

    def test_korder_with_supplied_decomposition_stays_on_dict_under_auto(
        self, monkeypatch
    ):
        """A lone deg+ pass is one-shot work: auto must not build a snapshot."""
        from repro.cores.decomposition import core_decomposition
        from repro.cores.korder import KOrder
        from repro.graph.compact import CompactGraph

        graph = Graph(edges=[(i, i + 1) for i in range(COMPACT_THRESHOLD + 10)])
        decomposition = core_decomposition(graph, backend="dict")

        def boom(*args, **kwargs):
            raise AssertionError("snapshot built for a one-shot deg+ pass")

        monkeypatch.setattr(CompactGraph, "from_graph", classmethod(boom))
        korder = KOrder(graph, decomposition=decomposition, backend="auto")
        assert korder.remaining_degree(0) == 1


class TestEngineReResolution:
    """The ROADMAP footgun: an engine started empty must not stay on dict."""

    @staticmethod
    def _growth_delta(num_vertices: int) -> EdgeDelta:
        return EdgeDelta.from_iterables(
            inserted=[(i, i + 1) for i in range(num_vertices - 1)], removed=[]
        )

    def test_empty_auto_engine_upgrades_after_crossing_threshold(self):
        engine = StreamingAVTEngine(backend="auto", batch_size=None)
        assert engine.backend == BACKEND_DICT
        engine.ingest(self._growth_delta(COMPACT_THRESHOLD + 64))
        engine.flush()
        assert engine.backend == _expected_auto_winner()
        # The maintainer migrated (state intact, traversals keep working).
        engine._maintainer.validate()
        engine.ingest_insert(0, 2)
        engine.flush()
        answer = engine.query(k=1, budget=0, warm=False)
        assert answer.anchored_core_size == COMPACT_THRESHOLD + 64

    def test_explicit_dict_engine_never_upgrades(self):
        engine = StreamingAVTEngine(backend="dict", batch_size=None)
        engine.ingest(self._growth_delta(COMPACT_THRESHOLD + 64))
        engine.flush()
        assert engine.backend == BACKEND_DICT

    def test_small_auto_engine_stays_on_dict(self):
        engine = StreamingAVTEngine(backend="auto", batch_size=None)
        engine.ingest(self._growth_delta(16))
        engine.flush()
        assert engine.backend == BACKEND_DICT

    def test_checkpoint_with_unregistered_backend_instance_fails_fast(self, tmp_path):
        from repro.errors import CheckpointError

        class OrphanBackend(DictBackend):
            name = "orphan"

        engine = StreamingAVTEngine(backend=OrphanBackend(), batch_size=None)
        engine.ingest_insert(0, 1)
        with pytest.raises(CheckpointError):
            engine.checkpoint(tmp_path / "orphan.ckpt")

    def test_checkpoint_with_registered_backend_instance_round_trips(
        self, tmp_path, scratch_registry
    ):
        class AdoptedBackend(DictBackend):
            name = "adopted"

        register_backend("adopted", AdoptedBackend)
        engine = StreamingAVTEngine(backend=AdoptedBackend(), batch_size=None)
        engine.ingest_insert(0, 1)
        engine.flush()
        path = tmp_path / "adopted.ckpt"
        engine.checkpoint(path)
        restored = StreamingAVTEngine.restore(path)
        assert restored.backend == "adopted"
        assert restored.core_numbers() == engine.core_numbers()

    def test_restored_engine_re_resolves_from_checkpoint(self, tmp_path):
        engine = StreamingAVTEngine(backend="auto", batch_size=None)
        engine.ingest(self._growth_delta(COMPACT_THRESHOLD + 64))
        engine.flush()
        path = tmp_path / "grown.ckpt"
        engine.checkpoint(path)
        restored = StreamingAVTEngine.restore(path)
        # The checkpoint stores the *policy* ("auto"); the restored engine
        # resolves it against the restored (large) graph immediately.
        assert restored.backend == engine.backend


class TestMaintainerSwitch:
    def test_switch_to_same_backend_is_noop(self):
        maintainer = CoreMaintainer(Graph(edges=[(0, 1)]), backend="dict")
        assert not maintainer.switch_backend("dict")
        assert maintainer.backend == BACKEND_DICT

    def test_switch_migrates_without_recomputation(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        maintainer = CoreMaintainer(graph, backend="dict")
        # Corrupt one maintained value: a migration must carry it over
        # verbatim (proving no decomposition re-ran), not silently heal it.
        maintainer._kernel._core[3] = 7
        assert maintainer.switch_backend("compact")
        assert maintainer.core(3) == 7


@needs_numpy
class TestNumpyKernels:
    def test_numpy_graph_shares_interner_contract(self):
        from repro.backends.numpy_backend import NumpyGraph
        from repro.graph.compact import CompactGraph

        graph = Graph(edges=[(1, 2), (2, 3)], vertices=[1, 2, 3, 99])
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        ngraph = NumpyGraph(cgraph)
        assert ngraph.interner is cgraph.interner
        assert ngraph.indptr.tolist() == cgraph.indptr
        assert ngraph.indices.tolist() == cgraph.indices
        assert ngraph.num_vertices == 4 and ngraph.num_edges == 2
        assert ngraph.row.shape[0] == 2 * graph.num_edges

    def test_numpy_peel_matches_compact_peel(self):
        from repro.backends.numpy_backend import NumpyGraph, numpy_peel
        from repro.cores.decomposition import compact_peel
        from repro.graph.compact import CompactGraph

        graph = Graph(
            edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (5, 6)],
            vertices=list(range(7)) + ["lonely"],
        )
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        core_c, order_c = compact_peel(cgraph, anchor_ids=[0])
        core_n, order_n = numpy_peel(NumpyGraph(cgraph), anchor_ids=[0])
        assert core_n.tolist() == core_c
        assert order_n == order_c

    def test_numpy_peel_empty_graph(self):
        from repro.backends.numpy_backend import NumpyGraph, numpy_peel

        core, order = numpy_peel(NumpyGraph.from_graph(Graph()))
        assert core.tolist() == [] and order == []

    def test_numpy_k_core_matches_compact(self):
        from repro.backends.numpy_backend import NumpyGraph, numpy_k_core_ids
        from repro.cores.decomposition import compact_k_core_ids
        from repro.graph.compact import CompactGraph

        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)], vertices=[0, 1, 2, 3, 9])
        cgraph = CompactGraph.from_graph(graph, ordered=False)
        ngraph = NumpyGraph(cgraph)
        for k in range(4):
            assert set(numpy_k_core_ids(ngraph, k).tolist()) == compact_k_core_ids(
                cgraph, k
            )


class TestAvailabilityReasons:
    """The registry reports *why* a tier is skipped, not just that it is."""

    def test_available_backends_report_no_reason(self):
        report = backend_availability()
        assert report[BACKEND_DICT] is None
        assert report[BACKEND_COMPACT] is None
        assert report[BACKEND_SHARDED] is None

    def test_missing_import_reason(self, monkeypatch):
        # The env switch takes precedence, so clear it to probe the
        # import-gate reason itself (the suite may run under
        # REPRO_DISABLE_NUMBA=1 to exercise the fallback path).
        monkeypatch.delenv("REPRO_DISABLE_NUMBA", raising=False)
        report = backend_availability()
        if numba_available():
            assert report[BACKEND_NUMBA] is None
        else:
            assert report[BACKEND_NUMBA] == "numba is not installed"

    def test_env_disable_reasons(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        report = backend_availability()
        assert report[BACKEND_NUMBA] == "disabled via REPRO_DISABLE_NUMBA"
        assert report[BACKEND_NUMPY] == "disabled via REPRO_DISABLE_NUMPY"

    def test_get_backend_error_names_the_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        with pytest.raises(ParameterError, match="disabled via REPRO_DISABLE_NUMBA"):
            get_backend(BACKEND_NUMBA)

    def test_disabled_numba_falls_back_without_warnings(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        resolved = resolve_backend("auto", COMPACT_THRESHOLD)
        assert resolved == (BACKEND_NUMPY if numpy_available() else BACKEND_COMPACT)
        get_backend("auto", COMPACT_THRESHOLD)
        assert not recwarn.list

    def test_generic_reason_without_provider(self, scratch_registry):
        register_backend("vapourware", DictBackend, is_available=lambda: False)
        assert backend_availability()["vapourware"] == "a runtime dependency is missing"

    def test_backend_info_includes_reason_column(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        rows = {row["name"]: row for row in backend_info()}
        assert rows[BACKEND_NUMBA]["reason"] == "disabled via REPRO_DISABLE_NUMBA"
        assert rows[BACKEND_DICT]["reason"] is None


@needs_numpy
class TestNumbaKernels:
    """Direct-instance checks of the compiled tier's kernels.

    :class:`~repro.backends.numba_backend.NumbaBackend` only *requires*
    numpy — without numba the same kernels run interpreted (the ``_jit``
    decorator degrades to identity), so these tests exercise the exact code
    the JIT compiles even on interpreters without numba, while the registry
    gate keeps ``backend="numba"`` unavailable there.
    """

    @pytest.fixture
    def backend(self):
        from repro.backends.numba_backend import NumbaBackend

        return NumbaBackend()

    @pytest.fixture
    def graph(self):
        from repro.graph.generators import chung_lu_graph

        return chung_lu_graph(160, 480, seed=11)

    def test_decompose_matches_compact_bit_identically(self, backend, graph):
        reference = get_backend("compact").decompose(graph, frozenset({3}))
        result = backend.decompose(graph, frozenset({3}))
        assert dict(result.core) == dict(reference.core)
        assert result.order == reference.order

    def test_k_core_matches_compact(self, backend, graph):
        for k in (1, 2, 3):
            assert backend.k_core(graph, k) == get_backend("compact").k_core(graph, k)

    def test_core_index_kernel_matches_compact(self, backend, graph):
        k = 3
        numba_kernel = backend.build_core_index(graph)
        compact_kernel = get_backend("compact").build_core_index(graph)
        for kernel in (numba_kernel, compact_kernel):
            kernel.refresh(set())
        assert numba_kernel.core_numbers() == compact_kernel.core_numbers()
        assert numba_kernel.removal_ranks() == compact_kernel.removal_ranks()
        assert numba_kernel.plain_k_core(k) == compact_kernel.plain_k_core(k)
        candidates = sorted(numba_kernel.candidate_anchors(k, True))[:6]
        assert candidates == sorted(compact_kernel.candidate_anchors(k, True))[:6]
        for candidate in candidates:
            for full_shell in (False, True):
                got = numba_kernel.marginal_followers(k, candidate, full_shell)
                want = compact_kernel.marginal_followers(k, candidate, full_shell)
                assert got == want, (candidate, full_shell)
        anchor = candidates[0]
        assert numba_kernel.commit_anchor(anchor, k) == compact_kernel.commit_anchor(
            anchor, k
        )
        assert numba_kernel.core_numbers() == compact_kernel.core_numbers()

    def test_maintenance_matches_dict_through_the_maintainer(self, backend, graph):
        # Through CoreMaintainer, the owner of the kernel contract: the dict
        # kernel reads the maintainer-mutated graph while compact/numba keep
        # their own arena adjacency, so the maintainer is the only fair rig.
        numba_maintainer = CoreMaintainer(graph, backend=backend)
        dict_maintainer = CoreMaintainer(graph, backend="dict")
        edges = list(graph.edges())[:12]
        for u, v in edges:
            assert numba_maintainer.remove_edge(u, v) == dict_maintainer.remove_edge(
                u, v
            ), (u, v)
            assert numba_maintainer.core_numbers() == dict_maintainer.core_numbers()
            assert numba_maintainer.insert_edge(u, v) == dict_maintainer.insert_edge(
                u, v
            )
            assert numba_maintainer.core_numbers() == dict_maintainer.core_numbers()
        numba_maintainer.validate()

    def test_warmup_records_span_and_gauge(self):
        from repro.backends.numba_backend import JIT_ENABLED, warmup_kernels
        from repro.obs import global_registry

        elapsed = warmup_kernels(force=True)
        assert elapsed >= 0.0
        snapshot = global_registry().snapshot()
        gauges = [
            metric
            for metric in snapshot
            if metric["name"] == "backend.numba.warmup_seconds"
        ]
        assert gauges, "warmup gauge missing from the global registry"
        assert gauges[0]["labels"] == {"backend": BACKEND_NUMBA}
        # Repeat calls are free once warm: no recompilation per construction.
        assert warmup_kernels() == 0.0
        assert isinstance(JIT_ENABLED, bool)
