"""Unit tests for the sweep runner and the tidy experiment table."""

from __future__ import annotations

import pytest

from repro.avt.problem import AVTProblem
from repro.bench.runner import (
    ExperimentTable,
    TrackerSpec,
    default_trackers,
    run_sweep,
    run_tracker,
)
from repro.bench.workloads import build_problem, clear_workload_cache, dataset_k_values
from repro.avt.trackers import GreedyTracker
from repro.errors import ParameterError
from repro.graph.datasets import toy_example_evolving_graph


@pytest.fixture
def toy_problem():
    return AVTProblem(toy_example_evolving_graph(), k=3, budget=2, name="toy")


class TestTrackerSpecs:
    def test_default_lineup_matches_paper(self):
        names = [spec.name for spec in default_trackers()]
        assert names == ["OLAK", "Greedy", "IncAVT", "RCM"]

    def test_brute_force_included_on_request(self):
        names = [spec.name for spec in default_trackers(include_brute_force=True)]
        assert names[-1] == "Brute-force"

    def test_build_creates_fresh_instances(self):
        spec = default_trackers()[1]
        assert spec.build() is not spec.build()


class TestRunTracker:
    def test_row_schema(self, toy_problem):
        result, row = run_tracker(toy_problem, TrackerSpec("Greedy", GreedyTracker))
        assert result.algorithm == "Greedy"
        assert row["dataset"] == "toy"
        assert row["k"] == 3 and row["l"] == 2 and row["T"] == 2
        assert row["followers"] == result.total_followers
        assert row["visited"] == result.total_visited_vertices
        assert len(row["followers_series"]) == 2
        assert row["time_s"] >= 0


class TestExperimentTable:
    def make_table(self):
        return ExperimentTable(
            [
                {"dataset": "a", "algorithm": "X", "k": 2, "time_s": 1.0},
                {"dataset": "a", "algorithm": "Y", "k": 2, "time_s": 2.0},
                {"dataset": "a", "algorithm": "X", "k": 3, "time_s": 3.0},
                {"dataset": "b", "algorithm": "X", "k": 2, "time_s": 4.0},
            ]
        )

    def test_len_iter_rows(self):
        table = self.make_table()
        assert len(table) == 4
        assert len(list(table)) == 4
        assert table.rows()[0]["dataset"] == "a"

    def test_filter(self):
        table = self.make_table()
        assert len(table.filter(dataset="a")) == 3
        assert len(table.filter(dataset="a", algorithm="X")) == 2
        assert len(table.filter(dataset="c")) == 0

    def test_column_and_distinct(self):
        table = self.make_table()
        assert table.column("time_s") == [1.0, 2.0, 3.0, 4.0]
        assert table.distinct("dataset") == ["a", "b"]
        assert table.distinct("algorithm") == ["X", "Y"]

    def test_series_groups_by_algorithm(self):
        table = self.make_table()
        series = table.filter(dataset="a").series(x="k", y="time_s")
        assert series["X"] == [(2, 1.0), (3, 3.0)]
        assert series["Y"] == [(2, 2.0)]

    def test_to_csv_round_trips_headers(self):
        table = self.make_table()
        csv_text = table.to_csv()
        header = csv_text.splitlines()[0]
        assert header.split(",") == ["dataset", "algorithm", "k", "time_s"]
        assert len(csv_text.splitlines()) == 5

    def test_to_csv_serialises_lists(self):
        table = ExperimentTable([{"algorithm": "X", "followers_series": [1, 2, 3]}])
        assert "1;2;3" in table.to_csv()

    def test_empty_table_to_csv(self):
        assert ExperimentTable().to_csv() == ""

    def test_append_and_extend(self):
        table = ExperimentTable()
        table.append({"a": 1})
        table.extend([{"a": 2}, {"a": 3}])
        assert table.column("a") == [1, 2, 3]


class TestRunSweep:
    def test_requires_problems(self):
        with pytest.raises(ParameterError):
            run_sweep([])

    def test_sweep_produces_one_row_per_tracker_and_problem(self, toy_problem):
        trackers = [TrackerSpec("Greedy", GreedyTracker)]
        table = run_sweep([toy_problem, toy_problem], trackers=trackers, extra_columns={"vary": "x"})
        assert len(table) == 2
        assert all(row["vary"] == "x" for row in table.rows())


class TestWorkloads:
    def test_build_problem_uses_spec_defaults(self):
        problem = build_problem("gnutella", num_snapshots=2, scale=0.15)
        assert problem.k == 3
        assert problem.name == "gnutella"
        assert problem.num_snapshots == 2

    def test_build_problem_caches_evolving_graph(self):
        clear_workload_cache()
        first = build_problem("gnutella", k=2, num_snapshots=2, scale=0.15)
        second = build_problem("gnutella", k=3, num_snapshots=2, scale=0.15)
        assert first.evolving_graph is second.evolving_graph

    def test_build_problem_rejects_bad_scale(self):
        with pytest.raises(ParameterError):
            build_problem("gnutella", scale=0)

    def test_dataset_k_values(self):
        assert dataset_k_values("gnutella") == (2, 3, 4)
