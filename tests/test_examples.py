"""Smoke tests: every bundled example runs end to end and prints its story.

The examples double as integration tests of the public API; they are executed
in-process (importing each module and calling ``main()``) so failures surface
as ordinary test failures with a traceback.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    """Import an example script as a module without executing ``main``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleInventory:
    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLES) >= 3
        assert "quickstart.py" in EXAMPLES

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_every_example_has_a_main_and_docstring(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} must define main()"
        assert module.__doc__, f"{name} must document what it demonstrates"


class TestExampleExecution:
    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs_and_prints(self, name, capsys):
        module = load_example(name)
        module.main()
        output = capsys.readouterr().out
        assert len(output.splitlines()) >= 5, f"{name} should narrate its result"

    def test_quickstart_tells_the_figure_1_story(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "3-core" in output
        assert "[8, 9, 12, 13, 16]" in output
        assert "Greedy" in output and "Brute-force" in output
        assert "IncAVT" in output

    def test_advertising_example_reports_cumulative_reach(self, capsys):
        module = load_example("advertising_placement.py")
        module.main()
        output = capsys.readouterr().out
        assert "Cumulative audience reached" in output
        assert "tracked" in output

    def test_retention_example_reports_three_policies(self, capsys):
        module = load_example("community_retention.py")
        module.main()
        output = capsys.readouterr().out
        assert "no anchors" in output
        assert "fixed anchors" in output
        assert "tracked anchors" in output
