"""Unit tests for the AVT problem and result containers."""

from __future__ import annotations

import pytest

from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.avt.problem import AVTProblem, AVTResult, SnapshotResult
from repro.errors import ParameterError
from repro.graph.datasets import toy_example_evolving_graph
from repro.graph.dynamic import SnapshotSequence
from repro.graph.static import Graph


def make_snapshot_result(timestamp: int, anchors=(1,), followers=(2, 3)) -> SnapshotResult:
    result = AnchoredKCoreResult(
        algorithm="Test",
        k=3,
        budget=2,
        anchors=tuple(anchors),
        followers=frozenset(followers),
        anchored_core_size=5 + len(followers),
        stats=SolverStats(candidates_evaluated=4, visited_vertices=10, runtime_seconds=0.5),
    )
    return SnapshotResult(
        timestamp=timestamp, result=result, num_vertices=17, num_edges=28
    )


class TestAVTProblem:
    def test_basic_construction(self, toy_evolving):
        problem = AVTProblem(toy_evolving, k=3, budget=2, name="toy")
        assert problem.num_snapshots == 2
        assert problem.k == 3
        assert problem.budget == 2

    def test_invalid_parameters(self, toy_evolving):
        with pytest.raises(ParameterError):
            AVTProblem(toy_evolving, k=0, budget=2)
        with pytest.raises(ParameterError):
            AVTProblem(toy_evolving, k=3, budget=-1)

    def test_from_snapshots(self):
        snapshots = [Graph(edges=[(1, 2)]), Graph(edges=[(1, 2), (2, 3)])]
        problem = AVTProblem.from_snapshots(snapshots, k=2, budget=1, name="seq")
        assert problem.num_snapshots == 2
        assert problem.name == "seq"

    def test_from_snapshot_sequence_object(self):
        sequence = SnapshotSequence([Graph(edges=[(1, 2)])])
        problem = AVTProblem.from_snapshots(sequence, k=2, budget=1)
        assert problem.num_snapshots == 1

    def test_truncated(self, toy_evolving):
        problem = AVTProblem(toy_evolving, k=3, budget=2)
        truncated = problem.truncated(1)
        assert truncated.num_snapshots == 1
        assert truncated.k == problem.k


class TestSnapshotResult:
    def test_convenience_accessors(self):
        snapshot = make_snapshot_result(0)
        assert snapshot.anchors == (1,)
        assert snapshot.num_followers == 2
        assert snapshot.timestamp == 0


class TestAVTResult:
    def test_aggregates(self):
        result = AVTResult(algorithm="Test", k=3, budget=2, problem_name="toy")
        result.append(make_snapshot_result(0, anchors=(1,), followers=(2, 3)))
        result.append(make_snapshot_result(1, anchors=(4,), followers=(5, 6, 7)))
        assert len(result) == 2
        assert result.followers_per_snapshot == [2, 3]
        assert result.total_followers == 5
        assert result.anchor_sets == [(1,), (4,)]
        assert result.total_runtime_seconds == pytest.approx(1.0)
        assert result.total_visited_vertices == 20
        assert result.total_candidates_evaluated == 8

    def test_aggregate_stats_merge(self):
        result = AVTResult(algorithm="Test", k=3, budget=2, problem_name="toy")
        result.append(make_snapshot_result(0))
        result.append(make_snapshot_result(1))
        merged = result.aggregate_stats()
        assert merged.candidates_evaluated == 8
        assert merged.visited_vertices == 20
        assert merged.runtime_seconds == pytest.approx(1.0)

    def test_summary_mentions_key_numbers(self):
        result = AVTResult(algorithm="Test", k=3, budget=2, problem_name="toy")
        result.append(make_snapshot_result(0))
        text = result.summary()
        assert "Test" in text and "toy" in text and "k=3" in text

    def test_iteration(self):
        result = AVTResult(algorithm="Test", k=3, budget=2, problem_name="toy")
        result.append(make_snapshot_result(0))
        assert [snapshot.timestamp for snapshot in result] == [0]
