"""Property tests for the delta-refresh subsystem (PR 5).

Two referees keep the incremental paths honest:

* **Kernel-level**: after any random anchor sequence, a kernel driven purely
  through :meth:`~repro.anchored.anchored_core.AnchoredCoreIndex.commit_anchor`
  must be observationally identical — core numbers, removal ranks, candidate
  sets, shell queries — to a kernel rebuilt with a full refresh for the same
  anchor set, on every registered backend; and the returned touched set must
  be exactly the core-number diff.
* **Solver-level**: the memoized Greedy (``incremental=True``, the default)
  must select bit-identical anchors and followers and report bit-identical
  instrumentation (``candidates_evaluated``, ``visited_vertices``) as the
  PR-4 full-recompute path (``incremental=False``), on seeded random graphs
  across every backend — while actually recomputing fewer cascades.

The same vertex-pool strategies as ``tests/test_backend_equivalence.py`` are
used so the interner paths (sparse ints, strings, mixed types) stay covered.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.backends import CoreIndexKernel, numpy_available
from repro.backends.dict_backend import DictBackend, DictCoreIndexKernel
from repro.backends.sharded_backend import ShardedBackend
from repro.graph.generators import chung_lu_graph
from repro.graph.static import Graph
from repro.ordering import tie_break_key

SETTINGS = settings(
    max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "50")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SHARDED = ShardedBackend(num_shards=3)

BACKENDS = [
    "dict",
    "compact",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(not numpy_available(), reason="numpy is not installed"),
    ),
    pytest.param(SHARDED, id="sharded"),
]

VERTEX_POOLS = (
    list(range(12)),
    [3, 7, 1000, 9999, -5, 0, 42, 18, 2, 61],
    ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"],
    [0, 1, 2, "x", "y", "z", 77, "alice", -3, "bob"],
)


@st.composite
def graphs(draw) -> Graph:
    pool = draw(st.sampled_from(VERTEX_POOLS))
    num_vertices = draw(st.integers(min_value=1, max_value=len(pool)))
    vertices = pool[:num_vertices]
    possible_edges = [
        (u, v) for i, u in enumerate(vertices) for v in vertices[i + 1 :]
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=3 * num_vertices, unique=True)
        if possible_edges
        else st.just([])
    )
    return Graph(edges=edges, vertices=vertices)


@st.composite
def commit_scenarios(draw):
    """A graph, a degree constraint and a sequence of anchors to commit."""
    graph = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=4))
    universe = sorted(graph.vertices(), key=tie_break_key)
    anchors = draw(st.lists(st.sampled_from(universe), max_size=4, unique=True))
    return graph, k, anchors


def _assert_index_state_equal(incremental: AnchoredCoreIndex, full: AnchoredCoreIndex):
    assert dict(incremental.core_numbers()) == dict(full.core_numbers())
    inc_ranks = incremental.kernel.removal_ranks()
    full_ranks = full.kernel.removal_ranks()
    assert inc_ranks is not None and full_ranks is not None
    assert dict(inc_ranks) == dict(full_ranks)
    assert incremental.candidate_anchors() == full.candidate_anchors()
    assert incremental.candidate_anchors(order_pruning=False) == full.candidate_anchors(
        order_pruning=False
    )
    assert incremental.all_non_core_vertices() == full.all_non_core_vertices()
    assert incremental.anchored_core_size() == full.anchored_core_size()
    assert incremental.shell() == full.shell()


@pytest.mark.parametrize("backend", BACKENDS)
@SETTINGS
@given(scenario=commit_scenarios())
def test_commit_anchor_matches_full_refresh(backend, scenario):
    """commit_anchor state == full refresh state after every single commit."""
    graph, k, anchors = scenario
    incremental = AnchoredCoreIndex(graph, k, backend=backend)
    committed = []
    for anchor in anchors:
        before = dict(incremental.core_numbers())
        touched = incremental.commit_anchor(anchor)
        committed.append(anchor)
        full = AnchoredCoreIndex(graph, k, anchors=committed, backend=backend)
        _assert_index_state_equal(incremental, full)
        # The touched set is the exact core-number diff (built-in kernels
        # never fall back to the unknown-change None).
        after = dict(incremental.core_numbers())
        expected = {
            vertex for vertex, value in after.items() if before[vertex] != value
        }
        assert touched == frozenset(expected)


@pytest.mark.parametrize("backend", BACKENDS)
@SETTINGS
@given(scenario=commit_scenarios())
def test_commit_existing_anchor_is_noop(backend, scenario):
    graph, k, anchors = scenario
    if not anchors:
        return
    index = AnchoredCoreIndex(graph, k, backend=backend)
    index.commit_anchor(anchors[0])
    before = dict(index.core_numbers())
    assert index.commit_anchor(anchors[0]) == frozenset()
    assert dict(index.core_numbers()) == before


@pytest.mark.parametrize("backend", BACKENDS)
@SETTINGS
@given(scenario=commit_scenarios())
def test_shell_histogram_queries_match_core_numbers(backend, scenario):
    """count/shell queries agree with the core map after incremental commits."""
    graph, k, anchors = scenario
    index = AnchoredCoreIndex(graph, k, backend=backend)
    for anchor in anchors:
        index.commit_anchor(anchor)
    core = dict(index.core_numbers())
    kernel = index.kernel
    for level in range(0, 6):
        assert kernel.count_core_at_least(level) == sum(
            1 for value in core.values() if value >= level
        )
        assert kernel.shell_vertices(level) == {
            vertex for vertex, value in core.items() if value == level
        }
        assert kernel.vertices_with_core_at_least(level) == {
            vertex for vertex, value in core.items() if value >= level
        }


@pytest.mark.parametrize("backend", BACKENDS)
@SETTINGS
@given(scenario=commit_scenarios(), budget=st.integers(min_value=0, max_value=4))
def test_greedy_memoized_equals_full_recompute(backend, scenario, budget):
    """Memoized Greedy == PR-4 Greedy: anchors, followers, stats.visited."""
    graph, k, initial_anchors, = scenario
    memoized = GreedyAnchoredKCore(
        graph, k, budget, backend=backend, incremental=True
    ).select()
    full = GreedyAnchoredKCore(
        graph, k, budget, backend=backend, incremental=False
    ).select()
    assert memoized.anchors == full.anchors
    assert memoized.followers == full.followers
    assert memoized.anchored_core_size == full.anchored_core_size
    assert memoized.stats.candidates_evaluated == full.stats.candidates_evaluated
    assert memoized.stats.visited_vertices == full.stats.visited_vertices
    # The full path recomputes every evaluation; the memoized path never
    # recomputes more than that.
    assert full.stats.candidates_recomputed == full.stats.candidates_evaluated
    assert full.stats.cache_hits == 0
    assert (
        memoized.stats.candidates_recomputed + memoized.stats.cache_hits
        == memoized.stats.candidates_evaluated
    )


def test_memoization_avoids_cascades_on_a_real_instance():
    """On a non-trivial graph most evaluations come from the gain cache."""
    graph = chung_lu_graph(1500, 4500, seed=11)
    result = GreedyAnchoredKCore(graph, 4, 6, backend="compact").select()
    stats = result.stats
    assert stats.iterations > 1
    assert stats.cache_hits > 0
    assert stats.candidates_recomputed < stats.candidates_evaluated
    assert len(stats.commit_seconds) == stats.iterations
    # And the selection is still exactly the full-recompute selection.
    baseline = GreedyAnchoredKCore(
        graph, 4, 6, backend="compact", incremental=False
    ).select()
    assert result.anchors == baseline.anchors
    assert result.followers == baseline.followers
    assert result.stats.visited_vertices == baseline.stats.visited_vertices


# ---------------------------------------------------------------------------
# Custom-backend fallback: kernels that do not implement commit_anchor
# ---------------------------------------------------------------------------
class _FallbackKernel(DictCoreIndexKernel):
    """A dict kernel with the incremental path hidden (protocol defaults)."""

    def commit_anchor(self, vertex, anchors):
        return CoreIndexKernel.commit_anchor(self, vertex, anchors)

    def marginal_followers_with_region(self, k, candidate):
        return CoreIndexKernel.marginal_followers_with_region(self, k, candidate)


class _FallbackBackend(DictBackend):
    name = "dict-fallback"

    def build_core_index(self, graph):
        return _FallbackKernel(graph)


@SETTINGS
@given(scenario=commit_scenarios(), budget=st.integers(min_value=0, max_value=3))
def test_custom_backend_without_incremental_path_keeps_working(scenario, budget):
    """The protocol defaults (full refresh, None touched/region) stay exact."""
    graph, k, _ = scenario
    fallback = GreedyAnchoredKCore(
        graph, k, budget, backend=_FallbackBackend(), incremental=True
    ).select()
    reference = GreedyAnchoredKCore(
        graph, k, budget, backend="dict", incremental=False
    ).select()
    assert fallback.anchors == reference.anchors
    assert fallback.followers == reference.followers
    assert fallback.stats.candidates_evaluated == reference.stats.candidates_evaluated
    assert fallback.stats.visited_vertices == reference.stats.visited_vertices
    # Nothing is cacheable without a region, so nothing may be served stale.
    assert fallback.stats.cache_hits == 0


@SETTINGS
@given(scenario=commit_scenarios())
def test_fallback_commit_returns_none_and_full_state(scenario):
    graph, k, anchors = scenario
    index = AnchoredCoreIndex(graph, k, backend=_FallbackBackend())
    committed = []
    for anchor in anchors:
        touched = index.commit_anchor(anchor)
        committed.append(anchor)
        assert touched is None
        full = AnchoredCoreIndex(graph, k, anchors=committed, backend="dict")
        assert dict(index.core_numbers()) == dict(full.core_numbers())
        assert index.candidate_anchors() == full.candidate_anchors()
