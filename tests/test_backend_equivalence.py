"""Property tests: all registered execution backends are observationally identical.

The compact, numpy, numba and sharded backends (:mod:`repro.backends`)
re-implement every hot kernel — peeling decomposition, k-core cascades, the
K-order remaining degrees, follower computation, greedy selection,
incremental maintenance — over flat int arrays / numpy arrays / JIT-compiled
kernels / partitioned shard states with boundary exchange.  These tests pin
the five-way contract that makes ``backend="auto"`` safe: for *any* graph
(isolated vertices, non-integer and mixed-type vertex ids included) every
backend returns results identical to the dict reference, down to the removal
order and the instrumentation counters.  Each test runs dict vs compact,
dict vs sharded (3 shards, so boundary exchange is always exercised; the
executor follows ``REPRO_SHARD_EXECUTOR``, which the CI spawn job sets to
``process``) and, when the optional dependency is installed, dict vs numpy
and dict vs numba (each skipped cleanly otherwise — the import gates are
part of the contract, and the no-numpy/no-numba CI jobs exercise them).

``REPRO_HYPOTHESIS_EXAMPLES`` overrides the example count per property (the
CI spawn job lowers it: every sharded op there is a multi-process round).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.followers import anchored_k_core
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.olak import OLAKAnchoredKCore
from repro.anchored.rcm import RCMAnchoredKCore
from repro.backends import numba_available, numpy_available
from repro.backends.sharded_backend import ShardedBackend
from repro.cores.decomposition import (
    anchored_core_decomposition,
    core_decomposition,
    k_core,
)
from repro.cores.korder import KOrder
from repro.cores.maintenance import CoreMaintainer
from repro.engine import StreamingAVTEngine
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph

SETTINGS = settings(
    max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "50")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Three shards so every sharded test crosses shard boundaries; the executor
#: (serial locally, process under the CI spawn job) comes from the
#: environment, like a real deployment would configure it.
SHARDED = ShardedBackend(num_shards=3)

#: The non-reference backends, each compared against the dict reference.
#: numpy and numba are skipped (not failed) on interpreters missing them.
OTHER_BACKENDS = [
    "compact",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(not numpy_available(), reason="numpy is not installed"),
    ),
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(not numba_available(), reason="numba is not installed"),
    ),
    pytest.param(SHARDED, id="sharded"),
]

#: Vertex pools exercising the interner: contiguous ints, sparse ints,
#: strings, and a mixed-type universe (ints and strings together).
VERTEX_POOLS = (
    list(range(12)),
    [3, 7, 1000, 9999, -5, 0, 42, 18, 2, 61],
    ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"],
    [0, 1, 2, "x", "y", "z", 77, "alice", -3, "bob"],
)


@st.composite
def graphs(draw) -> Graph:
    """Random small graphs over a drawn vertex pool, isolated vertices kept."""
    pool = draw(st.sampled_from(VERTEX_POOLS))
    num_vertices = draw(st.integers(min_value=1, max_value=len(pool)))
    vertices = pool[:num_vertices]
    possible_edges = [
        (u, v) for i, u in enumerate(vertices) for v in vertices[i + 1 :]
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=3 * num_vertices, unique=True)
        if possible_edges
        else st.just([])
    )
    # Only some vertices carry edges; the rest stay isolated on purpose.
    return Graph(edges=edges, vertices=vertices)


@st.composite
def graphs_with_anchors(draw):
    graph = draw(graphs())
    universe = sorted(graph.vertices(), key=repr)
    anchors = draw(st.lists(st.sampled_from(universe), max_size=3, unique=True))
    return graph, anchors


@st.composite
def graphs_with_k(draw):
    graph = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=4))
    return graph, k


def _backend_name(backend) -> str:
    """The registry name of a ``backend=`` parameter (string or instance)."""
    return backend if isinstance(backend, str) else backend.name


def _assert_results_equal(first, second):
    assert first.anchors == second.anchors
    assert first.followers == second.followers
    assert first.anchored_core_size == second.anchored_core_size
    assert first.stats.candidates_evaluated == second.stats.candidates_evaluated
    assert first.stats.visited_vertices == second.stats.visited_vertices


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph_and_anchors=graphs_with_anchors())
def test_decomposition_identical_across_backends(other, graph_and_anchors):
    graph, anchors = graph_and_anchors
    dict_result = anchored_core_decomposition(graph, anchors, backend="dict")
    other_result = anchored_core_decomposition(graph, anchors, backend=other)
    assert dict(dict_result.core) == dict(other_result.core)
    assert dict_result.order == other_result.order
    assert dict_result.anchors == other_result.anchors


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph_and_k=graphs_with_k())
def test_k_core_and_anchored_cascade_identical(other, graph_and_k):
    graph, k = graph_and_k
    assert k_core(graph, k, backend="dict") == k_core(graph, k, backend=other)
    anchors = sorted(graph.vertices(), key=repr)[:2]
    assert anchored_k_core(graph, k, anchors, backend="dict") == anchored_k_core(
        graph, k, anchors, backend=other
    )


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph=graphs())
def test_korder_identical_across_backends(other, graph):
    dict_order = KOrder(graph, backend="dict")
    other_order = KOrder(graph, backend=other)
    assert dict_order.core_numbers() == other_order.core_numbers()
    assert dict_order.shells() == other_order.shells()
    for vertex in graph.vertices():
        assert dict_order.rank(vertex) == other_order.rank(vertex)
        assert dict_order.remaining_degree(vertex) == other_order.remaining_degree(vertex)
    other_order.validate()


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph_and_k=graphs_with_k())
def test_index_candidates_and_followers_identical(other, graph_and_k):
    graph, k = graph_and_k
    dict_index = AnchoredCoreIndex(graph, k, backend="dict")
    other_index = AnchoredCoreIndex(graph, k, backend=other)
    assert dict_index.backend == "dict"
    assert other_index.backend == _backend_name(other)
    assert dict(dict_index.core_numbers()) == dict(other_index.core_numbers())
    assert dict_index.candidate_anchors() == other_index.candidate_anchors()
    assert dict_index.candidate_anchors(order_pruning=False) == other_index.candidate_anchors(
        order_pruning=False
    )
    assert dict_index.all_non_core_vertices() == other_index.all_non_core_vertices()
    assert dict_index.plain_k_core() == other_index.plain_k_core()
    assert dict_index.shell() == other_index.shell()
    for candidate in sorted(dict_index.all_non_core_vertices(), key=repr):
        assert dict_index.marginal_followers(candidate) == other_index.marginal_followers(
            candidate
        )
        assert dict_index.marginal_followers(
            candidate, full_shell=True
        ) == other_index.marginal_followers(candidate, full_shell=True)
    assert dict_index.visited_vertices == other_index.visited_vertices
    assert dict_index.candidates_evaluated == other_index.candidates_evaluated


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph_and_k=graphs_with_k(), budget=st.integers(min_value=0, max_value=3))
def test_greedy_identical_across_backends(other, graph_and_k, budget):
    graph, k = graph_and_k
    _assert_results_equal(
        GreedyAnchoredKCore(graph, k, budget, backend="dict").select(),
        GreedyAnchoredKCore(graph, k, budget, backend=other).select(),
    )


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph_and_k=graphs_with_k(), budget=st.integers(min_value=0, max_value=3))
def test_olak_identical_across_backends(other, graph_and_k, budget):
    graph, k = graph_and_k
    _assert_results_equal(
        OLAKAnchoredKCore(graph, k, budget, backend="dict").select(),
        OLAKAnchoredKCore(graph, k, budget, backend=other).select(),
    )


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph_and_k=graphs_with_k(), budget=st.integers(min_value=0, max_value=3))
def test_rcm_identical_across_backends(other, graph_and_k, budget):
    graph, k = graph_and_k
    _assert_results_equal(
        RCMAnchoredKCore(graph, k, budget, backend="dict").select(),
        RCMAnchoredKCore(graph, k, budget, backend=other).select(),
    )


@st.composite
def edit_scripts(draw):
    """A starting graph plus a sequence of edge insertions/removals."""
    graph = draw(graphs())
    pool = sorted(graph.vertices(), key=repr)
    operations = []
    if len(pool) >= 2:
        pairs = [(u, v) for i, u in enumerate(pool) for v in pool[i + 1 :]]
        operations = draw(
            st.lists(
                st.tuples(st.booleans(), st.sampled_from(pairs)),
                max_size=25,
            )
        )
    return graph, operations


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(script=edit_scripts())
def test_maintenance_identical_across_backends(other, script):
    graph, operations = script
    dict_maintainer = CoreMaintainer(graph, backend="dict")
    other_maintainer = CoreMaintainer(graph, backend=other)
    for insert, (u, v) in operations:
        if insert:
            assert dict_maintainer.insert_edge(u, v) == other_maintainer.insert_edge(u, v)
        else:
            assert dict_maintainer.remove_edge(u, v) == other_maintainer.remove_edge(u, v)
        assert dict_maintainer._visited_last == other_maintainer._visited_last
    assert dict_maintainer.core_numbers() == other_maintainer.core_numbers()
    other_maintainer.validate()


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(script=edit_scripts(), k=st.integers(min_value=1, max_value=4))
def test_apply_delta_identical_across_backends(other, script, k):
    graph, operations = script
    inserted = [edge for insert, edge in operations if insert]
    removed = [edge for insert, edge in operations if not insert]
    delta = EdgeDelta.from_iterables(inserted=inserted, removed=removed)
    dict_maintainer = CoreMaintainer(graph, backend="dict")
    other_maintainer = CoreMaintainer(graph, backend=other)
    dict_effect = dict_maintainer.apply_delta(delta, k=k)
    other_effect = other_maintainer.apply_delta(delta, k=k)
    for attribute in (
        "increased",
        "decreased",
        "insertion_affected",
        "deletion_affected",
        "insertion_touched",
        "deletion_touched",
        "pre_update_core",
        "visited",
    ):
        assert getattr(dict_effect, attribute) == getattr(other_effect, attribute), attribute
    assert dict_maintainer.core_numbers() == other_maintainer.core_numbers()
    other_maintainer.validate()


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@SETTINGS
@given(graph=graphs())
def test_backend_switch_preserves_maintained_state(other, graph):
    """switch_backend migrates core numbers exactly (both directions)."""
    maintainer = CoreMaintainer(graph, backend="dict")
    before = maintainer.core_numbers()
    assert maintainer.switch_backend(other)
    assert maintainer.backend == _backend_name(other)
    assert maintainer.core_numbers() == before
    maintainer.validate()
    assert maintainer.switch_backend("dict")
    assert maintainer.core_numbers() == before


# ---------------------------------------------------------------------------
# Checkpoint round-trips (deterministic, parametrised over backends)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", OTHER_BACKENDS + ["dict"])
def test_engine_checkpoint_round_trip_per_backend(backend, tmp_path):
    """The full engine state survives checkpoint/restore on every backend."""
    graph = Graph(
        edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), ("a", 0)],
        vertices=[0, 1, 2, 3, 4, 5, "a", "isolated"],
    )
    engine = StreamingAVTEngine(graph, backend=backend, batch_size=None)
    first = engine.query(k=2, budget=1)
    engine.ingest_insert("a", 1)
    engine.ingest_remove(4, 5)
    engine.flush()
    second = engine.query(k=2, budget=1)

    path = tmp_path / f"engine-{backend}.ckpt"
    engine.checkpoint(path)
    restored = StreamingAVTEngine.restore(path)
    assert restored.core_numbers() == engine.core_numbers()
    assert restored.graph_version == engine.graph_version
    replayed = restored.query(k=2, budget=1)
    assert replayed.anchors == second.anchors
    assert replayed.followers == second.followers
    assert first.k == 2  # first answer retained just to pin the cold path ran
