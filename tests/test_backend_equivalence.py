"""Property tests: the dict and compact backends are observationally identical.

The compact integer-ID backend (:mod:`repro.graph.compact`) re-implements
every hot kernel — peeling decomposition, k-core cascades, the K-order
remaining degrees, follower computation, greedy selection, incremental
maintenance — over flat int arrays.  These tests pin the contract that makes
``backend="auto"`` safe: for *any* graph (isolated vertices, non-integer and
mixed-type vertex ids included) both backends return identical results, down
to the removal order and the instrumentation counters.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.followers import anchored_k_core
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.olak import OLAKAnchoredKCore
from repro.anchored.rcm import RCMAnchoredKCore
from repro.cores.decomposition import (
    anchored_core_decomposition,
    core_decomposition,
    k_core,
)
from repro.cores.korder import KOrder
from repro.cores.maintenance import CoreMaintainer
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph

SETTINGS = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: Vertex pools exercising the interner: contiguous ints, sparse ints,
#: strings, and a mixed-type universe (ints and strings together).
VERTEX_POOLS = (
    list(range(12)),
    [3, 7, 1000, 9999, -5, 0, 42, 18, 2, 61],
    ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"],
    [0, 1, 2, "x", "y", "z", 77, "alice", -3, "bob"],
)


@st.composite
def graphs(draw) -> Graph:
    """Random small graphs over a drawn vertex pool, isolated vertices kept."""
    pool = draw(st.sampled_from(VERTEX_POOLS))
    num_vertices = draw(st.integers(min_value=1, max_value=len(pool)))
    vertices = pool[:num_vertices]
    possible_edges = [
        (u, v) for i, u in enumerate(vertices) for v in vertices[i + 1 :]
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=3 * num_vertices, unique=True)
        if possible_edges
        else st.just([])
    )
    # Only some vertices carry edges; the rest stay isolated on purpose.
    return Graph(edges=edges, vertices=vertices)


@st.composite
def graphs_with_anchors(draw):
    graph = draw(graphs())
    universe = sorted(graph.vertices(), key=repr)
    anchors = draw(st.lists(st.sampled_from(universe), max_size=3, unique=True))
    return graph, anchors


@st.composite
def graphs_with_k(draw):
    graph = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=4))
    return graph, k


def _assert_results_equal(first, second):
    assert first.anchors == second.anchors
    assert first.followers == second.followers
    assert first.anchored_core_size == second.anchored_core_size
    assert first.stats.candidates_evaluated == second.stats.candidates_evaluated
    assert first.stats.visited_vertices == second.stats.visited_vertices


@SETTINGS
@given(graphs_with_anchors())
def test_decomposition_identical_across_backends(graph_and_anchors):
    graph, anchors = graph_and_anchors
    dict_result = anchored_core_decomposition(graph, anchors, backend="dict")
    compact_result = anchored_core_decomposition(graph, anchors, backend="compact")
    assert dict(dict_result.core) == dict(compact_result.core)
    assert dict_result.order == compact_result.order
    assert dict_result.anchors == compact_result.anchors


@SETTINGS
@given(graphs_with_k())
def test_k_core_and_anchored_cascade_identical(graph_and_k):
    graph, k = graph_and_k
    assert k_core(graph, k, backend="dict") == k_core(graph, k, backend="compact")
    anchors = sorted(graph.vertices(), key=repr)[:2]
    assert anchored_k_core(graph, k, anchors, backend="dict") == anchored_k_core(
        graph, k, anchors, backend="compact"
    )


@SETTINGS
@given(graphs())
def test_korder_identical_across_backends(graph):
    dict_order = KOrder(graph, backend="dict")
    compact_order = KOrder(graph, backend="compact")
    assert dict_order.core_numbers() == compact_order.core_numbers()
    assert dict_order.shells() == compact_order.shells()
    for vertex in graph.vertices():
        assert dict_order.rank(vertex) == compact_order.rank(vertex)
        assert dict_order.remaining_degree(vertex) == compact_order.remaining_degree(vertex)
    compact_order.validate()


@SETTINGS
@given(graphs_with_k())
def test_index_candidates_and_followers_identical(graph_and_k):
    graph, k = graph_and_k
    dict_index = AnchoredCoreIndex(graph, k, backend="dict")
    compact_index = AnchoredCoreIndex(graph, k, backend="compact")
    assert dict_index.core_numbers() == dict(compact_index.core_numbers())
    assert dict_index.candidate_anchors() == compact_index.candidate_anchors()
    assert dict_index.candidate_anchors(order_pruning=False) == compact_index.candidate_anchors(
        order_pruning=False
    )
    assert dict_index.all_non_core_vertices() == compact_index.all_non_core_vertices()
    assert dict_index.plain_k_core() == compact_index.plain_k_core()
    assert dict_index.shell() == compact_index.shell()
    for candidate in sorted(dict_index.all_non_core_vertices(), key=repr):
        assert dict_index.marginal_followers(candidate) == compact_index.marginal_followers(
            candidate
        )
        assert dict_index.marginal_followers(
            candidate, full_shell=True
        ) == compact_index.marginal_followers(candidate, full_shell=True)
    assert dict_index.visited_vertices == compact_index.visited_vertices
    assert dict_index.candidates_evaluated == compact_index.candidates_evaluated


@SETTINGS
@given(graphs_with_k(), st.integers(min_value=0, max_value=3))
def test_greedy_identical_across_backends(graph_and_k, budget):
    graph, k = graph_and_k
    _assert_results_equal(
        GreedyAnchoredKCore(graph, k, budget, backend="dict").select(),
        GreedyAnchoredKCore(graph, k, budget, backend="compact").select(),
    )


@SETTINGS
@given(graphs_with_k(), st.integers(min_value=0, max_value=3))
def test_olak_identical_across_backends(graph_and_k, budget):
    graph, k = graph_and_k
    _assert_results_equal(
        OLAKAnchoredKCore(graph, k, budget, backend="dict").select(),
        OLAKAnchoredKCore(graph, k, budget, backend="compact").select(),
    )


@SETTINGS
@given(graphs_with_k(), st.integers(min_value=0, max_value=3))
def test_rcm_identical_across_backends(graph_and_k, budget):
    graph, k = graph_and_k
    _assert_results_equal(
        RCMAnchoredKCore(graph, k, budget, backend="dict").select(),
        RCMAnchoredKCore(graph, k, budget, backend="compact").select(),
    )


@st.composite
def edit_scripts(draw):
    """A starting graph plus a sequence of edge insertions/removals."""
    graph = draw(graphs())
    pool = sorted(graph.vertices(), key=repr)
    operations = []
    if len(pool) >= 2:
        pairs = [(u, v) for i, u in enumerate(pool) for v in pool[i + 1 :]]
        operations = draw(
            st.lists(
                st.tuples(st.booleans(), st.sampled_from(pairs)),
                max_size=25,
            )
        )
    return graph, operations


@SETTINGS
@given(edit_scripts())
def test_maintenance_identical_across_backends(script):
    graph, operations = script
    dict_maintainer = CoreMaintainer(graph, backend="dict")
    compact_maintainer = CoreMaintainer(graph, backend="compact")
    for insert, (u, v) in operations:
        if insert:
            assert dict_maintainer.insert_edge(u, v) == compact_maintainer.insert_edge(u, v)
        else:
            assert dict_maintainer.remove_edge(u, v) == compact_maintainer.remove_edge(u, v)
        assert dict_maintainer._visited_last == compact_maintainer._visited_last
    assert dict_maintainer.core_numbers() == compact_maintainer.core_numbers()
    compact_maintainer.validate()


@SETTINGS
@given(edit_scripts(), st.integers(min_value=1, max_value=4))
def test_apply_delta_identical_across_backends(script, k):
    graph, operations = script
    inserted = [edge for insert, edge in operations if insert]
    removed = [edge for insert, edge in operations if not insert]
    delta = EdgeDelta.from_iterables(inserted=inserted, removed=removed)
    dict_maintainer = CoreMaintainer(graph, backend="dict")
    compact_maintainer = CoreMaintainer(graph, backend="compact")
    dict_effect = dict_maintainer.apply_delta(delta, k=k)
    compact_effect = compact_maintainer.apply_delta(delta, k=k)
    for attribute in (
        "increased",
        "decreased",
        "insertion_affected",
        "deletion_affected",
        "insertion_touched",
        "deletion_touched",
        "pre_update_core",
        "visited",
    ):
        assert getattr(dict_effect, attribute) == getattr(compact_effect, attribute), attribute
    assert dict_maintainer.core_numbers() == compact_maintainer.core_numbers()
    compact_maintainer.validate()
