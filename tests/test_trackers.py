"""Unit tests for the per-snapshot trackers (Greedy / OLAK / RCM / brute force)."""

from __future__ import annotations

import pytest

from repro.anchored.followers import compute_followers
from repro.avt.problem import AVTProblem
from repro.avt.trackers import (
    BruteForceTracker,
    GreedyTracker,
    OLAKTracker,
    RCMTracker,
    SnapshotTracker,
)
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.graph.datasets import load_dataset

TRACKERS = [GreedyTracker, OLAKTracker, RCMTracker]


@pytest.fixture
def toy_problem(toy_evolving):
    return AVTProblem(toy_evolving, k=3, budget=2, name="toy")


class TestSnapshotTrackerMachinery:
    def test_custom_factory_and_naming(self, toy_problem):
        tracker = SnapshotTracker(
            lambda graph, k, budget: GreedyAnchoredKCore(graph, k, budget)
        )
        result = tracker.track(toy_problem)
        # Name falls back to the solver's own name on the first snapshot.
        assert result.algorithm == "Greedy"
        assert len(result) == 2

    def test_max_snapshots_limits_work(self, toy_problem):
        result = GreedyTracker().track(toy_problem, max_snapshots=1)
        assert len(result) == 1

    def test_snapshot_metadata_records_deltas(self, toy_problem):
        result = GreedyTracker().track(toy_problem)
        assert result.snapshots[0].edges_inserted == 0
        assert result.snapshots[1].edges_inserted == 1
        assert result.snapshots[1].edges_removed == 1


class TestTrackerContracts:
    @pytest.mark.parametrize("tracker_cls", TRACKERS)
    def test_one_result_per_snapshot(self, toy_problem, tracker_cls):
        result = tracker_cls().track(toy_problem)
        assert len(result) == toy_problem.num_snapshots
        assert [snapshot.timestamp for snapshot in result] == [0, 1]

    @pytest.mark.parametrize("tracker_cls", TRACKERS)
    def test_budget_respected_at_every_snapshot(self, toy_problem, tracker_cls):
        result = tracker_cls().track(toy_problem)
        for snapshot in result:
            assert len(snapshot.anchors) <= toy_problem.budget

    @pytest.mark.parametrize("tracker_cls", TRACKERS)
    def test_reported_followers_match_recomputation(self, toy_evolving, tracker_cls):
        problem = AVTProblem(toy_evolving, k=3, budget=2, name="toy")
        result = tracker_cls().track(problem)
        snapshots = list(toy_evolving.snapshots())
        for snapshot_result, graph in zip(result, snapshots):
            expected = compute_followers(graph, 3, snapshot_result.anchors)
            assert set(snapshot_result.result.followers) == expected

    def test_brute_force_tracker_on_toy(self, toy_problem):
        result = BruteForceTracker().track(toy_problem)
        assert len(result) == 2
        assert result.snapshots[0].num_followers == 7

    def test_exact_small_k_tracker_for_k2(self, toy_evolving):
        from repro.avt.trackers import ExactSmallKTracker
        from repro.anchored.bruteforce import BruteForceAnchoredKCore

        problem = AVTProblem(toy_evolving, k=2, budget=2, name="toy")
        exact = ExactSmallKTracker().track(problem)
        assert len(exact) == 2
        # Per-snapshot optimality: matches the brute-force optimum at t = 1.
        brute = BruteForceAnchoredKCore(toy_evolving.base, 2, 2).select()
        assert exact.snapshots[0].num_followers == brute.num_followers

    def test_exact_small_k_tracker_rejects_hard_k(self, toy_problem):
        from repro.avt.trackers import ExactSmallKTracker
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            ExactSmallKTracker().track(toy_problem)  # toy_problem has k = 3

    def test_trackers_on_a_dataset_standin(self):
        evolving = load_dataset("gnutella", num_snapshots=3, scale=0.15, seed=2)
        problem = AVTProblem(evolving, k=3, budget=3, name="gnutella")
        greedy = GreedyTracker().track(problem)
        rcm = RCMTracker().track(problem)
        assert len(greedy) == len(rcm) == 3
        assert greedy.total_followers >= rcm.total_followers * 0.5
