"""Unit tests for the undirected graph substrate."""

from __future__ import annotations

import pytest

from repro.errors import EdgeNotFoundError, SelfLoopError, VertexNotFoundError
from repro.graph.static import Graph


class TestConstruction:
    def test_empty_graph_has_no_vertices_or_edges(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.vertices()) == []
        assert list(graph.edges()) == []

    def test_construct_with_vertices_only(self):
        graph = Graph(vertices=[1, 2, 3])
        assert graph.num_vertices == 3
        assert graph.num_edges == 0
        assert graph.degree(2) == 0

    def test_construct_with_edges_creates_endpoints(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_from_edge_list_ignores_duplicates(self):
        graph = Graph.from_edge_list([(1, 2), (2, 1), (1, 2)])
        assert graph.num_edges == 1

    def test_copy_is_independent(self):
        graph = Graph(edges=[(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert graph.num_edges == 1
        assert clone.num_edges == 2
        assert not graph.has_vertex(3)

    def test_string_vertex_identifiers_are_supported(self):
        graph = Graph(edges=[("alice", "bob"), ("bob", "carol")])
        assert graph.degree("bob") == 2
        assert graph.has_edge("carol", "bob")


class TestMutation:
    def test_add_vertex_is_idempotent(self):
        graph = Graph()
        graph.add_vertex(7)
        graph.add_vertex(7)
        assert graph.num_vertices == 1

    def test_add_edge_returns_true_only_when_new(self):
        graph = Graph()
        assert graph.add_edge(1, 2) is True
        assert graph.add_edge(2, 1) is False
        assert graph.num_edges == 1

    def test_add_edge_rejects_self_loops(self):
        graph = Graph()
        with pytest.raises(SelfLoopError):
            graph.add_edge(5, 5)

    def test_add_edges_counts_only_new_edges(self):
        graph = Graph(edges=[(1, 2)])
        added = graph.add_edges([(1, 2), (2, 3), (3, 4)])
        assert added == 2
        assert graph.num_edges == 3

    def test_remove_edge_keeps_endpoints(self):
        graph = Graph(edges=[(1, 2)])
        graph.remove_edge(1, 2)
        assert graph.num_edges == 0
        assert graph.has_vertex(1) and graph.has_vertex(2)

    def test_remove_missing_edge_raises(self):
        graph = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 3)

    def test_remove_edges_skips_missing(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        removed = graph.remove_edges([(1, 2), (5, 6)])
        assert removed == 1
        assert graph.num_edges == 1

    def test_remove_vertex_removes_incident_edges(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        graph.remove_vertex(2)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.has_edge(1, 3)

    def test_remove_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(VertexNotFoundError):
            graph.remove_vertex(99)


class TestQueries:
    def test_degree_and_neighbors(self):
        graph = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert graph.degree(1) == 3
        assert graph.neighbors(1) == {2, 3, 4}
        assert graph.degree(4) == 1

    def test_neighbors_of_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(VertexNotFoundError):
            graph.neighbors(1)

    def test_edges_reported_once(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        edges = list(graph.edges())
        assert len(edges) == 3
        as_sets = {frozenset(edge) for edge in edges}
        assert as_sets == {frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 3})}

    def test_edge_set_uses_frozensets(self):
        graph = Graph(edges=[(1, 2)])
        assert graph.edge_set() == {frozenset({1, 2})}

    def test_average_degree(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert graph.average_degree() == pytest.approx(4 / 3)
        assert Graph().average_degree() == 0.0

    def test_degree_map_matches_individual_degrees(self):
        graph = Graph(edges=[(1, 2), (1, 3)])
        degree_map = graph.degree_map()
        assert degree_map == {1: 2, 2: 1, 3: 1}

    def test_contains_len_iter(self):
        graph = Graph(edges=[(1, 2)], vertices=[5])
        assert 5 in graph
        assert 9 not in graph
        assert len(graph) == 3
        assert set(iter(graph)) == {1, 2, 5}

    def test_equality_compares_structure(self):
        first = Graph(edges=[(1, 2), (2, 3)])
        second = Graph(edges=[(2, 3), (1, 2)])
        third = Graph(edges=[(1, 2)])
        assert first == second
        assert first != third
        assert first != "not a graph"


class TestDerivedGraphs:
    def test_subgraph_keeps_only_induced_edges(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_with_unknown_vertices_ignores_them(self):
        graph = Graph(edges=[(1, 2)])
        sub = graph.subgraph([1, 2, 99])
        assert sub.num_vertices == 2

    def test_connected_components(self):
        graph = Graph(edges=[(1, 2), (2, 3), (10, 11)], vertices=[42])
        components = sorted(graph.connected_components(), key=len, reverse=True)
        assert {1, 2, 3} in components
        assert {10, 11} in components
        assert {42} in components
        assert len(components) == 3

    def test_connected_components_empty_graph(self):
        assert Graph().connected_components() == []
